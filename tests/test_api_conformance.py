"""Shared conformance tests for the unified AnomalyMonitor surface.

One parametrized suite drives the serial :class:`RushMon`, the
concurrent :class:`RushMonService` (unstarted — ``close_window`` runs
the detection pass inline), the multi-process :class:`ClusterMonitor`
(two real worker processes) and the exact
:class:`OfflineAnomalyMonitor` through the *protocol only*: lifecycle
events, operations, window closes, report access.  If a monitor flavour
drifts from the contract in :mod:`repro.core.api`, this file is where
it fails.
"""

import pytest

from repro.cluster import ClusterMonitor
from repro.core.api import AnomalyMonitor, MonitorListener
from repro.core.concurrent import RushMonService
from repro.core.config import RushMonConfig
from repro.core.monitor import OfflineAnomalyMonitor, RushMon
from repro.core.types import AnomalyReport, Operation, OpType


def _serial():
    return RushMon(RushMonConfig(sampling_rate=1, mob=False))


def _service():
    # Unstarted: no background thread; close_window() drains inline.
    return RushMonService(RushMonConfig(sampling_rate=1, mob=False))


def _offline():
    return OfflineAnomalyMonitor()


#: Clusters spawned by the factory below, stopped after each test (the
#: workers are daemon processes, but tests should not leak them).
_SPAWNED_CLUSTERS: list[ClusterMonitor] = []


def _cluster():
    monitor = ClusterMonitor(
        RushMonConfig(sampling_rate=1, mob=False, num_workers=2))
    _SPAWNED_CLUSTERS.append(monitor)
    return monitor


@pytest.fixture(autouse=True)
def _stop_spawned_clusters():
    yield
    while _SPAWNED_CLUSTERS:
        _SPAWNED_CLUSTERS.pop().stop()


MONITORS = [
    pytest.param(_serial, id="serial"),
    pytest.param(_service, id="service"),
    pytest.param(_cluster, id="cluster"),
    pytest.param(_offline, id="offline"),
]


def _lost_update(monitor):
    """The classic lost update — one ss 2-cycle — through the protocol."""
    monitor.begin_buu(1, 0)
    monitor.begin_buu(2, 0)
    monitor.on_operations([
        Operation(OpType.READ, 1, "x", 1),
        Operation(OpType.READ, 2, "x", 2),
    ])
    monitor.on_operation(Operation(OpType.WRITE, 1, "x", 3))
    monitor.on_operation(Operation(OpType.WRITE, 2, "x", 4))
    monitor.commit_buu(1, 5)
    monitor.commit_buu(2, 5)


@pytest.mark.parametrize("make", MONITORS)
def test_satisfies_protocols(make):
    monitor = make()
    assert isinstance(monitor, MonitorListener)
    assert isinstance(monitor, AnomalyMonitor)


@pytest.mark.parametrize("make", MONITORS)
def test_fresh_monitor_has_no_reports(make):
    monitor = make()
    assert monitor.reports == []
    assert monitor.latest_report() is None


@pytest.mark.parametrize("make", MONITORS)
def test_lost_update_detected_through_protocol_only(make):
    monitor = make()
    _lost_update(monitor)
    report = monitor.close_window()
    assert isinstance(report, AnomalyReport)
    assert report.estimated_2 == 1.0  # p = 1: estimate is exact
    assert report.operations == 4
    assert monitor.reports == [report]
    assert monitor.latest_report() is report
    e2, _ = monitor.cumulative_estimates()
    assert e2 == 1.0


@pytest.mark.parametrize("make", MONITORS)
def test_windows_partition_the_stream(make):
    monitor = make()
    _lost_update(monitor)
    first = monitor.close_window()
    # Second window: no conflicts at all.
    monitor.begin_buu(10, 6)
    monitor.on_operation(Operation(OpType.WRITE, 10, "y", 7))
    monitor.commit_buu(10, 8)
    second = monitor.close_window()
    assert first.estimated_2 == 1.0
    assert second.estimated_2 == 0.0
    assert second.operations == 1
    assert len(monitor.reports) == 2
    assert monitor.latest_report() is second
    # Cumulative view still sees everything.
    assert monitor.cumulative_estimates()[0] == 1.0


def test_serial_report_alias_warns_and_matches_close_window():
    """RushMon.report() still aliases close_window() but now warns; it
    is scheduled for removal."""
    monitor = _serial()
    _lost_update(monitor)
    with pytest.warns(DeprecationWarning, match="close_window"):
        report = monitor.report()
    assert monitor.reports == [report]
    assert report.estimated_2 == 1.0


def test_service_flush_alias_warns_and_matches_close_window():
    """RushMonService.flush() still aliases close_window() but now
    warns; it is scheduled for removal."""
    service = _service()
    _lost_update(service)
    with pytest.warns(DeprecationWarning, match="close_window"):
        report = service.flush()
    assert report is not None
    assert service.reports == [report]
    assert report.estimated_2 == 1.0


def test_service_construction_kwargs_warn_but_apply():
    """The pre-config construction kwargs still work for one release —
    with a DeprecationWarning — and override the config's values."""
    with pytest.warns(DeprecationWarning, match="RushMonConfig"):
        service = RushMonService(
            RushMonConfig(sampling_rate=1, mob=False), num_shards=2
        )
    assert service.config.num_shards == 2
    assert service.collector.num_shards == 2


def test_config_is_the_single_construction_path():
    """Every service tunable is settable through RushMonConfig alone."""
    config = RushMonConfig(sampling_rate=1, mob=False, num_shards=3,
                           detect_interval=1.5, batch_size=64,
                           max_restarts=2)
    service = RushMonService(config)
    assert service.collector.num_shards == 3
    assert service.detect_interval == 1.5
    assert service.batch_size == 64
    assert service.max_restarts == 2


def test_service_rejects_resample_interval():
    """The service must refuse — not silently drop — the serial-only
    resample_interval knob (it cannot re-pick items across shards)."""
    with pytest.raises(ValueError, match="resample_interval"):
        RushMonService(RushMonConfig(sampling_rate=4, resample_interval=100))


def test_drivers_accept_any_monitor_flavour():
    """The threaded driver types against MonitorListener; all three
    flavours slot in without branching."""
    from repro.sim.scheduler import ThreadedWorkloadDriver

    monitors = [_serial(), _offline()]
    driver = ThreadedWorkloadDriver(monitors, num_threads=1, seed=0)
    from repro.sim.buu import read_modify_write

    driver.run([read_modify_write(["a", "b"], lambda v: (v or 0) + 1)])
    for monitor in monitors:
        assert monitor.close_window().operations == 4
