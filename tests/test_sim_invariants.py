"""Property-based invariants of the concurrency simulator.

These pin down the simulator's contract, which everything above it
(collectors, detectors, workloads) silently relies on.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import OpType
from repro.sim import Buu, SimConfig, Simulator, read_modify_write


class _Recorder:
    def __init__(self):
        self.ops = []
        self.begins = {}
        self.commits = {}

    def on_operation(self, op):
        self.ops.append(op)

    def begin_buu(self, buu, t):
        self.begins[buu] = t

    def commit_buu(self, buu, t):
        self.commits[buu] = t


def _random_buus(seed, count, keys, max_touch):
    rng = random.Random(seed)
    buus = []
    for _ in range(count):
        touch = rng.randint(1, max_touch)
        picked = rng.sample(range(keys), min(touch, keys))
        buus.append(read_modify_write([f"k{k}" for k in picked],
                                      lambda v: (v or 0) + 1))
    return buus


def _run(seed, workers, latency, staleness, jitter, count=60, keys=6,
         max_touch=3):
    rec = _Recorder()
    sim = Simulator(
        SimConfig(num_workers=workers, seed=seed, write_latency=latency,
                  staleness_bound=staleness, compute_jitter=jitter),
        listeners=[rec],
    )
    done = sim.run(_random_buus(seed, count, keys, max_touch))
    return rec, sim, done


sim_params = st.tuples(
    st.integers(0, 10**6),     # seed
    st.integers(1, 12),        # workers
    st.sampled_from([0, 5, 50, 300]),   # latency
    st.sampled_from([None, 1, 2, 5]),   # staleness
    st.sampled_from([0, 5, 25]),        # jitter
)


@given(sim_params)
@settings(max_examples=30, deadline=None)
def test_every_buu_begins_and_commits(params):
    rec, sim, done = _run(*params)
    assert done == 60
    assert set(rec.begins) == set(rec.commits)
    assert len(rec.commits) == 60


@given(sim_params)
@settings(max_examples=30, deadline=None)
def test_commit_not_before_begin(params):
    rec, _, _ = _run(*params)
    for buu, begin in rec.begins.items():
        assert rec.commits[buu] >= begin


@given(sim_params)
@settings(max_examples=30, deadline=None)
def test_op_seq_nondecreasing(params):
    """Operations are delivered to listeners in visibility order."""
    rec, _, _ = _run(*params)
    seqs = [op.seq for op in rec.ops]
    assert seqs == sorted(seqs)


@given(sim_params)
@settings(max_examples=30, deadline=None)
def test_reads_precede_writes_within_buu(params):
    rec, _, _ = _run(*params)
    first_write: dict[int, int] = {}
    for op in rec.ops:
        if op.op is OpType.WRITE:
            first_write.setdefault(op.buu, op.seq)
    for op in rec.ops:
        if op.op is OpType.READ and op.buu in first_write:
            # A BUU's reads are all *issued* before its writes; a write
            # only becomes visible (and is reported) at apply time, which
            # is never before issue time.
            assert op.seq <= first_write[op.buu]


@given(sim_params)
@settings(max_examples=30, deadline=None)
def test_commit_time_is_last_write_visibility(params):
    rec, _, _ = _run(*params)
    last_write: dict[int, int] = {}
    for op in rec.ops:
        if op.op is OpType.WRITE:
            last_write[op.buu] = op.seq
    for buu, commit in rec.commits.items():
        if buu in last_write:
            assert commit >= last_write[buu]


@given(sim_params)
@settings(max_examples=30, deadline=None)
def test_deterministic_replay(params):
    rec1, _, _ = _run(*params)
    rec2, _, _ = _run(*params)
    assert [(o.op, o.buu, o.key, o.seq) for o in rec1.ops] == [
        (o.op, o.buu, o.key, o.seq) for o in rec2.ops
    ]


@given(st.integers(0, 10**6), st.integers(1, 8))
@settings(max_examples=20, deadline=None)
def test_additive_writes_never_lose_updates(seed, workers):
    """Parameter-server deltas commute: the sum is exact regardless of
    interleaving (unlike read-modify-write overwrites)."""
    sim = Simulator(SimConfig(num_workers=workers, seed=seed,
                              write_latency=100))
    buus = [Buu(reads=[], compute=lambda v: {"acc": 1}, additive=True)
            for _ in range(50)]
    sim.run(buus)
    assert sim.store["acc"] == 50


@given(st.integers(0, 10**6))
@settings(max_examples=15, deadline=None)
def test_staleness_one_serialises_each_worker(seed):
    """With s=1 a worker's BUUs never overlap: its i-th BUU commits
    before its (i+1)-th begins.  Verified via single-worker runs where
    the global order is exactly the worker's order."""
    rec, _, _ = _run(seed, 1, 200, 1, 0, count=20)
    # A commit and the next begin may share a timestamp; the commit
    # happened first, so order commits (0) before begins (1) on ties.
    events = sorted(
        [(t, 1, "b", buu) for buu, t in rec.begins.items()]
        + [(t, 0, "c", buu) for buu, t in rec.commits.items()]
    )
    events = [(t, kind, buu) for t, _, kind, buu in events]
    open_buus = set()
    for _, kind, buu in events:
        if kind == "b":
            assert not open_buus  # previous BUU fully committed
            open_buus.add(buu)
        else:
            open_buus.discard(buu)
