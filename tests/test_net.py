"""Networked ingestion (`repro.net`): protocol, delivery and policy tests.

Covers the wire layer bottom-up:

- framing: length-prefix + CRC round trips, partial TCP chunks, corrupt
  prefixes/bodies are refused (``ProtocolError``), oversized frames are
  bounded;
- delivery: an in-process server/client pair reproduces the offline
  monitor's sr=1 counts exactly; replayed batches dedup; sequence gaps
  are rejected as protocol violations;
- typed failure propagation: journal backpressure and DEGRADED health
  reach the client as typed errors and the configured policy (block /
  shed) is honored with honest counters;
- the client's bounded queue (block raises :class:`ClientBackpressure`,
  shed counts);
- durability plumbing: the session table rides inside the service
  checkpoint (``extra_state``) and survives restore;
- net metrics are registered and visible over the ``/metrics`` endpoint;
- the ``serve`` / ``emit`` CLI round trip (subprocess smoke test).

The crash-recovery story (SIGKILL mid-stream, 20 seeds) lives in
``tests/test_net_chaos.py``.
"""

import os
import random
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
import urllib.request

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.concurrent import RushMonService
from repro.core.config import RushMonConfig
from repro.core.monitor import OfflineAnomalyMonitor
from repro.core.types import Operation, OpType
from repro.net import (
    ClientBackpressure,
    ProtocolError,
    RushMonClient,
    RushMonServer,
)
from repro.net import protocol
from repro.testing import Fault, FaultInjector


def _ops(count, num_keys, seed):
    rng = random.Random(seed)
    return [
        Operation(
            OpType.READ if rng.random() < 0.5 else OpType.WRITE,
            buu=rng.randrange(count // 4 + 1),
            key=f"k{rng.randrange(num_keys)}",
            seq=i,
        )
        for i in range(count)
    ]


def _service(faults=None, **kwargs):
    kwargs.setdefault("num_shards", 2)
    kwargs.setdefault("detect_interval", 0.003)
    record_trace = kwargs.pop("record_trace", True)
    return RushMonService(
        RushMonConfig(sampling_rate=1, mob=False, seed=42, **kwargs),
        faults=faults,
        record_trace=record_trace,
    )


def _assert_sr1_differential(service):
    replayed = OfflineAnomalyMonitor()
    service.serialized_trace().replay([replayed])
    assert replayed.exact_counts() == service.counts()


# -- framing -------------------------------------------------------------------


def test_frame_round_trip_single_feed():
    reader = protocol.FrameReader()
    messages = [
        protocol.hello("s1", 0),
        protocol.batch("s1", 1, [["w", 1, "k0", 1]]),
        protocol.ack("s1", 1),
        protocol.error("backpressure", "full", retriable=True, seq=2),
        protocol.ping(7),
        protocol.bye(),
    ]
    wire = b"".join(protocol.encode_frame(m) for m in messages)
    assert list(reader.feed(wire)) == messages
    assert reader.frames_decoded == len(messages)


def test_frame_reader_reassembles_byte_by_byte():
    message = protocol.batch("session", 3, [["r", 2, "key", 9],
                                            ["b", 4, 100]])
    wire = protocol.encode_frame(message)
    reader = protocol.FrameReader()
    out = []
    for i in range(len(wire)):
        out.extend(reader.feed(wire[i:i + 1]))
    assert out == [message]


def test_frame_reader_keeps_partial_tail_across_feeds():
    first = protocol.encode_frame(protocol.ping(1))
    second = protocol.encode_frame(protocol.ping(2))
    reader = protocol.FrameReader()
    split = len(first) + 3  # mid-way through the second frame
    wire = first + second
    assert list(reader.feed(wire[:split])) == [protocol.ping(1)]
    assert list(reader.feed(wire[split:])) == [protocol.ping(2)]


def test_corrupt_length_prefix_is_refused():
    reader = protocol.FrameReader()
    with pytest.raises(ProtocolError, match="length"):
        list(reader.feed(struct.pack("!I", protocol.MAX_FRAME + 1) + b"x"))


def test_corrupt_body_fails_crc():
    wire = bytearray(protocol.encode_frame(protocol.ping(42)))
    # Flip a bit inside the body — including positions where the result
    # would still be valid JSON; the CRC must catch it regardless.
    wire[-2] ^= 0x04
    with pytest.raises(ProtocolError, match="CRC"):
        list(protocol.FrameReader().feed(bytes(wire)))


def test_non_dict_body_is_refused():
    body = b"[1,2,3]"
    wire = (struct.pack("!I", len(body) + 5) + bytes([protocol.CODEC_JSON])
            + struct.pack("!I", __import__("zlib").crc32(body)) + body)
    with pytest.raises(ProtocolError, match="message dict"):
        list(protocol.FrameReader().feed(wire))


def test_unknown_codec_is_refused():
    with pytest.raises(ProtocolError, match="codec"):
        protocol.encode_frame(protocol.ping(1), codec=7)


def test_msgpack_codec_round_trip_or_gated():
    message = protocol.batch("s", 1, [["w", 1, "k", 1]])
    if protocol.msgpack is None:
        with pytest.raises(ProtocolError, match="msgpack"):
            protocol.encode_frame(message, codec=protocol.CODEC_MSGPACK)
    else:
        wire = protocol.encode_frame(message, codec=protocol.CODEC_MSGPACK)
        assert list(protocol.FrameReader().feed(wire)) == [message]


def test_columnar_codec_packs_and_falls_back():
    """Codec 2 packs canonical batch messages into fixed-width columns
    (decoding to :class:`protocol.ColumnarEvents`) and ships anything
    the columns can't hold losslessly — exotic keys, oversized ints,
    non-batch messages — as a JSON body instead."""
    records = [["b", 1, 1], ["w", 1, "kéy", 2], ["r", 2, 7, 3],
               ["c", 1, 4]]
    message = protocol.batch("séssion", 3, records)
    wire = protocol.encode_frame(message, codec=protocol.CODEC_COLUMNAR)
    (decoded,) = protocol.FrameReader().feed(wire)
    events = decoded["events"]
    assert isinstance(events, protocol.ColumnarEvents)
    assert events.to_records() == records
    assert {k: v for k, v in decoded.items() if k != "events"} == \
        {k: v for k, v in message.items() if k != "events"}
    assert protocol.decode_events(events) == protocol.decode_events(records)

    for exotic in ([["w", 1, None, 2]],          # unpackable key
                   [["w", 1, "k", 2 ** 72]],     # int overflows i64
                   [["w", True, "k", 2]]):       # bool is not an i64
        message = protocol.batch("s", 1, exotic)
        wire = protocol.encode_frame(message, codec=protocol.CODEC_COLUMNAR)
        assert list(protocol.FrameReader().feed(wire)) == [message]
    ping = protocol.ping(9)
    wire = protocol.encode_frame(ping, codec=protocol.CODEC_COLUMNAR)
    assert list(protocol.FrameReader().feed(wire)) == [ping]


_wire_scalars = st.one_of(
    st.none(), st.booleans(),
    st.integers(min_value=-(2 ** 80), max_value=2 ** 80),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
)
_wire_keys = st.one_of(st.text(max_size=12),
                       st.integers(min_value=-(2 ** 80), max_value=2 ** 80),
                       st.none(), st.booleans())
_wire_ints = st.integers(min_value=-(2 ** 80), max_value=2 ** 80)
_wire_records = st.lists(st.one_of(
    st.tuples(st.sampled_from(("r", "w")), _wire_ints, _wire_keys,
              _wire_ints).map(list),
    st.tuples(st.sampled_from(("b", "c")), _wire_ints, _wire_ints).map(list),
), max_size=8)
_wire_messages = st.one_of(
    st.builds(protocol.batch, st.text(max_size=8),
              st.integers(min_value=0, max_value=2 ** 62), _wire_records),
    st.dictionaries(st.text(max_size=8),
                    st.one_of(_wire_scalars,
                              st.lists(_wire_scalars, max_size=3)),
                    max_size=4).map(lambda d: {**d, "type": "x"}),
)


@given(message=_wire_messages)
def test_every_codec_round_trips_any_message(message):
    """The codec-equivalence property: whatever one codec delivers,
    every other codec delivers too — unicode, None keys, >64-bit ints.
    Codec 2 may deliver a batch's events as columns; normalizing them
    through ``to_records`` must restore the original records exactly."""
    codecs = [protocol.CODEC_JSON, protocol.CODEC_COLUMNAR]
    if protocol.msgpack is not None:
        codecs.append(protocol.CODEC_MSGPACK)
    for codec in codecs:
        wire = protocol.encode_frame(message, codec=codec)
        (decoded,) = protocol.FrameReader().feed(wire)
        events = decoded.get("events")
        if isinstance(events, protocol.ColumnarEvents):
            decoded = dict(decoded, events=events.to_records())
        assert decoded == message, f"codec {codec}"


def test_event_records_round_trip():
    ops = _ops(40, 8, seed=1)
    records = protocol.encode_events(ops)
    decoded = protocol.decode_events(records)
    assert [d[1] for d in decoded] == ops
    lifecycle = [protocol.wire_begin(5, 10), protocol.wire_commit(5, 20)]
    assert protocol.decode_events(lifecycle) == [("b", 5, 10), ("c", 5, 20)]


def test_malformed_event_records_are_refused():
    with pytest.raises(ProtocolError):
        protocol.decode_events([["x", 1, 2]])
    with pytest.raises(ProtocolError):
        protocol.decode_events([["r", 1]])  # missing key/seq


# -- fault vocabulary ----------------------------------------------------------


def test_net_fault_points_and_kinds_validate():
    Fault("net.accept", kind="disconnect")
    Fault("net.recv", kind="corrupt")
    Fault("net.ack", kind="disconnect")
    Fault("net.recv", kind="delay")
    with pytest.raises(ValueError, match="disconnect"):
        Fault("collector.handle", kind="disconnect")
    with pytest.raises(ValueError, match="corrupt"):
        Fault("net.accept", kind="corrupt")


# -- delivery ------------------------------------------------------------------


def test_server_client_round_trip_matches_offline():
    """The tentpole differential: ops streamed over TCP produce exactly
    the offline monitor's sr=1 counts."""
    ops = _ops(600, 12, seed=21)
    service = _service()
    with RushMonServer(service) as server:
        with RushMonClient("127.0.0.1", server.port, batch_size=32,
                           flush_interval=0.005) as client:
            for op in ops:
                client.on_operation(op)
            assert client.flush(10.0)
            counters = client.counters()
    assert counters["events_enqueued"] == 600
    assert counters["acked_batches"] == counters["batches_sent"]
    assert service.processed_events == 600
    _assert_sr1_differential(service)
    offline = OfflineAnomalyMonitor()
    for op in ops:
        offline.on_operation(op)
    assert service.counts() == offline.exact_counts()


def test_lifecycle_events_travel_too():
    """begin/commit BUU marks cross the wire in order with operations
    (the pruners need them)."""
    service = _service()
    rng = random.Random(5)
    with RushMonServer(service) as server:
        with RushMonClient("127.0.0.1", server.port, batch_size=8,
                           flush_interval=0.005) as client:
            seq = 0
            for buu in range(1, 31):
                client.begin_buu(buu, seq)
                for _ in range(4):
                    seq += 1
                    client.on_operation(Operation(
                        OpType.READ if rng.random() < 0.5 else OpType.WRITE,
                        buu, f"k{rng.randrange(6)}", seq))
                seq += 1
                client.commit_buu(buu, seq)
            assert client.flush(10.0)
    assert service.processed_events == 30 * 6
    _assert_sr1_differential(service)


def test_columnar_client_round_trip_matches_offline():
    """The codec-2 differential: a client shipping packed column frames
    produces exactly the JSON client's (and the offline monitor's) sr=1
    counts — the server decodes columns without per-event objects but
    ingests the identical stream."""
    ops = _ops(600, 12, seed=21)
    service = _service()
    with RushMonServer(service) as server:
        with RushMonClient("127.0.0.1", server.port, batch_size=32,
                           flush_interval=0.005,
                           codec=protocol.CODEC_COLUMNAR) as client:
            for op in ops:
                client.on_operation(op)
            assert client.flush(10.0)
    assert service.processed_events == 600
    _assert_sr1_differential(service)
    offline = OfflineAnomalyMonitor()
    for op in ops:
        offline.on_operation(op)
    assert service.counts() == offline.exact_counts()


class _RawClient:
    """A hand-driven protocol speaker for poking at server edge cases."""

    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port),
                                             timeout=5.0)
        self.reader = protocol.FrameReader()

    def send(self, message):
        self.sock.sendall(protocol.encode_frame(message))

    def recv(self, timeout=5.0):
        self.sock.settimeout(timeout)
        while True:
            for message in self.reader.feed(self.sock.recv(65536)):
                return message

    def close(self):
        self.sock.close()


def test_replayed_batch_dedups_not_double_counts():
    service = _service()
    with RushMonServer(service) as server:
        raw = _RawClient(server.port)
        raw.send(protocol.hello("sess-a", 0))
        assert raw.recv()["type"] == "welcome"
        events = protocol.encode_events(_ops(10, 4, seed=2))
        raw.send(protocol.batch("sess-a", 1, events))
        assert raw.recv() == protocol.ack("sess-a", 1)
        # At-least-once in action: the "ack was lost", so resend.
        raw.send(protocol.batch("sess-a", 1, events))
        assert raw.recv() == protocol.ack("sess-a", 1)
        raw.close()
        assert server.stats["dedup_hits"] == 1
        assert server.stats["batches_accepted"] == 1
        assert server.stats["events_ingested"] == 10
    assert service.processed_events == 10  # once, not twice
    _assert_sr1_differential(service)


def test_sequence_gap_is_a_protocol_violation():
    service = _service()
    with RushMonServer(service) as server:
        raw = _RawClient(server.port)
        raw.send(protocol.hello("sess-b", 0))
        assert raw.recv()["type"] == "welcome"
        raw.send(protocol.batch("sess-b", 3,
                                protocol.encode_events(_ops(5, 4, seed=3))))
        reply = raw.recv()
        assert reply["type"] == "error"
        assert reply["code"] == "bad-session"
        assert not reply["retriable"]
        raw.close()
        assert server.stats["batches_accepted"] == 0


def test_batch_with_mismatching_session_is_rejected():
    """A batch stamped with a different session than the connection's
    hello is a client bug — refused loudly (bad-session), never silently
    sequenced under the hello'd session."""
    service = _service()
    with RushMonServer(service) as server:
        raw = _RawClient(server.port)
        raw.send(protocol.hello("sess-hello", 0))
        assert raw.recv()["type"] == "welcome"
        raw.send(protocol.batch("sess-other", 1,
                                protocol.encode_events(_ops(4, 4, seed=9))))
        reply = raw.recv()
        assert reply["type"] == "error"
        assert reply["code"] == "bad-session"
        assert not reply["retriable"]
        raw.close()
        assert server.stats["batches_accepted"] == 0
        assert server.session_high("sess-hello") == 0
        assert server.session_high("sess-other") == 0


def test_idle_sessions_are_evicted_after_ttl():
    """The session table must not grow one entry per client run forever:
    an idle session whose high-water is durable and that no connection
    references is expired after ``session_ttl``."""
    service = _service()
    with RushMonServer(service, session_ttl=0.2,
                       ack_interval=0.02) as server:
        raw = _RawClient(server.port)
        raw.send(protocol.hello("sess-idle", 0))
        assert raw.recv()["type"] == "welcome"
        raw.send(protocol.batch("sess-idle", 1,
                                protocol.encode_events(_ops(5, 4, seed=8))))
        assert raw.recv()["type"] == "ack"
        assert server.sessions_current == 1
        raw.close()
        deadline = time.monotonic() + 5.0
        while server.sessions_current and time.monotonic() < deadline:
            time.sleep(0.02)
        assert server.sessions_current == 0
        assert server.sessions_evicted_total == 1


def test_live_sessions_survive_the_ttl():
    """A session with an open connection is never evicted, no matter how
    quiet it goes."""
    service = _service()
    with RushMonServer(service, session_ttl=0.1,
                       ack_interval=0.02) as server:
        raw = _RawClient(server.port)
        raw.send(protocol.hello("sess-live", 0))
        assert raw.recv()["type"] == "welcome"
        time.sleep(0.4)  # several TTLs of silence, connection open
        assert server.sessions_current == 1
        assert server.sessions_evicted_total == 0
        # The connection still works after the quiet spell.
        raw.send(protocol.batch("sess-live", 1,
                                protocol.encode_events(_ops(3, 4, seed=7))))
        assert raw.recv()["type"] == "ack"
        raw.close()


def test_welcome_reports_high_water_for_resumed_session():
    service = _service()
    with RushMonServer(service) as server:
        raw = _RawClient(server.port)
        raw.send(protocol.hello("sess-c", 0))
        assert raw.recv()["high"] == 0
        raw.send(protocol.batch("sess-c", 1,
                                protocol.encode_events(_ops(6, 4, seed=4))))
        assert raw.recv()["type"] == "ack"
        raw.close()
        second = _RawClient(server.port)
        second.send(protocol.hello("sess-c", 1))
        welcome = second.recv()
        assert welcome["high"] == 1
        second.close()
        assert server.reconnect_hellos_total >= 1


# -- typed failure propagation -------------------------------------------------


def test_backpressure_error_with_client_block_policy_loses_nothing():
    """A stalled detection thread fills the bounded journal; the client
    blocks-and-resends on the typed error and the server resumes each
    partially-ingested batch from its recorded offset — every event is
    eventually ingested exactly once."""
    ops = _ops(300, 8, seed=31)
    # Stall drains long enough for backpressure to fire, then recover.
    faults = FaultInjector().inject(
        Fault("journal.drain", kind="delay", delay=0.2, times=2)
    )
    service = _service(faults=faults, journal_capacity=64,
                       overflow="block", block_timeout=0.02,
                       detect_interval=0.001)
    with RushMonServer(service) as server:
        with RushMonClient("127.0.0.1", server.port, batch_size=64,
                           flush_interval=0.002, ack_timeout=3.0,
                           on_backpressure="block", seed=1) as client:
            for op in ops:
                client.on_operation(op)
            assert client.flush(20.0)
            counters = client.counters()
    assert server.stats["events_ingested"] == 300
    assert service.processed_events == 300
    if counters["backpressure_errors"]:
        assert counters["retransmits"] >= 1
    _assert_sr1_differential(service)


def test_backpressure_error_with_client_shed_policy_counts_loss():
    """With the shed policy the client drops the refused batch's events
    (counted, never silent) and the sequence stays gap-free."""
    ops = _ops(400, 8, seed=32)
    faults = FaultInjector().inject(
        Fault("journal.drain", kind="delay", delay=0.5, times=4)
    )
    service = _service(faults=faults, journal_capacity=32,
                       overflow="block", block_timeout=0.01,
                       detect_interval=0.001)
    with RushMonServer(service) as server:
        with RushMonClient("127.0.0.1", server.port, batch_size=32,
                           flush_interval=0.002, ack_timeout=3.0,
                           on_backpressure="shed", seed=2) as client:
            for op in ops:
                client.on_operation(op)
            assert client.flush(20.0)
            counters = client.counters()
    ingested = server.stats["events_ingested"]
    assert ingested == 400 - counters["shed_events"]
    assert counters["shed_batches"] == 0 or counters["shed_events"] > 0
    assert service.processed_events == ingested
    # Shed or not, what *was* ingested is still exactly right.
    _assert_sr1_differential(service)


def test_degraded_health_propagates_as_typed_error():
    """A tripped circuit breaker surfaces to clients as a 'degraded'
    error; the shed policy drops honestly instead of stalling."""
    service = _service()
    service._degraded = True  # trip the breaker directly
    with RushMonServer(service) as server:
        with RushMonClient("127.0.0.1", server.port, batch_size=16,
                           flush_interval=0.002, on_degraded="shed",
                           seed=3) as client:
            for op in _ops(64, 8, seed=33):
                client.on_operation(op)
            assert client.flush(10.0)
            counters = client.counters()
        assert server.stats["events_ingested"] == 0
    assert counters["degraded_errors"] >= 1
    assert counters["shed_events"] == 64


def test_draining_server_refuses_batches_with_typed_error():
    service = _service()
    server = RushMonServer(service).start()
    raw = _RawClient(server.port)
    raw.send(protocol.hello("sess-d", 0))
    assert raw.recv()["type"] == "welcome"
    server._draining = True  # what drain() sets before closing conns
    raw.send(protocol.batch("sess-d", 1,
                            protocol.encode_events(_ops(4, 4, seed=6))))
    reply = raw.recv()
    assert reply["type"] == "error"
    assert reply["code"] == "draining"
    assert reply["retriable"]
    raw.close()
    server.drain()


# -- client bounded queue ------------------------------------------------------


def _unresponsive_port():
    """A listening socket that never accepts — connects hang in the
    backlog, so the client can never complete a hello."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    sock.listen(1)
    return sock, sock.getsockname()[1]


def test_client_queue_block_policy_raises_backpressure():
    sock, port = _unresponsive_port()
    try:
        client = RushMonClient("127.0.0.1", port, queue_capacity=8,
                               overflow="block", block_timeout=0.05,
                               connect_timeout=0.05, backoff_base=0.01)
        client.start()
        with pytest.raises(ClientBackpressure, match="capacity"):
            for op in _ops(50, 4, seed=41):
                client.on_operation(op)
        client.close(timeout=0.2)
    finally:
        sock.close()


def test_client_queue_shed_policy_counts_drops():
    sock, port = _unresponsive_port()
    try:
        client = RushMonClient("127.0.0.1", port, queue_capacity=8,
                               overflow="shed", connect_timeout=0.05,
                               backoff_base=0.01)
        client.start()
        for op in _ops(50, 4, seed=42):
            client.on_operation(op)
        assert client.queue_depth == 8
        assert client.shed_events_total == 42
        client.close(timeout=0.2)
    finally:
        sock.close()


def test_client_parameter_validation():
    with pytest.raises(ValueError, match="batch_size"):
        RushMonClient("h", 1, batch_size=0)
    with pytest.raises(ValueError, match="overflow"):
        RushMonClient("h", 1, overflow="drop")
    with pytest.raises(ValueError, match="on_degraded"):
        RushMonClient("h", 1, on_degraded="panic")
    with pytest.raises(ValueError, match="ack_timeout"):
        RushMonClient("h", 1, ack_timeout=0)


def test_server_parameter_validation():
    with pytest.raises(ValueError, match="checkpoint_every"):
        RushMonServer(_service(), checkpoint_every=0)
    with pytest.raises(ValueError, match="checkpoint cadence"):
        RushMonServer(_service(checkpoint_path="/tmp/x.json",
                               checkpoint_interval=1))


# -- durability plumbing -------------------------------------------------------


def test_session_table_rides_in_the_checkpoint(tmp_path):
    path = str(tmp_path / "net.ckpt")
    service = _service()
    server = RushMonServer(service, checkpoint_path=path,
                           checkpoint_every=2).start()
    with RushMonClient("127.0.0.1", server.port, session="durable-sess",
                       batch_size=16, flush_interval=0.002) as client:
        for op in _ops(128, 8, seed=51):
            client.on_operation(op)
        assert client.flush(10.0)
    server.drain()
    restored = RushMonService.restore(path)
    net = restored.extra_state["net"]
    accepted = net["stats"]["batches_accepted"]
    assert net["sessions"]["durable-sess"] == [accepted, 0]
    assert accepted >= 8  # 128 events, batches of at most 16
    assert net["stats"]["events_ingested"] == 128
    assert restored.counts() == service.counts()
    _assert_sr1_differential(restored)


def test_durable_acks_only_after_checkpoint(tmp_path):
    """With a checkpoint path, an ack implies the batch is already in a
    checkpoint on disk: reload the file after each ack and find the
    batch's session high-water in it."""
    path = str(tmp_path / "durable.ckpt")
    service = _service()
    with RushMonServer(service, checkpoint_path=path,
                       checkpoint_every=1) as server:
        raw = _RawClient(server.port)
        raw.send(protocol.hello("sess-e", 0))
        assert raw.recv()["type"] == "welcome"
        for seq in (1, 2, 3):
            raw.send(protocol.batch(
                "sess-e", seq,
                protocol.encode_events(_ops(5, 4, seed=seq))))
            assert raw.recv() == protocol.ack("sess-e", seq)
            on_disk = RushMonService.restore(path)
            assert on_disk.extra_state["net"]["sessions"]["sess-e"][0] == seq
        raw.close()


# -- observability -------------------------------------------------------------


def test_net_metrics_registered_and_scrapable():
    service = _service()
    with RushMonServer(service) as server:
        with RushMonClient("127.0.0.1", server.port, batch_size=16,
                           flush_interval=0.002) as client:
            for op in _ops(64, 8, seed=61):
                client.on_operation(op)
            assert client.flush(10.0)
        snap = service.metrics.snapshot()
        batches = server.stats["batches_accepted"]
        assert snap["rushmon_net_connections_total"] == 1.0
        assert snap["rushmon_net_batches_total"] == float(batches)
        assert snap["rushmon_net_events_ingested_total"] == 64.0
        assert snap["rushmon_net_acks_total"] == float(batches)
        assert snap["rushmon_net_dedup_hits_total"] == 0.0
        latency = snap["rushmon_net_ack_latency_seconds"]
        assert latency["count"] == batches

        from repro.obs import MetricsExporter

        with MetricsExporter(service.metrics) as exporter:
            body = urllib.request.urlopen(
                f"{exporter.url}/metrics", timeout=5
            ).read().decode()
        assert "rushmon_net_connections_total 1" in body
        assert "rushmon_net_ack_latency_seconds_bucket" in body


def test_instrument_net_client_exports_counters():
    from repro.obs import MetricsRegistry
    from repro.obs.instrument import instrument_net_client

    service = _service()
    registry = MetricsRegistry()
    with RushMonServer(service) as server:
        client = RushMonClient("127.0.0.1", server.port, batch_size=8,
                               flush_interval=0.002)
        instrument_net_client(registry, client)
        with client:
            for op in _ops(24, 8, seed=62):
                client.on_operation(op)
            assert client.flush(10.0)
            snap = registry.snapshot()
    sent = snap["rushmon_net_client_batches_sent_total"]
    assert sent >= 3.0
    assert snap["rushmon_net_client_acked_batches_total"] == sent
    assert snap["rushmon_net_client_retransmits_total"] == 0.0


# -- CLI round trip ------------------------------------------------------------


def _repro_env():
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn_serve(args):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *args],
        env=_repro_env(), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True,
    )
    port = None
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(f"serve exited early: {proc.poll()}")
        if "listening on" in line:
            port = int(line.rsplit(":", 1)[1])
            break
    assert port is not None, "serve never printed its port"
    return proc, port


def test_serve_emit_cli_round_trip(tmp_path):
    """The CI smoke test: `repro serve` + `repro emit` against it, then
    a graceful SIGTERM drain with a final checkpoint."""
    ckpt = str(tmp_path / "serve.ckpt")
    proc, port = _spawn_serve(["--port", "0", "--checkpoint", ckpt,
                               "--no-mob", "--detect-interval", "0.005"])
    try:
        emit = subprocess.run(
            [sys.executable, "-m", "repro", "emit", "--port", str(port),
             "--buus", "60", "--seed", "9"],
            env=_repro_env(), capture_output=True, text=True, timeout=60,
        )
        assert emit.returncode == 0, emit.stdout + emit.stderr
        assert "acked batches" in emit.stdout
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert proc.returncode == 0
    assert "draining" in out
    assert "final checkpoint written" in out
    restored = RushMonService.restore(ckpt)
    assert restored.processed_events == 60 * 6  # 2-key RMW: 4 ops + b/c
    _assert_sr1_differential(restored)
