"""Tests for the repro.obs observability subsystem.

Covers the metric primitives (per-thread counters, callback gauges,
le-bucket histograms), the registry's snapshot/Prometheus/JSON
renderings, the HTTP exporter, and — the load-bearing part — exact
reconciliation of the metrics snapshot against the monitor's own
counters after a multi-threaded run.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.concurrent import RushMonService
from repro.core.config import RushMonConfig
from repro.core.monitor import RushMon
from repro.core.types import Operation, OpType
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsExporter,
    MetricsRegistry,
)
from repro.sim.buu import read_modify_write
from repro.sim.scheduler import ThreadedWorkloadDriver


# -- primitives ---------------------------------------------------------------


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x_total")
        assert c.value == 0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_per_thread_cells_sum_exactly(self):
        """16 threads x 10k increments with no lock must lose nothing:
        each thread owns its cell, so the sum is exact by construction."""
        c = Counter("hits_total")
        per_thread = 10_000
        threads = [
            threading.Thread(
                target=lambda: [c.inc() for _ in range(per_thread)],
                daemon=True,
            )
            for _ in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
            assert not t.is_alive()
        assert c.value == 16 * per_thread


class TestGauge:
    def test_set_and_set_max(self):
        g = Gauge("depth")
        g.set(3)
        g.set_max(2)
        assert g.value == 3.0
        g.set_max(7)
        assert g.value == 7.0

    def test_callback_gauge_reads_live_and_rejects_set(self):
        box = {"v": 1.0}
        g = Gauge("live", fn=lambda: box["v"])
        assert g.value == 1.0
        box["v"] = 9.0
        assert g.value == 9.0
        with pytest.raises(RuntimeError):
            g.set(5)


class TestHistogram:
    def test_buckets_are_cumulative_with_inf(self):
        h = Histogram("lat", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        summary = h.value
        assert summary["count"] == 4
        assert summary["max"] == 5.0
        assert summary["buckets"]["0.01"] == 1
        assert summary["buckets"]["0.1"] == 2
        assert summary["buckets"]["1.0"] == 3
        assert summary["buckets"]["+Inf"] == 4
        assert summary["mean"] == pytest.approx(summary["sum"] / 4)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(1.0, 0.5))


# -- registry -----------------------------------------------------------------


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_names_are_sanitized_for_prometheus(self):
        reg = MetricsRegistry()
        c = reg.counter("weird name-1!")
        assert c.name == "weird_name_1_"
        assert reg.get("weird name-1!") is c

    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(2)
        reg.gauge("g").set(1.5)
        reg.gauge_fn("g_fn", lambda: 42.0)
        reg.histogram("h").observe(0.002)
        snap = reg.snapshot()
        assert snap["c_total"] == 2
        assert snap["g"] == 1.5
        assert snap["g_fn"] == 42.0
        assert snap["h"]["count"] == 1
        # The snapshot must round-trip through JSON (the exporter and the
        # CLI both rely on it).
        assert json.loads(reg.render_json())["g_fn"] == 42.0

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", help="operations").inc(3)
        reg.histogram("lat_seconds", buckets=(0.1, 1.0)).observe(0.05)
        text = reg.render_prometheus()
        assert "# HELP ops_total operations" in text
        assert "# TYPE ops_total counter" in text
        assert "ops_total 3" in text
        assert '# TYPE lat_seconds histogram' in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text
        assert text.endswith("\n")


# -- exporter -----------------------------------------------------------------


class TestExporter:
    def test_serves_prometheus_and_json(self):
        reg = MetricsRegistry()
        reg.counter("demo_total").inc(7)
        with MetricsExporter(reg) as exporter:  # port=0 -> ephemeral
            assert exporter.running and exporter.port > 0
            with urllib.request.urlopen(f"{exporter.url}/metrics") as resp:
                text = resp.read().decode()
                assert resp.headers["Content-Type"].startswith("text/plain")
            assert "demo_total 7" in text
            with urllib.request.urlopen(f"{exporter.url}/metrics.json") as resp:
                payload = json.loads(resp.read())
            assert payload["demo_total"] == 7
        assert not exporter.running

    def test_unknown_path_is_404(self):
        with MetricsExporter(MetricsRegistry()) as exporter:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{exporter.url}/nope")
            assert excinfo.value.code == 404

    def test_stop_is_idempotent_and_port_requires_running(self):
        exporter = MetricsExporter(MetricsRegistry())
        with pytest.raises(RuntimeError):
            exporter.port
        exporter.start()
        exporter.start()  # idempotent
        exporter.stop()
        exporter.stop()

    def test_ephemeral_ports_never_collide_side_by_side(self):
        """port=0 asks the kernel, so N exporters (parallel tests, a
        server and a monitor on one host) all bind distinct ports."""
        exporters = [MetricsExporter(MetricsRegistry()).start()
                     for _ in range(4)]
        try:
            ports = [e.port for e in exporters]
            assert len(set(ports)) == len(ports)
            for exporter in exporters:
                with urllib.request.urlopen(f"{exporter.url}/metrics"):
                    pass
        finally:
            for exporter in exporters:
                exporter.stop()

    def test_bound_port_stays_readable_after_stop(self):
        """Harnesses report where the exporter *was* after shutdown —
        the resolved ephemeral port must survive stop()."""
        exporter = MetricsExporter(MetricsRegistry()).start()
        bound = exporter.port
        assert bound > 0
        exporter.stop()
        assert not exporter.running
        assert exporter.port == bound

    def test_bind_conflict_raises_actionable_error(self):
        """A fixed port that is already taken fails with the address in
        the message and a pointer at port=0, not a bare OSError."""
        first = MetricsExporter(MetricsRegistry()).start()
        try:
            clash = MetricsExporter(MetricsRegistry(), port=first.port)
            with pytest.raises(RuntimeError, match=str(first.port)):
                clash.start()
        finally:
            first.stop()


# -- monitor instrumentation --------------------------------------------------


def _workload(buus, keys, touch, seed):
    import random

    rng = random.Random(seed)
    return [
        read_modify_write(
            [f"k{k}" for k in rng.sample(range(keys), touch)],
            lambda v: (v or 0) + 1,
        )
        for _ in range(buus)
    ]


class TestSerialMonitorMetrics:
    def test_gauges_track_collector_and_detector(self):
        mon = RushMon(RushMonConfig(sampling_rate=1, mob=False))
        mon.begin_buu(1, 0)
        mon.begin_buu(2, 0)
        mon.on_operations([
            Operation(OpType.READ, 1, "x", 1),
            Operation(OpType.READ, 2, "x", 2),
            Operation(OpType.WRITE, 1, "x", 3),
            Operation(OpType.WRITE, 2, "x", 4),
        ])
        mon.commit_buu(1, 5)
        mon.commit_buu(2, 5)
        mon.close_window()
        snap = mon.metrics.snapshot()
        assert snap["rushmon_collector_ops_total"] == 4
        assert snap["rushmon_collector_sampled_ops_total"] == 4
        assert snap["rushmon_collector_sampled_hit_rate"] == 1.0
        assert snap["rushmon_collector_edges_total"] == \
            mon.collector.stats.total
        assert snap["rushmon_monitor_reports_total"] == 1
        assert snap["rushmon_detector_cycles_total"] == \
            mon.detector.counts.two_cycles + mon.detector.counts.three_cycles

    def test_shared_registry_is_reusable(self):
        reg = MetricsRegistry()
        mon = RushMon(RushMonConfig(sampling_rate=1, mob=False), metrics=reg)
        assert mon.metrics is reg
        assert "rushmon_collector_ops_total" in reg.names()


class TestServiceMetricsReconcile:
    def test_snapshot_reconciles_after_drain(self):
        """After a 4-thread run and a clean stop, every metric must agree
        exactly with the service's own counters — metrics are a parallel
        bookkeeping path over the same event stream."""
        service = RushMonService(
            RushMonConfig(sampling_rate=1, mob=False, seed=3,
                          num_shards=4, detect_interval=0.005),
        )
        driver = ThreadedWorkloadDriver([service], num_threads=4, seed=3,
                                        yield_every=7, join_timeout=60.0)
        with service:
            driver.run(_workload(300, 32, 3, seed=3))
        snap = service.metrics.snapshot()
        assert snap["rushmon_service_events_processed_total"] == \
            service.processed_events
        assert snap["rushmon_service_passes_total"] == service.passes
        assert snap["rushmon_service_reports_total"] == len(service.reports)
        assert snap["rushmon_service_pass_seconds"]["count"] == service.passes
        assert snap["rushmon_collector_ops_total"] == driver.ops_emitted
        assert snap["rushmon_collector_sampled_ops_total"] == \
            service.collector.touches
        assert snap["rushmon_collector_lifecycle_events_total"] == \
            2 * driver.buus_completed
        assert snap["rushmon_collector_edges_total"] == \
            service.collector.stats.total
        assert snap["rushmon_collector_journal_depth"] == 0  # drained
        assert snap["rushmon_service_detection_thread_alive"] == 0.0
        assert snap["rushmon_service_report_age_seconds"] >= 0.0

    def test_journal_highwater_and_lock_wait_move(self):
        service = RushMonService(
            RushMonConfig(sampling_rate=1, mob=False, num_shards=2,
                          detect_interval=10.0),  # passes only on stop
        )
        driver = ThreadedWorkloadDriver([service], num_threads=2, seed=1,
                                        join_timeout=60.0)
        with service:
            driver.run(_workload(100, 8, 3, seed=1))
        snap = service.metrics.snapshot()
        assert snap["rushmon_collector_journal_depth_highwater"] > 0
        assert snap["rushmon_collector_lock_wait_seconds_total"] >= 0.0

    def test_unmetered_collector_has_no_overhead_path(self):
        """metrics=None keeps the collector's hot path untimed (the
        perf_counter pair is gated on instrument presence)."""
        from repro.core.concurrent import ShardedCollector

        collector = ShardedCollector(sampling_rate=1, mob=False, num_shards=2)
        assert collector._m_ops is None
        collector.handle(Operation(OpType.WRITE, 1, "x", 1))
        assert collector.ops_seen == 1
