"""Differential tests: the sampled monitor against the *exact checker*.

``tests/test_differential.py`` validates the real-time paths against the
offline monitor — which shares its collector and cycle counter with the
code under test.  Here the ground truth is :mod:`repro.checkers`, which
shares neither, so these differentials can catch bugs in the shared
bookkeeping itself:

- sr=1 bit-exactness across all three paper workloads (ycsb, bookstore,
  graph) x 50 seeds — the full sweep is marked ``oracle`` (CI's oracle
  job); a small smoke subset stays in tier-1;
- sr in {2, 4, 8}: the Theorem 5.2 estimator's mean over independent
  sampler seeds lands within 3 sigma of the checker's exact counts;
- hypothesis properties over shrinkable interleavings: any disagreement
  minimises to a witness history of a handful of operations;
- an injected monitor bug (dropping rw anti-dependency edges) *is*
  caught, with the shrunk minimal witness to prove the harness bites.
"""

from __future__ import annotations

import statistics

import pytest
from hypothesis import HealthCheck, find, given, settings

from repro.checkers import exact_cycle_counts
from repro.core.collector import DataCentricCollector
from repro.core.config import RushMonConfig
from repro.core.detector import CycleDetector
from repro.core.monitor import RushMon
from repro.core.types import EdgeType, Operation
from repro.sim import SimConfig, Simulator
from repro.sim.traces import Trace

from tests.histgen import feed_with_lifecycle, random_history
from tests.strategies import interleavings

WORKLOADS = ("ycsb", "bookstore", "graph")
FULL_SEEDS = range(50)
SMOKE_SEEDS = range(0, 50, 10)


def workload_history(name: str, seed: int) -> list[Operation]:
    """One seeded run of a paper workload, captured as a raw history."""
    trace = Trace()
    if name == "ycsb":
        from repro.workloads.ycsb import YcsbConfig, YcsbWorkload

        workload = YcsbWorkload(YcsbConfig(records=40, theta=0.9, seed=seed))
        sim = Simulator(SimConfig(num_workers=8, write_latency=150,
                                  seed=seed), listeners=[trace])
        sim.run(workload.buus(120))
    elif name == "bookstore":
        from repro.workloads.bookstore import Bookstore, BookstoreConfig

        shop = Bookstore(
            BookstoreConfig(num_books=30, customers=8, books_per_order=3,
                            initial_stock=3, seed=seed),
            SimConfig(num_workers=8, write_latency=120, seed=seed),
        )
        shop.simulator.subscribe(trace)
        shop.run(150)
    elif name == "graph":
        from repro.workloads.graph_workload import (
            GraphWorkload,
            GraphWorkloadConfig,
        )

        workload = GraphWorkload(GraphWorkloadConfig(num_vertices=60,
                                                     neighbor_cap=4,
                                                     seed=seed))
        sim = Simulator(SimConfig(num_workers=8, write_latency=150,
                                  seed=seed), listeners=[trace])
        sim.run(workload.buus(100))
    else:  # pragma: no cover - parametrize guards this
        raise ValueError(name)
    return trace.ops


def monitor_counts(history, *, sampling_rate=1, mob=False, seed=0):
    monitor = RushMon(RushMonConfig(sampling_rate=sampling_rate, mob=mob,
                                    seed=seed))
    feed_with_lifecycle([monitor], history)
    return monitor


def _assert_bit_exact(history):
    exact = exact_cycle_counts(history)
    monitor = monitor_counts(history)
    assert monitor.detector.counts == exact
    e2, e3 = monitor.cumulative_estimates()
    assert e2 == exact.two_cycles
    assert e3 == exact.three_cycles


@pytest.mark.oracle
@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("seed", FULL_SEEDS)
def test_sr1_bit_exact_full_sweep(workload, seed):
    """The acceptance sweep: all three workloads x 50 seeds, sr=1
    monitor counts equal the independent checker's exactly."""
    _assert_bit_exact(workload_history(workload, seed))


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("seed", SMOKE_SEEDS)
def test_sr1_bit_exact_smoke(workload, seed):
    """Tier-1 subset of the sweep (the oracle job runs all 50 seeds)."""
    _assert_bit_exact(workload_history(workload, seed))


@pytest.mark.oracle
@pytest.mark.parametrize("sr", [2, 4, 8])
def test_estimator_unbiased_against_checker(sr):
    """Theorem 5.2 vs the exact checker: over independent sampler seeds
    the estimate's mean must land within 3 standard errors of the
    checker's exact 2-/3-cycle counts."""
    history = random_history(5, num_buus=140, num_keys=8, ops_per_buu=5)
    exact = exact_cycle_counts(history)
    assert exact.two_cycles > 0 and exact.three_cycles > 0
    trials = 200
    e2s, e3s = [], []
    for trial in range(trials):
        monitor = monitor_counts(history, sampling_rate=sr, seed=trial)
        e2, e3 = monitor.cumulative_estimates()
        e2s.append(e2)
        e3s.append(e3)
    for estimates, truth in ((e2s, exact.two_cycles),
                             (e3s, exact.three_cycles)):
        mean = statistics.fmean(estimates)
        stderr = statistics.stdev(estimates) / trials ** 0.5
        assert abs(mean - truth) <= 3 * max(stderr, 1e-9), (
            f"sr={sr}: mean {mean:.2f} vs exact {truth} "
            f"(stderr {stderr:.3f})"
        )


@given(history=interleavings(max_buus=5, max_steps=4, max_keys=3))
def test_monitor_agrees_with_checker_on_any_interleaving(history):
    """The shrinking differential: if the sr=1 monitor ever disagrees
    with the exact checker, hypothesis minimises the interleaving to a
    few operations and prints it."""
    _assert_bit_exact(history)


def _rw_dropping_counts(history):
    """A deliberately broken monitor pipeline: the collector's rw
    anti-dependency edges never reach the detector."""
    collector = DataCentricCollector(sampling_rate=1, mob=False)
    detector = CycleDetector()
    for op in history:
        for edge in collector.handle(op):
            if edge.kind is not EdgeType.RW:  # the injected bug
                detector.add_edge(edge)
    return detector.counts


def test_injected_rw_drop_caught_with_minimal_witness():
    """Acceptance: a monitor that silently drops one edge type *is*
    caught by the differential harness, and the witness shrinks to a
    minimal history (a lost update needs only three operations)."""

    def diverges(history):
        return _rw_dropping_counts(history) != exact_cycle_counts(history)

    witness = find(
        interleavings(max_buus=4, max_steps=3, max_keys=2),
        diverges,
        settings=settings(max_examples=300, deadline=None, database=None,
                          suppress_health_check=list(HealthCheck)),
    )
    assert diverges(witness)
    # Shrunk to a handful of operations — small enough to read in a
    # failure message and replay by hand.
    assert len(witness) <= 8, witness
    # The honest monitor passes the same history.
    exact = exact_cycle_counts(witness)
    assert monitor_counts(witness).detector.counts == exact
