"""Tests for exact cycle counting, cross-checked against networkx."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import CycleCounts
from repro.graph import (
    DependencyGraph,
    count_cycles_johnson,
    count_labelled_short_cycles,
    count_simple_cycles_by_length,
    directed_gnp,
    expected_k_cycles,
    johnson_simple_cycles,
)


def random_digraph(num_vertices: int, num_edges: int, seed: int) -> DependencyGraph:
    rng = random.Random(seed)
    graph = DependencyGraph()
    for v in range(num_vertices):
        graph.add_vertex(v)
    for _ in range(num_edges):
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        graph.add(u, v, label=rng.randrange(5))
    return graph


def nx_from(graph: DependencyGraph) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(graph.vertices)
    g.add_edges_from((u, v) for u, v, _ in graph.edges())
    return g


class TestJohnson:
    def test_triangle(self):
        graph = DependencyGraph()
        graph.add(1, 2, "x")
        graph.add(2, 3, "y")
        graph.add(3, 1, "z")
        cycles = list(johnson_simple_cycles(graph))
        assert cycles == [[1, 2, 3]]

    def test_two_cycle(self):
        graph = DependencyGraph()
        graph.add(1, 2, "x")
        graph.add(2, 1, "y")
        assert list(johnson_simple_cycles(graph)) == [[1, 2]]

    def test_acyclic(self):
        graph = DependencyGraph()
        graph.add(1, 2, "x")
        graph.add(2, 3, "x")
        graph.add(1, 3, "x")
        assert list(johnson_simple_cycles(graph)) == []

    def test_complete_graph_k4(self):
        graph = DependencyGraph()
        for u in range(4):
            for v in range(4):
                if u != v:
                    graph.add(u, v, "x")
        # K4 directed: 2-cycles C(4,2)=6; 3-cycles 4C3 * 2 = 8; 4-cycles 3!=6
        by_len = count_cycles_johnson(graph)
        assert by_len == {2: 6, 3: 8, 4: 6}

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx(self, seed):
        graph = random_digraph(8, 18, seed)
        ours = sorted(tuple(c) for c in johnson_simple_cycles(graph))
        theirs = sorted(
            tuple(_canonical(c)) for c in nx.simple_cycles(nx_from(graph))
        )
        assert ours == theirs


def _canonical(cycle):
    """Rotate a vertex cycle so it starts at its smallest element."""
    i = cycle.index(min(cycle))
    return cycle[i:] + cycle[:i]


class TestBoundedCounts:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_johnson(self, seed):
        graph = random_digraph(10, 25, seed)
        bounded = count_simple_cycles_by_length(graph, max_length=5)
        full = count_cycles_johnson(graph, max_length=5)
        for length in range(2, 6):
            assert bounded[length] == full.get(length, 0)

    def test_empty_graph(self):
        graph = DependencyGraph()
        assert count_simple_cycles_by_length(graph) == {k: 0 for k in range(2, 6)}

    @given(st.integers(0, 2**31), st.integers(3, 12), st.integers(0, 40))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_networkx_triangles(self, seed, n, e):
        graph = random_digraph(n, e, seed)
        ours = count_simple_cycles_by_length(graph, max_length=3)
        expect = {2: 0, 3: 0}
        for cycle in nx.simple_cycles(nx_from(graph)):
            if len(cycle) in expect:
                expect[len(cycle)] += 1
        assert ours[2] == expect[2]
        assert ours[3] == expect[3]


class TestLabelledShortCycles:
    def test_single_2cycle_same_label(self):
        graph = DependencyGraph()
        graph.add(1, 2, "x")
        graph.add(2, 1, "x")
        counts = count_labelled_short_cycles(graph)
        assert (counts.ss, counts.dd) == (1, 0)

    def test_single_2cycle_distinct_labels(self):
        graph = DependencyGraph()
        graph.add(1, 2, "x")
        graph.add(2, 1, "y")
        counts = count_labelled_short_cycles(graph)
        assert (counts.ss, counts.dd) == (0, 1)

    def test_parallel_labels_multiply(self):
        graph = DependencyGraph()
        graph.add(1, 2, "x")
        graph.add(1, 2, "y")
        graph.add(2, 1, "x")
        graph.add(2, 1, "z")
        counts = count_labelled_short_cycles(graph)
        # combos: (x,x)=ss, (x,z), (y,x), (y,z) -> 1 ss + 3 dd
        assert (counts.ss, counts.dd) == (1, 3)

    def test_triangle_label_classes(self):
        graph = DependencyGraph()
        graph.add(1, 2, "x")
        graph.add(2, 3, "x")
        graph.add(3, 1, "x")
        counts = count_labelled_short_cycles(graph)
        assert (counts.sss, counts.ssd, counts.ddd) == (1, 0, 0)

        graph2 = DependencyGraph()
        graph2.add(1, 2, "x")
        graph2.add(2, 3, "x")
        graph2.add(3, 1, "y")
        counts2 = count_labelled_short_cycles(graph2)
        assert (counts2.sss, counts2.ssd, counts2.ddd) == (0, 1, 0)

        graph3 = DependencyGraph()
        graph3.add(1, 2, "x")
        graph3.add(2, 3, "y")
        graph3.add(3, 1, "z")
        counts3 = count_labelled_short_cycles(graph3)
        assert (counts3.sss, counts3.ssd, counts3.ddd) == (0, 0, 1)

    def test_triangle_parallel_label_expansion(self):
        graph = DependencyGraph()
        graph.add(1, 2, "x")
        graph.add(1, 2, "y")
        graph.add(2, 3, "x")
        graph.add(3, 1, "x")
        counts = count_labelled_short_cycles(graph)
        # (x,x,x)=sss and (y,x,x)=ssd
        assert (counts.sss, counts.ssd, counts.ddd) == (1, 1, 0)

    @pytest.mark.parametrize("seed", range(6))
    def test_total_matches_bounded_when_single_label(self, seed):
        rng = random.Random(seed)
        graph = DependencyGraph()
        for _ in range(30):
            graph.add(rng.randrange(9), rng.randrange(9), label="only")
        counts = count_labelled_short_cycles(graph)
        by_len = count_simple_cycles_by_length(graph, max_length=3)
        assert counts.two_cycles == by_len[2]
        assert counts.three_cycles == by_len[3]
        assert counts.dd == 0 and counts.ssd == 0 and counts.ddd == 0

    def test_brute_force_label_expansion(self):
        """Cross-check label classes against a brute-force triple loop."""
        rng = random.Random(7)
        graph = DependencyGraph()
        for _ in range(40):
            graph.add(rng.randrange(7), rng.randrange(7), label=rng.randrange(3))
        expected = _brute_force_labelled(graph)
        actual = count_labelled_short_cycles(graph)
        assert (actual.ss, actual.dd) == (expected.ss, expected.dd)
        assert (actual.sss, actual.ssd, actual.ddd) == (
            expected.sss,
            expected.ssd,
            expected.ddd,
        )


def _brute_force_labelled(graph: DependencyGraph) -> CycleCounts:
    counts = CycleCounts()
    verts = sorted(graph.vertices)
    for i, u in enumerate(verts):
        for v in verts[i + 1 :]:
            for a in graph.labels(u, v):
                for b in graph.labels(v, u):
                    if a == b:
                        counts.ss += 1
                    else:
                        counts.dd += 1
    for u in verts:
        for v in verts:
            for w in verts:
                if len({u, v, w}) != 3 or not (u < v and u < w):
                    continue
                for a in graph.labels(u, v):
                    for b in graph.labels(v, w):
                        for c in graph.labels(w, u):
                            distinct = len({a, b, c})
                            if distinct == 1:
                                counts.sss += 1
                            elif distinct == 2:
                                counts.ssd += 1
                            else:
                                counts.ddd += 1
    return counts


class TestGnpTheory:
    def test_expected_formula(self):
        # n=5, k=2: 5*4/2 * p^2
        assert expected_k_cycles(5, 0.5, 2) == pytest.approx(10 * 0.25)
        assert expected_k_cycles(5, 0.1, 3) == pytest.approx(60 / 3 * 1e-3)
        assert expected_k_cycles(3, 0.5, 4) == 0.0

    def test_empirical_mean_close(self):
        n, p, trials = 12, 0.15, 200
        total2 = total3 = 0
        for seed in range(trials):
            graph = directed_gnp(n, p, random.Random(seed))
            by_len = count_simple_cycles_by_length(graph, max_length=3)
            total2 += by_len[2]
            total3 += by_len[3]
        mean2 = total2 / trials
        mean3 = total3 / trials
        assert mean2 == pytest.approx(expected_k_cycles(n, p, 2), rel=0.25)
        assert mean3 == pytest.approx(expected_k_cycles(n, p, 3), rel=0.25)
