"""Tests for ANSI anomaly-pattern classification of 2-cycles (§3)."""

import pytest

from repro.core.collector import BaselineCollector
from repro.core.detector import CycleDetector
from repro.core.monitor import RushMon
from repro.core.config import RushMonConfig
from repro.core.patterns import (
    AnomalyPattern,
    PatternCounts,
    classify_two_cycle,
)
from repro.core.types import EdgeType, Operation, OpType


def ops_from(spec):
    out = []
    for seq, (kind, buu, key) in enumerate(spec, start=1):
        op_type = OpType.READ if kind == "r" else OpType.WRITE
        out.append(Operation(op_type, buu, key, seq))
    return out


def detect(spec):
    """Run a history through Algorithm 1 + the detector; return patterns."""
    detector = CycleDetector()
    detector.add_edges(BaselineCollector().handle_all(ops_from(spec)))
    return detector.patterns


class TestClassifier:
    def test_lost_update(self):
        assert classify_two_cycle(
            EdgeType.RW, "x", EdgeType.WW, "x"
        ) is AnomalyPattern.LOST_UPDATE

    def test_rw_ww_cross_item_is_other(self):
        assert classify_two_cycle(
            EdgeType.RW, "x", EdgeType.WW, "y"
        ) is AnomalyPattern.OTHER

    def test_unrepeatable_read(self):
        assert classify_two_cycle(
            EdgeType.RW, "x", EdgeType.WR, "x"
        ) is AnomalyPattern.UNREPEATABLE_READ

    def test_read_skew(self):
        assert classify_two_cycle(
            EdgeType.RW, "x", EdgeType.WR, "y"
        ) is AnomalyPattern.READ_SKEW

    def test_write_skew(self):
        assert classify_two_cycle(
            EdgeType.RW, "x", EdgeType.RW, "y"
        ) is AnomalyPattern.WRITE_SKEW

    def test_same_item_rw_rw_is_other(self):
        assert classify_two_cycle(
            EdgeType.RW, "x", EdgeType.RW, "x"
        ) is AnomalyPattern.OTHER

    def test_dirty_write_cycle(self):
        assert classify_two_cycle(
            EdgeType.WW, "x", EdgeType.WW, "y"
        ) is AnomalyPattern.DIRTY_WRITE_CYCLE
        assert classify_two_cycle(
            EdgeType.WW, "x", EdgeType.WR, "x"
        ) is AnomalyPattern.DIRTY_WRITE_CYCLE

    def test_read_cycle(self):
        assert classify_two_cycle(
            EdgeType.WR, "x", EdgeType.WR, "y"
        ) is AnomalyPattern.READ_CYCLE

    def test_symmetry(self):
        """Classification does not depend on edge order."""
        for a, b in [(EdgeType.RW, EdgeType.WW), (EdgeType.RW, EdgeType.WR),
                     (EdgeType.WW, EdgeType.WR)]:
            assert classify_two_cycle(a, "x", b, "x") is classify_two_cycle(
                b, "x", a, "x"
            )


class TestEndToEndHistories:
    """The canonical ANSI histories, through Algorithm 1 + detector."""

    def test_lost_update_history(self):
        patterns = detect(
            [("w", 0, "x"), ("r", 1, "x"), ("r", 2, "x"),
             ("w", 1, "x"), ("w", 2, "x")]
        )
        assert patterns.get(AnomalyPattern.LOST_UPDATE) == 1
        assert patterns.total == 1

    def test_unrepeatable_read_history(self):
        # r1(x) w2(x) r1(x): T1's first read is overwritten, second read
        # sees T2's write.
        patterns = detect(
            [("w", 0, "x"), ("r", 1, "x"), ("w", 2, "x"), ("r", 1, "x")]
        )
        assert patterns.get(AnomalyPattern.UNREPEATABLE_READ) == 1

    def test_read_skew_history(self):
        # r1(x); T2 writes x and y; r1(y): T1 saw old x and new y.
        patterns = detect(
            [("w", 0, "x"), ("w", 0, "y"),
             ("r", 1, "x"), ("w", 2, "x"), ("w", 2, "y"), ("r", 1, "y")]
        )
        assert patterns.get(AnomalyPattern.READ_SKEW) == 1

    def test_write_skew_history(self):
        # r1(x) r2(y) w1(y) w2(x): the constraint-violating crossover.
        patterns = detect(
            [("w", 0, "x"), ("w", 0, "y"),
             ("r", 1, "x"), ("r", 2, "y"), ("w", 1, "y"), ("w", 2, "x")]
        )
        assert patterns.get(AnomalyPattern.WRITE_SKEW) == 1

    def test_serial_history_no_patterns(self):
        patterns = detect(
            [("r", 1, "x"), ("w", 1, "x"), ("r", 2, "x"), ("w", 2, "x")]
        )
        assert patterns.total == 0


class TestPatternCounts:
    def test_record_and_total(self):
        counts = PatternCounts()
        counts.record(AnomalyPattern.LOST_UPDATE)
        counts.record(AnomalyPattern.LOST_UPDATE)
        counts.record(AnomalyPattern.WRITE_SKEW)
        assert counts.get(AnomalyPattern.LOST_UPDATE) == 2
        assert counts.total == 3
        assert counts.as_dict() == {"lost_update": 2, "write_skew": 1}

    def test_copy_is_independent(self):
        counts = PatternCounts()
        counts.record(AnomalyPattern.READ_SKEW)
        clone = counts.copy()
        counts.record(AnomalyPattern.READ_SKEW)
        assert clone.get(AnomalyPattern.READ_SKEW) == 1


class TestMonitorWindows:
    def test_report_carries_window_patterns(self):
        mon = RushMon(RushMonConfig(sampling_rate=1, mob=False))
        mon.on_operations(ops_from(
            [("w", 0, "x"), ("r", 1, "x"), ("r", 2, "x"),
             ("w", 1, "x"), ("w", 2, "x")]
        ))
        first = mon.close_window()
        assert first.patterns == {"lost_update": 1}
        second = mon.close_window()
        assert second.patterns == {}

    def test_pattern_totals_match_two_cycles(self):
        """Every counted 2-cycle is classified exactly once."""
        import random

        rng = random.Random(3)
        spec = [("r" if rng.random() < 0.5 else "w",
                 rng.randrange(20), rng.randrange(6)) for _ in range(400)]
        mon = RushMon(RushMonConfig(sampling_rate=1, mob=False))
        mon.on_operations(ops_from(spec))
        assert mon.detector.patterns.total == mon.detector.counts.two_cycles
