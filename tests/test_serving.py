"""Overload-resilient serving: event-loop transport, admission control,
fairness and slow-client defenses (``repro.net.eventloop``).

The bit-compatibility of the event-loop transport with the protocol,
dedup and recovery semantics is covered by the whole of ``test_net.py``
/ ``test_net_chaos.py`` running against it as the default.  This file
covers what is *new*:

- typed ``overloaded`` admission refusals (with ``retry_after``) and
  accept pause/resume at ``max_connections``;
- the client honoring ``retry_after`` and counting refusals;
- slowloris (partial-frame) and idle deadlines;
- the drain deadline staying bounded under a frozen loop (``stall``
  fault at ``net.select``), with force-closes counted;
- serve CLI / config validation for the new knobs;
- the event-loop vs thread-per-connection vs offline sr=1 differential.

Heavy legs (1000-connection smoke, 10:1 fairness under saturation, the
10-seed differential sweep) are marked ``serving`` and run in their own
CI job.
"""

import argparse
import socket
import subprocess
import sys
import time

import pytest

from repro.core.concurrent import RushMonService
from repro.core.config import RushMonConfig
from repro.core.monitor import OfflineAnomalyMonitor
from repro.core.types import Operation, OpType
from repro.net import RushMonClient, RushMonServer, protocol
from repro.testing import Fault, FaultInjector

from tests.test_net import _ops, _service


def _serve(faults=None, *, service=None, **kwargs):
    kwargs.setdefault("ack_interval", 0.01)
    return RushMonServer(service or _service(faults), faults=faults,
                         **kwargs)


class _Raw:
    """A hand-driven protocol speaker (see test_net._RawClient; this one
    tolerates EOF, which the defense tests need to observe)."""

    def __init__(self, port, timeout=5.0):
        self.sock = socket.create_connection(("127.0.0.1", port),
                                             timeout=timeout)
        self.reader = protocol.FrameReader()

    def send(self, message):
        self.sock.sendall(protocol.encode_frame(message))

    def recv(self, timeout=5.0):
        """Next message, or None on EOF."""
        self.sock.settimeout(timeout)
        while True:
            data = self.sock.recv(65536)
            if not data:
                return None
            for message in self.reader.feed(data):
                return message

    def eof(self, timeout=5.0):
        """True iff the server closed the connection within timeout."""
        self.sock.settimeout(timeout)
        try:
            while True:
                if not self.sock.recv(65536):
                    return True
        except (socket.timeout, ConnectionError, OSError):
            return False

    def close(self):
        self.sock.close()


# -- protocol + fault vocabulary -----------------------------------------------


def test_overloaded_error_carries_retry_after():
    message = protocol.error("overloaded", "at capacity", retriable=True,
                             retry_after=0.25)
    assert message["retry_after"] == 0.25
    [decoded] = list(protocol.FrameReader().feed(
        protocol.encode_frame(message)))
    assert decoded == message
    # Omitted hint stays off the wire entirely.
    assert "retry_after" not in protocol.error("overloaded", "x",
                                               retriable=True)


def test_fault_vocabulary_for_serving():
    FaultInjector().inject(Fault("net.select", kind="stall", delay=0.01))
    FaultInjector().inject(Fault("net.select", kind="slow-read"))
    FaultInjector().inject(Fault("net.recv", kind="slow-read"))
    with pytest.raises(ValueError):
        Fault("net.recv", kind="stall")
    with pytest.raises(ValueError):
        Fault("net.send", kind="slow-read")
    with pytest.raises(ValueError):
        Fault("net.sel", kind="stall")


# -- admission control ---------------------------------------------------------


def test_admission_refusal_is_typed_and_accepts_resume():
    with _serve(max_connections=1, overload_retry_after=0.2) as server:
        first = _Raw(server.port)
        first.send(protocol.hello("adm-a", 0))
        assert first.recv()["type"] == "welcome"

        # The tipping connection gets the typed refusal, then EOF.
        refused = _Raw(server.port)
        message = refused.recv()
        assert message is not None and message["type"] == "error"
        assert message["code"] == "overloaded"
        assert message["retriable"] is True
        assert message["retry_after"] == pytest.approx(0.2)
        assert refused.eof()
        refused.close()
        assert server.admission_refusals_total == 1

        # Freeing the slot resumes accepts: a fresh client is welcomed.
        first.send(protocol.bye())
        first.close()
        deadline = time.monotonic() + 5.0
        welcomed = False
        while time.monotonic() < deadline and not welcomed:
            again = _Raw(server.port)
            again.send(protocol.hello("adm-b", 0))
            reply = again.recv(timeout=1.0)
            welcomed = reply is not None and reply["type"] == "welcome"
            again.close()
            if not welcomed:
                time.sleep(0.05)
        assert welcomed


def test_client_honors_retry_after_and_counts_refusals():
    with _serve(max_connections=1, overload_retry_after=0.1) as server:
        hog = _Raw(server.port)
        hog.send(protocol.hello("hog", 0))
        assert hog.recv()["type"] == "welcome"

        client = RushMonClient("127.0.0.1", server.port, batch_size=8,
                               flush_interval=0.005, backoff_base=0.01,
                               backoff_max=0.5)
        client.start()
        try:
            # Exactly one typed refusal is expected: the tipping
            # connection is refused, then accepts pause and the
            # client's backoff-paced retries queue in the backlog.
            deadline = time.monotonic() + 5.0
            while client.refusals_total < 1 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert client.refusals_total >= 1
            assert client.counters()["refusals"] >= 1

            # Slot freed: the next backoff-paced retry gets in and the
            # session delivers normally.
            hog.send(protocol.bye())
            hog.close()
            for op in _ops(40, 8, seed=3):
                client.on_operation(op)
            assert client.flush(10.0)
        finally:
            client.close()
        assert server.stats["events_ingested"] == 40
    assert server.admission_refusals_total >= 1


# -- slow-client defenses ------------------------------------------------------


def test_slowloris_partial_frame_is_disconnected():
    with _serve(partial_frame_timeout=0.25, idle_timeout=None) as server:
        loris = _Raw(server.port)
        whole = protocol.encode_frame(protocol.hello("loris", 0))
        loris.sock.sendall(whole[:5])  # header dribble, never finished
        assert loris.eof(timeout=5.0)
        loris.close()
        assert server.partial_frame_disconnects_total == 1
        # A whole-frame client on the same server is untouched.
        ok = _Raw(server.port)
        ok.send(protocol.hello("ok", 0))
        assert ok.recv()["type"] == "welcome"
        ok.close()


def test_partial_frame_clock_not_reset_by_trickle():
    """Dribbling one byte per interval must not dodge the deadline: the
    clock starts at the first partial byte and only a completed frame
    clears it."""
    with _serve(partial_frame_timeout=0.4, idle_timeout=None) as server:
        loris = _Raw(server.port)
        whole = protocol.encode_frame(protocol.hello("loris", 0))
        start = time.monotonic()
        closed = False
        for i in range(min(10, len(whole) - 1)):
            try:
                loris.sock.sendall(whole[i:i + 1])
            except (ConnectionError, OSError):
                closed = True
                break
            time.sleep(0.1)
        assert closed or loris.eof(timeout=5.0)
        assert time.monotonic() - start < 4.0
        loris.close()
        assert server.partial_frame_disconnects_total == 1


def test_idle_connection_is_disconnected():
    with _serve(idle_timeout=0.3) as server:
        idler = _Raw(server.port)
        idler.send(protocol.hello("idler", 0))
        assert idler.recv()["type"] == "welcome"
        assert idler.eof(timeout=5.0)
        idler.close()
        assert server.idle_disconnects_total == 1


# -- drain ---------------------------------------------------------------------


def test_drain_deadline_bounded_when_loop_frozen():
    """A stall fault freezes the loop threads mid-select; drain() must
    still return within its one deadline, force-closing what could not
    be flushed and counting it."""
    faults = FaultInjector().inject(
        Fault("net.select", kind="stall", delay=3.0, after=10, times=50)
    )
    server = _serve(faults, drain_timeout=1.0)
    server.start()
    conn = _Raw(server.port)
    conn.send(protocol.hello("frozen", 0))
    assert conn.recv()["type"] == "welcome"
    # Let the fault arm (after=10 keeps the handshake clean), then
    # give the loops a moment to freeze inside the stalled select.
    time.sleep(0.5)
    start = time.monotonic()
    server.drain()
    elapsed = time.monotonic() - start
    assert elapsed < 4.0
    assert server.drain_forced_total >= 1
    conn.close()


# -- CLI + config validation ---------------------------------------------------


def test_serve_cli_rejects_bad_flags():
    bad = [
        ["--max-connections", "0"],
        ["--loop-threads", "-1"],
        ["--idle-timeout", "-2"],
        ["--drain-timeout", "0"],
    ]
    for extra in bad:
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--port", "0", *extra],
            capture_output=True, text=True, env={"PYTHONPATH": "src"},
        )
        assert proc.returncode != 0
        assert extra[0] in proc.stderr, (extra, proc.stderr)


def test_config_serving_validation_names_the_field():
    for kwargs, field in [
        ({"loop_threads": -1}, "loop_threads"),
        ({"max_connections": 0}, "max_connections"),
        ({"idle_timeout": -1.0}, "idle_timeout"),
        ({"drain_timeout": 0.0}, "drain_timeout"),
    ]:
        with pytest.raises(ValueError, match=field):
            RushMonConfig(**kwargs)


def test_from_cli_args_idle_timeout_zero_disables():
    cfg = RushMonConfig.from_cli_args(argparse.Namespace(idle_timeout=0.0))
    assert cfg.idle_timeout is None
    cfg = RushMonConfig.from_cli_args(argparse.Namespace())
    assert cfg.idle_timeout == RushMonConfig().idle_timeout
    cfg = RushMonConfig.from_cli_args(argparse.Namespace(
        idle_timeout=12.5, loop_threads=3, max_connections=77,
        drain_timeout=2.5))
    assert (cfg.idle_timeout, cfg.loop_threads, cfg.max_connections,
            cfg.drain_timeout) == (12.5, 3, 77, 2.5)


def test_server_rejects_bad_serving_kwargs():
    service = _service()
    try:
        for kwargs in [{"loop_threads": -1}, {"max_connections": 0},
                       {"idle_timeout": 0}, {"partial_frame_timeout": 0},
                       {"inflight_cap": 0}, {"write_high_watermark": 1},
                       {"overload_retry_after": 0}]:
            with pytest.raises(ValueError):
                RushMonServer(service, **kwargs)
    finally:
        service.stop()


# -- differential --------------------------------------------------------------


def _ingest_counts(ops, *, loop_threads, seed):
    service = _service()
    with RushMonServer(service, loop_threads=loop_threads) as server:
        with RushMonClient("127.0.0.1", server.port, batch_size=32,
                           flush_interval=0.005) as client:
            for op in ops:
                client.on_operation(op)
            assert client.flush(10.0)
    return service.counts()


def _offline_counts(ops):
    offline = OfflineAnomalyMonitor()
    for op in ops:
        offline.on_operation(op)
    return offline.exact_counts()


def test_eventloop_matches_threaded_and_offline_smoke():
    for seed in (7, 8):
        ops = _ops(300, 10, seed=seed)
        expected = _offline_counts(ops)
        assert _ingest_counts(ops, loop_threads=2, seed=seed) == expected
        assert _ingest_counts(ops, loop_threads=0, seed=seed) == expected


@pytest.mark.serving
def test_sr1_differential_ten_seeds():
    """The acceptance differential: event-loop transport, legacy
    thread-per-connection transport and the offline monitor agree
    bit-exactly on sr=1 counts across 10 seeds."""
    for seed in range(10):
        ops = _ops(400, 12, seed=100 + seed)
        expected = _offline_counts(ops)
        assert _ingest_counts(ops, loop_threads=2, seed=seed) == expected, seed
        assert _ingest_counts(ops, loop_threads=0, seed=seed) == expected, seed


# -- scale + fairness (serving job) --------------------------------------------


@pytest.mark.serving
def test_thousand_connection_smoke():
    """>= 1000 concurrent sessions on the fixed loop pool: every hello
    is welcomed and every ping answered while all stay open."""
    count = 1000
    with _serve(idle_timeout=None) as server:
        socks = []
        try:
            for i in range(count):
                sock = socket.create_connection(("127.0.0.1", server.port),
                                                timeout=30.0)
                sock.sendall(protocol.encode_frame(
                    protocol.hello(f"smoke-{i}", 0)))
                socks.append(sock)
            readers = [protocol.FrameReader() for _ in socks]

            def pump(sock, reader, want, timeout=60.0):
                sock.settimeout(timeout)
                while True:
                    for message in reader.feed(sock.recv(65536)):
                        if message["type"] == want:
                            return message

            for sock, reader in zip(socks, readers):
                assert pump(sock, reader, "welcome") is not None
            assert server.connections_current >= count
            for i, (sock, reader) in enumerate(zip(socks, readers)):
                sock.sendall(protocol.encode_frame(protocol.ping(i)))
            for i, (sock, reader) in enumerate(zip(socks, readers)):
                assert pump(sock, reader, "pong")["nonce"] == i
            assert server.connections_total >= count
        finally:
            for sock in socks:
                sock.close()


@pytest.mark.serving
def test_fairness_light_client_not_starved_by_heavy():
    """10:1 offered rates with the heavy side past saturation: the
    round-robin dispatcher + in-flight caps must keep the light session
    acked and responsive (bounds are generous — the reference host is
    single-core, so everything shares one CPU)."""
    from repro.bench.loadgen import OpenLoopEmitter, record_workload, \
        run_emitters

    records = record_workload("ycsb", buus=4000, seed=5)
    service = RushMonService(
        RushMonConfig(sampling_rate=20, mob=True, seed=0, num_shards=2,
                      detect_interval=3600.0),
        record_trace=False,
    )
    with RushMonServer(service, ack_interval=0.02) as server:
        heavy = OpenLoopEmitter("127.0.0.1", server.port, records,
                                target_rate=20000, batch_size=64,
                                session="heavy", drain_window=10.0)
        light = OpenLoopEmitter("127.0.0.1", server.port,
                                records[:2000], target_rate=2000,
                                batch_size=64, session="light",
                                drain_window=10.0)
        heavy_result, light_result = run_emitters([heavy, light])
    assert light_result.error is None
    light_fraction = (light_result.acked_events
                      / max(1, light_result.offered_events))
    assert light_fraction >= 0.9, light_result.summary()
    assert light_result.percentile(0.99) < 5.0, light_result.summary()
    # The heavy session is past saturation but must still make real
    # progress (shed/slowed, never starved or stalled out entirely).
    heavy_fraction = (heavy_result.acked_events
                      / max(1, heavy_result.offered_events))
    assert heavy_fraction > 0.2, heavy_result.summary()
