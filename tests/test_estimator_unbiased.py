"""Statistical check of Theorem 5.2: the DCS estimator is unbiased.

On one fixed conflict-heavy trace, run the monitor at ``sr ∈ {2, 4, 8}``
over 200 independent item samples (the known item universe is
materialized, so each seed draws exact Bernoulli(p) inclusions — the
theorem's assumption) and assert the mean estimate lands within a
3-sigma band of the exact 2-/3-cycle counts, where sigma is the standard
error of the mean.  Everything is seeded, so the test is deterministic.
"""

import math

import pytest

from repro.core.config import RushMonConfig
from repro.core.monitor import OfflineAnomalyMonitor, RushMon

from tests.histgen import random_history

TRIALS = 200
SAMPLING_RATES = (2, 4, 8)

#: One fixed trace for every sampling rate: all BUUs run concurrently,
#: half writes, long enough that every estimator label class is hit.
HISTORY = random_history(42, num_buus=300, num_keys=24, ops_per_buu=6,
                         write_frac=0.5, skew=1.0)
ITEMS = sorted({op.key for op in HISTORY})


def _truth():
    offline = OfflineAnomalyMonitor()
    offline.on_operations(HISTORY)
    return offline.exact_counts()


TRUTH = _truth()


def test_trace_has_signal():
    """The fixture must exercise both estimator paths: plenty of cycles,
    including distinct-label ones (the 1/p**2, 1/p**3 classes)."""
    assert TRUTH.two_cycles > 20
    assert TRUTH.three_cycles > 100
    assert TRUTH.dd > 0
    assert TRUTH.ssd + TRUTH.ddd > 0


@pytest.mark.parametrize("sr", SAMPLING_RATES)
def test_estimator_mean_within_three_sigma(sr):
    estimates_2 = []
    estimates_3 = []
    for seed in range(TRIALS):
        monitor = RushMon(
            RushMonConfig(sampling_rate=sr, mob=False, seed=seed),
            items=ITEMS,
        )
        monitor.on_operations(HISTORY)
        e2, e3 = monitor.cumulative_estimates()
        estimates_2.append(e2)
        estimates_3.append(e3)

    for estimates, truth in ((estimates_2, TRUTH.two_cycles),
                             (estimates_3, TRUTH.three_cycles)):
        mean = sum(estimates) / TRIALS
        variance = sum((e - mean) ** 2 for e in estimates) / (TRIALS - 1)
        stderr = math.sqrt(variance / TRIALS)
        assert stderr > 0, "degenerate sample: no estimator variance"
        assert abs(mean - truth) <= 3 * stderr, (
            f"sr={sr}: mean {mean:.2f} vs truth {truth} "
            f"is {abs(mean - truth) / stderr:.2f} sigma off (se={stderr:.2f})"
        )
