"""End-to-end integration scenarios across the full stack."""

import random

import pytest

from repro.core.config import RushMonConfig
from repro.core.monitor import OfflineAnomalyMonitor, RushMon
from repro.core.serializability import check_history
from repro.sim import SimConfig, Simulator, Trace
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload


def monitored_ycsb_run(isolation, seed=9, buus=400):
    workload = YcsbWorkload(YcsbConfig(records=200, keys_per_txn=2,
                                       read=0.2, update=0.0, rmw=0.8,
                                       theta=0.9, seed=seed))
    monitor = RushMon(RushMonConfig(sampling_rate=1, mob=False,
                                    pruning="both", prune_interval=100))
    offline = OfflineAnomalyMonitor()
    trace = Trace()
    sim = Simulator(
        SimConfig(num_workers=16, seed=seed, write_latency=100,
                  compute_jitter=10, isolation=isolation),
        listeners=[monitor, offline, trace],
    )
    sim.run(workload.buus(buus))
    return monitor, offline, trace, sim


class TestFullStack:
    def test_monitor_matches_offline_on_ycsb(self):
        monitor, offline, _, _ = monitored_ycsb_run("none")
        e2, e3 = monitor.cumulative_estimates()
        exact = offline.exact_counts()
        assert e2 == exact.two_cycles
        assert e3 == exact.three_cycles
        assert exact.two_cycles > 0

    def test_serializable_stack_is_quiet_and_checks_clean(self):
        monitor, offline, trace, _ = monitored_ycsb_run("serializable")
        e2, e3 = monitor.cumulative_estimates()
        assert e2 == 0 and e3 == 0
        verdict = check_history(trace.ops)
        assert verdict.serializable

    def test_chaotic_stack_fails_serializability(self):
        _, _, trace, _ = monitored_ycsb_run("none")
        verdict = check_history(trace.ops)
        assert not verdict.serializable

    def test_trace_replay_reproduces_monitor(self, tmp_path):
        monitor, _, trace, _ = monitored_ycsb_run("none")
        path = tmp_path / "ycsb.jsonl"
        trace.save(path)
        replayed = RushMon(RushMonConfig(sampling_rate=1, mob=False,
                                         pruning="both", prune_interval=100))
        Trace.load(path).replay([replayed])
        assert replayed.cumulative_estimates() == monitor.cumulative_estimates()
        assert (replayed.detector.patterns.as_dict()
                == monitor.detector.patterns.as_dict())

    def test_sampled_mob_monitor_is_cheap_and_close(self):
        """The deployed configuration (sr=20, MOB, pruning) touches a
        small fraction of operations and lands within an order of
        magnitude on a single run (tight accuracy needs averaging,
        which the estimator tests cover)."""
        workload = YcsbWorkload(YcsbConfig(records=400, keys_per_txn=2,
                                           read=0.2, update=0.0, rmw=0.8,
                                           theta=0.9, seed=10))
        full = RushMon(RushMonConfig(sampling_rate=1, mob=False))
        deployed = RushMon(RushMonConfig(sampling_rate=5, mob=True, seed=2))
        deployed.collector.sampler.materialize(workload.items)
        sim = Simulator(
            SimConfig(num_workers=16, seed=10, write_latency=100,
                      compute_jitter=10),
            listeners=[full, deployed],
        )
        sim.run(workload.buus(1200))
        assert deployed.collector.touches < 0.4 * full.collector.touches
        exact2, _ = full.cumulative_estimates()
        est2, _ = deployed.cumulative_estimates()
        if exact2 >= 50:
            assert est2 == pytest.approx(exact2, rel=0.8)

    def test_windowed_reports_sum_to_cumulative(self):
        workload = YcsbWorkload(YcsbConfig(records=150, seed=11))
        monitor = RushMon(RushMonConfig(sampling_rate=1, mob=False))
        sim = Simulator(SimConfig(num_workers=8, seed=11, write_latency=50),
                        listeners=[monitor])
        total_from_windows = 0.0
        for _ in range(5):
            sim.run(workload.buus(150))
            report = monitor.close_window(sim.now)
            total_from_windows += report.estimated_2
        e2, _ = monitor.cumulative_estimates()
        assert total_from_windows == pytest.approx(e2)


class TestPublicApiSurface:
    def test_core_exports_resolve(self):
        import repro.core as core

        for name in core.__all__:
            assert getattr(core, name) is not None

    def test_all_public_modules_documented(self):
        """Every public module and every public class/function in the
        package carries a docstring — the documentation deliverable,
        enforced."""
        import importlib
        import inspect
        import pkgutil

        import repro

        undocumented = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if info.name.endswith("__main__"):
                continue
            module = importlib.import_module(info.name)
            if not module.__doc__:
                undocumented.append(info.name)
            for name, member in vars(module).items():
                if name.startswith("_"):
                    continue
                if inspect.isclass(member) or inspect.isfunction(member):
                    if getattr(member, "__module__", None) != info.name:
                        continue
                    if not inspect.getdoc(member):
                        undocumented.append(f"{info.name}.{name}")
        assert not undocumented, f"missing docstrings: {undocumented}"
