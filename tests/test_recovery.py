"""Tests for checkpoint/rollback recovery (§8 future work)."""

import random

import pytest

from repro.ml.async_sgd import AsyncTrainer
from repro.ml.recovery import RecoveringTrainer
from repro.sim import SimConfig
from repro.workloads.datasets import synthetic_click_dataset


def make_trainer(lr, latency=2000, staleness=None, seed=5, workers=16):
    dataset = synthetic_click_dataset(300, 30, 5, rng=random.Random(5))
    return AsyncTrainer(
        dataset, "asgd",
        SimConfig(num_workers=workers, seed=seed, write_latency=latency,
                  staleness_bound=staleness, compute_jitter=10),
        learning_rate=lr, batch_per_round=150, seed=seed,
    )


class TestValidation:
    def test_blowup_factor_must_exceed_one(self):
        with pytest.raises(ValueError):
            RecoveringTrainer(make_trainer(0.1), blowup_factor=1.0)

    def test_initial_bound_from_trainer(self):
        trainer = make_trainer(0.1, staleness=3)
        recovering = RecoveringTrainer(trainer)
        assert recovering.bound == 3


class TestRecovery:
    def test_healthy_run_never_rolls_back(self):
        trainer = make_trainer(lr=0.1, latency=50, staleness=1)
        recovering = RecoveringTrainer(trainer, blowup_factor=3.0)
        result = recovering.train(rounds=6)
        assert result.rollbacks == 0
        assert result.final_loss <= trainer.start_loss

    def test_divergent_run_triggers_rollback(self):
        trainer = make_trainer(lr=6.0)  # hot enough to blow up async
        recovering = RecoveringTrainer(trainer, blowup_factor=1.3)
        result = recovering.train(rounds=10)
        assert result.rollbacks >= 1
        assert all(e.reason == "loss_blowup" for e in result.events)

    def test_rollback_restores_checkpoint_loss(self):
        trainer = make_trainer(lr=6.0)
        recovering = RecoveringTrainer(trainer, blowup_factor=1.3)
        result = recovering.train(rounds=10)
        for event in result.events:
            assert event.loss_restored <= event.loss_before

    def test_rollback_tightens_staleness(self):
        trainer = make_trainer(lr=6.0)
        recovering = RecoveringTrainer(trainer, blowup_factor=1.3)
        before = recovering.bound
        result = recovering.train(rounds=10)
        assert result.rollbacks >= 1
        # at least one rung tighter than the fully-async start
        assert recovering.bound != before or recovering.bound == 1

    def test_recovery_beats_unprotected_divergence(self):
        """The §8 pitch: with rollback the run ends near its best state
        instead of wherever the blow-up left it."""
        unprotected = make_trainer(lr=6.0)
        raw = unprotected.train(rounds=10)

        protected_trainer = make_trainer(lr=6.0)
        recovering = RecoveringTrainer(protected_trainer, blowup_factor=1.3)
        protected = recovering.train(rounds=10)

        assert protected.final_loss < raw.final_loss
        assert protected.final_loss <= protected.best_loss * 1.3 + 1e-9

    def test_anomaly_spike_trigger(self):
        """The anomaly trigger fires without waiting for the loss."""
        trainer = make_trainer(lr=0.05)  # benign lr: loss never blows up
        recovering = RecoveringTrainer(trainer, blowup_factor=10.0,
                                       anomaly_threshold=1e-6)
        result = recovering.train(rounds=4)
        assert result.rollbacks >= 1
        assert any(e.reason == "anomaly_spike" for e in result.events)

    def test_losses_trajectory_recorded(self):
        trainer = make_trainer(lr=0.1, latency=50, staleness=1)
        recovering = RecoveringTrainer(trainer)
        result = recovering.train(rounds=5)
        assert len(result.losses) == 5
