"""Safety and effectiveness tests for vertex pruning (§5.3).

The key invariant: pruning may shrink the live graph but must never
change the stream of newly detected cycles.  We verify it on random
simulated schedules by running pruned and unpruned detectors on the same
edge stream and comparing total counts.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.collector import BaselineCollector
from repro.core.detector import CycleDetector, LiveGraph
from repro.core.pruning import (
    CombinedPruning,
    DistancePruning,
    EctPruning,
    NoPruning,
    make_pruner,
)
from repro.core.types import Operation, OpType
from repro.storage.history import BuuProgram, interleaved_history, lifecycle_bounds


def _simulated_run(detector, ops, bounds):
    """Feed a history into a detector with begin/commit lifecycle events."""
    collector = BaselineCollector()
    started = set()
    committed = set()
    ops_by_seq = sorted(ops, key=lambda o: o.seq)
    for op in ops_by_seq:
        if op.buu not in started:
            started.add(op.buu)
            detector.begin_buu(op.buu, bounds[op.buu][0])
        for edge in collector.handle(op):
            detector.add_edge(edge)
        if op.seq == bounds[op.buu][1]:
            committed.add(op.buu)
            detector.commit_buu(op.buu, op.seq)
    return detector


def _random_workload(seed, num_buus=40, keys=6, steps=4):
    rng = random.Random(seed)
    programs = []
    for buu in range(num_buus):
        prog = BuuProgram(buu)
        for _ in range(steps):
            key = rng.randrange(keys)
            if rng.random() < 0.5:
                prog.read(key)
            else:
                prog.write(key)
        programs.append(prog)
    return interleaved_history(programs, rng)


def _windowed_workload(seed, num_buus, keys, steps, window):
    """Interleave programs ``window`` at a time — bounded concurrency,
    like a real C-worker system."""
    rng = random.Random(seed)
    ops = []
    offset = 0
    for base in range(0, num_buus, window):
        programs = []
        for buu in range(base, min(base + window, num_buus)):
            prog = BuuProgram(buu)
            for _ in range(steps):
                key = rng.randrange(keys)
                if rng.random() < 0.5:
                    prog.read(key)
                else:
                    prog.write(key)
            programs.append(prog)
        batch = interleaved_history(programs, rng)
        for op in batch:
            ops.append(
                Operation(op.op, op.buu, op.key, op.seq + offset)
            )
        offset = ops[-1].seq
    return ops


PRUNER_NAMES = ["ect", "distance", "both"]


class TestPruningSafety:
    @pytest.mark.parametrize("name", PRUNER_NAMES)
    @pytest.mark.parametrize("seed", range(5))
    def test_counts_unchanged(self, name, seed):
        ops = _random_workload(seed)
        bounds = lifecycle_bounds(ops)
        unpruned = _simulated_run(CycleDetector(pruner=NoPruning()), ops, bounds)
        pruned = _simulated_run(
            CycleDetector(pruner=make_pruner(name), prune_interval=10), ops, bounds
        )
        assert pruned.counts.two_cycles == unpruned.counts.two_cycles
        assert pruned.counts.three_cycles == unpruned.counts.three_cycles

    @given(st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_property_combined_pruning_safe(self, seed):
        ops = _random_workload(seed, num_buus=30, keys=5, steps=3)
        bounds = lifecycle_bounds(ops)
        unpruned = _simulated_run(CycleDetector(pruner=NoPruning()), ops, bounds)
        pruned = _simulated_run(
            CycleDetector(pruner=CombinedPruning(), prune_interval=5), ops, bounds
        )
        assert (pruned.counts.ss, pruned.counts.dd) == (
            unpruned.counts.ss,
            unpruned.counts.dd,
        )
        assert (pruned.counts.sss, pruned.counts.ssd, pruned.counts.ddd) == (
            unpruned.counts.sss,
            unpruned.counts.ssd,
            unpruned.counts.ddd,
        )

    @pytest.mark.parametrize("name", PRUNER_NAMES)
    def test_pruning_shrinks_graph(self, name):
        """With a long run at bounded concurrency, pruning keeps the live
        graph much smaller (400-way concurrency would pin t_active)."""
        ops = _windowed_workload(seed=1, num_buus=400, keys=8, steps=4, window=8)
        bounds = lifecycle_bounds(ops)
        unpruned = _simulated_run(CycleDetector(pruner=NoPruning()), ops, bounds)
        pruned = _simulated_run(
            CycleDetector(pruner=make_pruner(name), prune_interval=20), ops, bounds
        )
        assert pruned.num_vertices < unpruned.num_vertices
        assert pruned.num_edges < unpruned.num_edges


class TestEctPruning:
    def test_old_committed_vertex_removed(self):
        graph = LiveGraph()
        # Vertex 1 committed long ago, only outgoing edges; 9 is alive.
        graph.begin(1, 0)
        graph.commit(1, 5)
        graph.begin(2, 6)
        graph.commit(2, 8)
        graph.begin(9, 10)
        graph.add_edge(1, 2, "x")
        graph.add_edge(2, 9, "x")
        removed = EctPruning().prune(graph, now=11)
        # t_active = 10; ect(1)=5 < 10 pruned; ect(2)=max(8, 5)=8 < 10 pruned.
        assert removed == 2
        assert graph.present == {9}

    def test_alive_ancestor_blocks_pruning(self):
        graph = LiveGraph()
        graph.begin(5, 0)  # alive forever
        graph.begin(1, 1)
        graph.commit(1, 2)
        graph.add_edge(5, 1, "x")  # alive -> committed: ect(1) = inf
        removed = EctPruning().prune(graph, now=10)
        assert removed == 0

    def test_scc_shares_ect(self):
        """A cycle between old vertices has one ect for the whole SCC."""
        graph = LiveGraph()
        graph.begin(1, 0)
        graph.commit(1, 3)
        graph.begin(2, 1)
        graph.commit(2, 4)
        graph.add_edge(1, 2, "x")
        graph.add_edge(2, 1, "y")
        graph.begin(9, 100)
        removed = EctPruning().prune(graph, now=101)
        assert removed == 2

    def test_no_alive_no_pruning(self):
        graph = LiveGraph()
        graph.begin(1, 0)
        graph.commit(1, 1)
        graph.add_edge(1, 2, "x")
        assert EctPruning().prune(graph, now=50) == 0

    def test_unknown_lifecycle_kept(self):
        graph = LiveGraph()
        graph.add_edge(1, 2, "x")  # no begin/commit ever reported
        graph.begin(9, 10)
        assert EctPruning().prune(graph, now=11) == 0
        assert graph.present == {1, 2}


class TestDistancePruning:
    def test_far_vertices_removed(self):
        graph = LiveGraph()
        # chain: alive -> a -> b -> c; with hops=2 only a, b are kept.
        for v, (st_t, ct) in {9: (10, None), 1: (0, 1), 2: (0, 2), 3: (0, 3)}.items():
            graph.begin(v, st_t)
            if ct is not None:
                graph.commit(v, ct)
        graph.add_edge(9, 1, "x")
        graph.add_edge(1, 2, "x")
        graph.add_edge(2, 3, "x")
        removed = DistancePruning(max_cycle_length=3).prune(graph, now=11)
        assert removed == 1
        assert graph.present == {9, 1, 2}

    def test_unreachable_committed_removed(self):
        graph = LiveGraph()
        graph.begin(1, 0)
        graph.commit(1, 1)
        graph.begin(2, 0)
        graph.commit(2, 1)
        graph.add_edge(1, 2, "x")
        graph.begin(9, 5)  # alive, no edges to 1 or 2
        graph.add_edge(9, 9, "x")  # rejected self-edge; 9 not in present
        removed = DistancePruning().prune(graph, now=6)
        assert removed == 2

    def test_hops_respects_max_cycle_length(self):
        graph = LiveGraph()
        graph.begin(9, 10)
        for v in (1, 2, 3):
            graph.begin(v, 0)
            graph.commit(v, v)
        graph.add_edge(9, 1, "x")
        graph.add_edge(1, 2, "x")
        graph.add_edge(2, 3, "x")
        # With 2-cycles only (k=2, hops=1) both 2 and 3 are out of range.
        removed = DistancePruning(max_cycle_length=2).prune(graph, now=11)
        assert removed == 2
        assert graph.present == {9, 1}

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            DistancePruning(max_cycle_length=1)


class TestMakePruner:
    def test_factory(self):
        assert isinstance(make_pruner("none"), NoPruning)
        assert isinstance(make_pruner("ect"), EctPruning)
        assert isinstance(make_pruner("distance"), DistancePruning)
        assert isinstance(make_pruner("both"), CombinedPruning)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_pruner("everything")
