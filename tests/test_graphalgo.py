"""Tests for asynchronous WCC and graph coloring."""

import random

import pytest

from repro.graph.random_graphs import UndirectedGraph, preferential_attachment_graph
from repro.graphalgo.coloring import AsyncColoring
from repro.graphalgo.wcc import AsyncWcc, ground_truth_components
from repro.sim import SimConfig


def two_component_graph():
    graph = UndirectedGraph(7)
    # component {0,1,2,3} and component {4,5,6}
    for u, v in [(0, 1), (1, 2), (2, 3), (0, 3), (4, 5), (5, 6)]:
        graph.add_edge(u, v)
    return graph


class TestGroundTruth:
    def test_components(self):
        truth = ground_truth_components(two_component_graph())
        assert truth == [0, 0, 0, 0, 4, 4, 4]

    def test_isolated_vertices(self):
        graph = UndirectedGraph(3)
        assert ground_truth_components(graph) == [0, 1, 2]

    def test_matches_dfs_on_random_graph(self):
        rng = random.Random(5)
        graph = UndirectedGraph(60)
        for _ in range(70):
            graph.add_edge(rng.randrange(60), rng.randrange(60))
        truth = ground_truth_components(graph)
        # brute force: repeated BFS
        seen = {}
        for start in range(60):
            if start in seen:
                continue
            stack, comp = [start], []
            while stack:
                v = stack.pop()
                if v in seen:
                    continue
                seen[v] = True
                comp.append(v)
                stack.extend(graph.neighbors(v))
            smallest = min(comp)
            for v in comp:
                assert truth[v] == smallest


class TestAsyncWcc:
    def test_serial_converges_to_truth(self):
        wcc = AsyncWcc(two_component_graph(), SimConfig(num_workers=1, seed=0))
        result = wcc.run(max_rounds=10)
        assert result.converged
        assert wcc.is_correct()

    def test_concurrent_still_converges(self):
        graph = preferential_attachment_graph(150, 4, rng=random.Random(2))
        wcc = AsyncWcc(graph, SimConfig(num_workers=8, seed=1,
                                        write_latency=100, compute_jitter=20))
        result = wcc.run(max_rounds=30)
        assert result.converged  # min-propagation is self-stabilising

    def test_chaos_costs_more_buus(self):
        graph = preferential_attachment_graph(150, 4, rng=random.Random(3))

        def buus(latency):
            wcc = AsyncWcc(graph, SimConfig(num_workers=8, seed=2,
                                            write_latency=latency,
                                            compute_jitter=10))
            return wcc.run(max_rounds=40).buus_to_converge

        calm = buus(0)
        wild = buus(2000)
        assert calm is not None and wild is not None
        assert wild >= calm

    def test_anomalies_recorded(self):
        graph = preferential_attachment_graph(100, 4, rng=random.Random(4))
        wcc = AsyncWcc(graph, SimConfig(num_workers=8, seed=0,
                                        write_latency=150))
        result = wcc.run(max_rounds=20)
        assert result.estimated_2 + result.estimated_3 > 0


class TestAsyncColoring:
    def test_serial_produces_proper_coloring(self):
        coloring = AsyncColoring(two_component_graph(),
                                 SimConfig(num_workers=1, seed=0))
        result = coloring.run(max_rounds=10)
        assert result.converged
        assert coloring.is_correct()

    def test_colors_at_most_degree_plus_one(self):
        graph = preferential_attachment_graph(100, 4, rng=random.Random(5))
        coloring = AsyncColoring(graph, SimConfig(num_workers=1, seed=0))
        result = coloring.run(max_rounds=20)
        assert result.converged
        max_degree = max(graph.degree(v) for v in range(graph.num_vertices))
        assert result.colors_used <= max_degree + 1

    def test_concurrent_convergence(self):
        graph = preferential_attachment_graph(100, 4, rng=random.Random(6))
        coloring = AsyncColoring(graph, SimConfig(num_workers=8, seed=1,
                                                  write_latency=50))
        result = coloring.run(max_rounds=40)
        assert result.converged
        assert coloring.is_correct()

    def test_proper_coloring_check(self):
        graph = two_component_graph()
        coloring = AsyncColoring(graph, SimConfig(num_workers=1, seed=0))
        # force an improper colouring: all same colour
        for v in range(graph.num_vertices):
            coloring.simulator.store[f"col{v}"] = 0
        assert not coloring.is_correct()
