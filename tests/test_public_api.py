"""The blessed ``repro`` package surface.

``repro/__init__.py`` re-exports the public names in ``__all__``; this
file pins two properties of that surface:

- every advertised name actually resolves (no stale re-export after a
  module moves), and
- the protocol verbs — every public method of ``MonitorListener`` and
  ``AnomalyMonitor`` — appear in DESIGN.md's API documentation, so the
  design doc cannot silently drift from the code.
"""

from pathlib import Path

import pytest

import repro
from repro.core.api import AnomalyMonitor, MonitorListener

DESIGN = Path(__file__).resolve().parent.parent / "DESIGN.md"


def _protocol_members(proto) -> list[str]:
    members = [name for name, value in vars(proto).items()
               if not name.startswith("_") and callable(value)]
    members += [name for name in getattr(proto, "__annotations__", {})
                if not name.startswith("_")]
    return members


def test_every_all_member_resolves():
    assert repro.__all__, "repro must advertise a public surface"
    for name in repro.__all__:
        assert hasattr(repro, name), (
            f"repro.__all__ advertises {name!r} but the attribute is "
            f"missing — stale re-export?")


def test_all_has_no_duplicates_and_is_sorted():
    assert len(set(repro.__all__)) == len(repro.__all__)
    assert repro.__all__ == sorted(repro.__all__), (
        "keep __all__ sorted so diffs stay reviewable")


def test_star_import_matches_all():
    namespace: dict = {}
    exec("from repro import *", namespace)
    exported = {name for name in namespace if not name.startswith("__")}
    assert exported == {n for n in repro.__all__ if not n.startswith("__")}


@pytest.mark.parametrize("flavour", [
    "RushMon", "RushMonService", "ClusterMonitor", "OfflineAnomalyMonitor",
])
def test_exported_monitor_flavours_declare_conformance(flavour):
    cls = getattr(repro, flavour)
    for member in _protocol_members(MonitorListener):
        assert hasattr(cls, member), (flavour, member)
    for member in _protocol_members(AnomalyMonitor):
        # `reports` is an instance attribute on concrete monitors.
        if member == "reports":
            continue
        assert hasattr(cls, member), (flavour, member)


def test_protocol_verbs_documented_in_design():
    text = DESIGN.read_text()
    members = set(_protocol_members(MonitorListener))
    members |= set(_protocol_members(AnomalyMonitor))
    for member in sorted(members):
        assert f"`{member}" in text, (
            f"protocol member {member!r} is missing from DESIGN.md's "
            f"unified-API documentation")
