"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quickstart_defaults(self):
        args = build_parser().parse_args(["quickstart"])
        assert args.sampling_rate == 1
        assert args.pruning == "both"
        assert args.windows == 5

    def test_sweep_knob_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--knob", "magic"])

    def test_quickstart_service_flags(self):
        args = build_parser().parse_args(
            ["quickstart", "--threads", "4", "--shards", "2",
             "--detect-interval", "0.01"]
        )
        assert args.threads == 4
        assert args.shards == 2
        assert args.detect_interval == 0.01

    def test_quickstart_serial_by_default(self):
        assert build_parser().parse_args(["quickstart"]).threads == 0

    def test_bench_threads_defaults(self):
        args = build_parser().parse_args(["bench-threads"])
        assert args.threads == "1,2,4,8"
        assert args.shards == 16


class TestCommands:
    def test_quickstart_runs(self, capsys):
        assert main(["quickstart", "--windows", "2", "--buus", "100",
                     "--workers", "4"]) == 0
        out = capsys.readouterr().out
        assert "est 2-cycles" in out
        assert "total:" in out

    def test_sweep_runs(self, capsys):
        assert main(["sweep", "--knob", "staleness", "--values", "1,0",
                     "--buus", "150", "--workers", "4"]) == 0
        out = capsys.readouterr().out
        assert "per-kstep" in out
        assert len(out.strip().splitlines()) == 3  # header + 2 values

    def test_sweep_latency(self, capsys):
        assert main(["sweep", "--knob", "latency", "--values", "0,200",
                     "--buus", "150", "--workers", "4"]) == 0

    def test_bookstore_runs(self, capsys):
        assert main(["bookstore", "--purchases", "200", "--workers", "8",
                     "--books", "20"]) == 0
        out = capsys.readouterr().out
        assert "violation rate" in out

    def test_record_and_analyze(self, tmp_path, capsys):
        trace_path = str(tmp_path / "run.jsonl")
        assert main(["record", "--out", trace_path, "--buus", "150",
                     "--workers", "4"]) == 0
        assert main(["analyze", trace_path]) == 0
        out = capsys.readouterr().out
        assert "exact:" in out
        assert "estimated:" in out

    def test_analyze_unsampled_matches_exact(self, tmp_path, capsys):
        trace_path = str(tmp_path / "run.jsonl")
        main(["record", "--out", trace_path, "--buus", "200",
              "--workers", "8", "--latency", "200"])
        capsys.readouterr()
        main(["analyze", trace_path, "--no-mob"])
        out = capsys.readouterr().out
        exact_line = next(l for l in out.splitlines() if l.startswith("exact"))
        est_line = next(l for l in out.splitlines() if l.startswith("estimated"))
        exact_two = int(exact_line.split()[1])
        est_two = float(est_line.split()[1])
        assert est_two == exact_two

    def test_serializable_quickstart_quiet(self, capsys):
        assert main(["quickstart", "--windows", "1", "--buus", "150",
                     "--workers", "8", "--isolation", "serializable",
                     "--latency", "0"]) == 0
        out = capsys.readouterr().out
        assert "total: 0 two-cycles, 0 three-cycles" in out


class TestServiceCommands:
    def test_quickstart_threaded_runs(self, capsys):
        assert main(["quickstart", "--threads", "2", "--shards", "4",
                     "--windows", "2", "--buus", "80", "--keys", "10"]) == 0
        out = capsys.readouterr().out
        assert "threads: 2   shards: 4" in out
        assert "est 2-cycles" in out
        assert "total:" in out

    def test_quickstart_threaded_single_thread(self, capsys):
        assert main(["quickstart", "--threads", "1", "--windows", "1",
                     "--buus", "50", "--keys", "8"]) == 0
        assert "threads: 1" in capsys.readouterr().out

    def test_bench_threads_runs_and_records(self, tmp_path, monkeypatch,
                                            capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["bench-threads", "--threads", "1,2", "--buus", "120",
                     "--keys", "32"]) == 0
        out = capsys.readouterr().out
        assert "ops/sec" in out
        assert "serial" in out
        recorded = (tmp_path / "thread_scaling.txt").read_text()
        assert "sharded" in recorded


class TestCheckCommand:
    def test_check_serializable_trace(self, tmp_path, capsys):
        trace_path = str(tmp_path / "clean.jsonl")
        main(["record", "--out", trace_path, "--buus", "100",
              "--workers", "4", "--isolation", "serializable",
              "--latency", "0"])
        capsys.readouterr()
        assert main(["check", trace_path]) == 0
        out = capsys.readouterr().out
        assert "serializable: yes" in out
        assert "witness serial order" in out

    def test_check_chaotic_trace(self, tmp_path, capsys):
        trace_path = str(tmp_path / "chaos.jsonl")
        main(["record", "--out", trace_path, "--buus", "300",
              "--workers", "16", "--latency", "300"])
        capsys.readouterr()
        assert main(["check", trace_path]) == 1
        out = capsys.readouterr().out
        assert "serializable: NO" in out
        assert "violating cycle" in out

    def test_check_classifies_and_counts_exactly(self, tmp_path, capsys):
        """The check verb reports the exact cycle counts the monitor
        estimates, plus G-class lines with labelled witnesses."""
        trace_path = str(tmp_path / "chaos.jsonl")
        main(["record", "--out", trace_path, "--buus", "200",
              "--workers", "8", "--latency", "200"])
        capsys.readouterr()
        assert main(["check", trace_path]) == 1
        out = capsys.readouterr().out
        assert "exact cycles:" in out
        assert "anomaly classes" in out
        assert "anomaly-free: NO" in out
        # Witnesses carry edge kinds and item labels.
        assert "-rw[" in out or "-ww[" in out or "-wr[" in out

    def test_check_json_output(self, tmp_path, capsys):
        import json

        trace_path = str(tmp_path / "chaos.jsonl")
        main(["record", "--out", trace_path, "--buus", "200",
              "--workers", "8", "--latency", "200"])
        capsys.readouterr()
        rc = main(["check", trace_path, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == (0 if payload["anomaly_free"] else 1)
        assert payload["operations"] == 1200
        assert set(payload["cycles"]) == {"two", "three", "ss", "dd",
                                          "sss", "ssd", "ddd"}
        assert sum(payload["counts"].values()) > 0
        for witnesses in payload["witnesses"].values():
            assert witnesses  # every reported class has a witness

    def test_check_json_matches_analyze_exact(self, tmp_path, capsys):
        """`check --json` cycle totals equal `analyze`'s offline exact
        line — the two exact paths agree on the same trace."""
        import json

        trace_path = str(tmp_path / "run.jsonl")
        main(["record", "--out", trace_path, "--buus", "200",
              "--workers", "8", "--latency", "200"])
        capsys.readouterr()
        main(["check", trace_path, "--json"])
        payload = json.loads(capsys.readouterr().out)
        main(["analyze", trace_path, "--no-mob"])
        out = capsys.readouterr().out
        exact_line = next(l for l in out.splitlines()
                          if l.startswith("exact"))
        assert payload["cycles"]["two"] == int(exact_line.split()[1])


class TestMonitorOracle:
    def test_monitor_oracle_sr1_matches(self, capsys):
        """--oracle at sr=1 --no-mob replays the recorded trace through
        the exact checker and must match bit-exactly (exit 0)."""
        assert main(["monitor", "--oracle", "--sampling-rate", "1",
                     "--no-mob", "--buus", "200", "--keys", "16",
                     "--threads", "2"]) == 0
        out = capsys.readouterr().out
        assert "oracle: exact" in out
        assert "match the exact checker bit-exactly" in out

    def test_monitor_oracle_sampled_reports_error(self, capsys):
        """At sr>1 the oracle reports relative error instead of failing."""
        assert main(["monitor", "--oracle", "--sampling-rate", "4",
                     "--buus", "200", "--keys", "16",
                     "--threads", "2"]) == 0
        out = capsys.readouterr().out
        assert "rel. error" in out


class TestMonitorGracefulShutdown:
    def test_sigterm_drains_and_writes_stop_time_checkpoint(self, tmp_path):
        """SIGTERM mid-run takes the Ctrl-C path: drain the final
        window, write the --checkpoint, report, exit 0."""
        import os
        import signal
        import subprocess
        import sys
        import time

        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        ckpt = str(tmp_path / "monitor.ckpt")
        # --live prints a header right after the service starts — the
        # cue that SIGTERM will land mid-run, not during setup.
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "monitor",
             "--buus", "100000", "--no-mob", "--sampling-rate", "1",
             "--checkpoint", ckpt, "--live", "--interval", "0.1"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            assert proc.stdout.readline() != ""  # the --live header
            time.sleep(0.3)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0
        assert "interrupted — stopping service" in out
        assert f"stop-time checkpoint written to {ckpt}" in out
        assert "final metrics snapshot" in out

        from repro.core.concurrent import RushMonService

        # The stop-time checkpoint restores into a working service (the
        # monitor runs without trace recording, so the differential
        # replay lives in the net/chaos suites, not here).
        restored = RushMonService.restore(ckpt)
        assert restored.processed_events > 0
        assert restored.counts() is not None
