"""Lifecycle edge cases: stop semantics, construction validation, and
operational error messages (exporter port conflicts).

These pin the "fails loudly with an actionable message" half of the
fault-tolerance contract — misuse and misconfiguration raise clear
errors instead of deadlocking, silently dropping events, or surfacing a
bare OSError.
"""

import pytest

from repro.core.concurrent import RushMonService
from repro.core.config import RushMonConfig
from repro.core.types import Operation, OpType
from repro.obs import MetricsExporter, MetricsRegistry
from repro.testing import Fault


def _service(**kwargs):
    kwargs.setdefault("num_shards", 2)
    return RushMonService(RushMonConfig(sampling_rate=1, mob=False, **kwargs))


# -- stop() terminality ------------------------------------------------------

def test_double_stop_is_idempotent():
    svc = _service()
    svc.start()
    svc.on_operation(Operation(OpType.WRITE, 1, "x", 1))
    first = svc.stop()
    assert svc.stopped
    assert svc.stop() is first  # no error, same latest report


def test_close_window_after_stop_raises_clear_error():
    svc = _service()
    svc.start()
    svc.stop()
    with pytest.raises(RuntimeError, match="stop\\(\\) already drained"):
        svc.close_window()
    with pytest.raises(RuntimeError, match="no longer accepts"):
        svc.on_operation(Operation(OpType.WRITE, 1, "x", 1))
    with pytest.raises(RuntimeError, match="no longer accepts"):
        svc.begin_buu(1, 0)


def test_start_after_stop_refused():
    svc = _service()
    svc.start()
    svc.stop()
    with pytest.raises(RuntimeError, match="cannot be restarted"):
        svc.start()


def test_unstarted_service_supports_inline_close_window():
    """The serial-style usage (never start(), drive close_window()
    inline) must keep working — the API-conformance contract."""
    svc = _service()
    svc.on_operation(Operation(OpType.WRITE, 1, "x", 1))
    svc.on_operation(Operation(OpType.WRITE, 2, "x", 2))
    report = svc.close_window()
    assert report is not None and report.operations == 2
    assert report.health == "ok"


def test_stop_without_start_runs_final_drain():
    svc = _service()
    svc.on_operation(Operation(OpType.WRITE, 1, "x", 1))
    report = svc.stop()
    assert report is not None and report.operations == 1


# -- exporter port conflicts --------------------------------------------------

def test_exporter_port_already_bound_is_actionable():
    registry = MetricsRegistry()
    first = MetricsExporter(registry).start()
    try:
        second = MetricsExporter(registry, port=first.port)
        with pytest.raises(RuntimeError) as excinfo:
            second.start()
        message = str(excinfo.value)
        assert f"127.0.0.1:{first.port}" in message
        assert "port=0" in message  # tells the user the fix
        assert not second.running
    finally:
        first.stop()


# -- RushMonConfig validation -------------------------------------------------

@pytest.mark.parametrize("kwargs, match", [
    ({"sampling_rate": 0}, "sampling_rate must be >= 1"),
    ({"sampling_rate": -3}, "sampling_rate must be >= 1"),
    ({"sampling_rate": 2.5}, "sampling_rate must be an int"),
    ({"sampling_rate": True}, "sampling_rate must be an int"),
    ({"prune_interval": 0}, "prune_interval must be > 0"),
    ({"prune_interval": "soon"}, "prune_interval must be an int"),
    ({"resample_interval": 0}, "resample_interval must be >= 1"),
    ({"resample_interval": -1}, "resample_interval must be >= 1"),
    ({"pruning": "aggressive"}, "pruning must be one of"),
    ({"seed": "entropy"}, "seed must be an int"),
])
def test_config_validation_rejects_bad_values(kwargs, match):
    with pytest.raises(ValueError, match=match):
        RushMonConfig(**kwargs)


def test_config_accepts_valid_edges():
    RushMonConfig(sampling_rate=1, prune_interval=1, resample_interval=1)
    RushMonConfig(resample_interval=None, pruning="none")


# -- service construction validation ------------------------------------------

@pytest.mark.parametrize("kwargs, match", [
    ({"detect_interval": 0}, "detect_interval"),
    ({"journal_capacity": 0}, "journal_capacity"),
    ({"overflow": "panic"}, "overflow"),
    ({"block_timeout": 0}, "block_timeout"),
    ({"max_restarts": -1}, "max_restarts"),
    ({"restart_backoff": 0}, "restart_backoff"),
    ({"checkpoint_interval": 0, "checkpoint_path": "x"},
     "checkpoint_interval"),
    ({"checkpoint_interval": 5}, "checkpoint_path"),
])
def test_service_validation_rejects_bad_values(kwargs, match):
    with pytest.raises(ValueError, match=match):
        _service(**kwargs)


# -- fault descriptor validation ----------------------------------------------

@pytest.mark.parametrize("kwargs, match", [
    ({"point": "collector.nowhere"}, "unknown injection point"),
    ({"point": "detect.pass", "kind": "meltdown"}, "unknown fault kind"),
    ({"point": "detect.pass", "kind": "partial_drain"},
     "only applies to journal.drain"),
    ({"point": "detect.pass", "after": -1}, "after must be"),
    ({"point": "detect.pass", "every": 0}, "every >= 1"),
    ({"point": "detect.pass", "times": 0}, "times must be"),
    ({"point": "journal.drain", "kind": "partial_drain", "fraction": 1.5},
     "fraction"),
])
def test_fault_validation(kwargs, match):
    with pytest.raises(ValueError, match=match):
        Fault(**kwargs)
