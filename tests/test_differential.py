"""Differential tests: every unsampled real-time path must match the
Section 4 offline baseline bit-exactly.

Elle and IsoPredict validate their checkers against histories with known
ground truth; here the ground truth is
:class:`~repro.core.monitor.OfflineAnomalyMonitor` (full Algorithm 1
collection + exact labelled cycle counting), and the paths under test
are the serial monitor, the sharded collector, and the concurrent
service — all at ``sr=1, mob=False``, across ~50 seeded random traces
varying BUU count, key skew and op mix.
"""

import pytest

from repro.core.collector import DataCentricCollector
from repro.core.concurrent import RushMonService, ShardedCollector
from repro.core.config import RushMonConfig
from repro.core.detector import CycleDetector
from repro.core.monitor import OfflineAnomalyMonitor, RushMon

from tests.histgen import feed_with_lifecycle, random_history

SEEDS = range(50)


def exact_counts(history):
    offline = OfflineAnomalyMonitor()
    offline.on_operations(history)
    return offline.exact_counts()


@pytest.mark.parametrize("seed", SEEDS)
def test_rushmon_sr1_matches_offline(seed):
    """Serial RushMon at sr=1 (with default pruning) is exact."""
    history = random_history(seed)
    exact = exact_counts(history)
    monitor = RushMon(RushMonConfig(sampling_rate=1, mob=False))
    feed_with_lifecycle([monitor], history)
    assert monitor.detector.counts == exact
    e2, e3 = monitor.cumulative_estimates()
    assert e2 == exact.two_cycles
    assert e3 == exact.three_cycles


@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_collector_sr1_matches_offline(seed):
    """ShardedCollector + detector reproduce the exact counts."""
    history = random_history(seed)
    exact = exact_counts(history)
    collector = ShardedCollector(sampling_rate=1, mob=False, num_shards=4)
    detector = CycleDetector()
    for op in history:
        for edge in collector.handle(op):
            detector.add_edge(edge)
    assert detector.counts == exact


@pytest.mark.parametrize("seed", range(0, 50, 5))
def test_service_sr1_matches_offline(seed):
    """RushMonService (flush-driven, no background thread) is exact, and
    its recorded serialized trace replays to the same ground truth."""
    history = random_history(seed)
    exact = exact_counts(history)
    service = RushMonService(
        RushMonConfig(sampling_rate=1, mob=False, num_shards=4),
        record_trace=True,
    )
    feed_with_lifecycle([service], history)
    service.close_window()
    assert service.counts() == exact

    replayed = OfflineAnomalyMonitor()
    service.serialized_trace().replay([replayed])
    assert replayed.exact_counts() == exact


@pytest.mark.parametrize("seed", range(0, 50, 5))
def test_sharded_equals_serial_collector(seed):
    """Same ops, same sampler, mob off: the sharded collector derives the
    identical edge sequence and aggregate stats as the serial one —
    the 'one bookkeeping implementation' invariant."""
    history = random_history(seed)
    serial = DataCentricCollector(sampling_rate=1, mob=False)
    sharded = ShardedCollector(sampling_rate=1, mob=False, num_shards=4)
    serial_edges = serial.handle_all(history)
    sharded_edges = sharded.handle_all(history)
    assert serial_edges == sharded_edges
    assert sharded.stats == serial.stats
    assert sharded.touches == serial.touches
    assert sharded.ops_seen == serial.ops_seen
    merged = sharded.merged()
    assert merged.num_items == serial.shard.num_items
    assert merged.total_reads == serial.total_reads


@pytest.mark.parametrize("sr", [2, 4])
def test_sharded_equals_serial_collector_sampled(sr):
    """The equivalence holds under item sampling too (shared sampler,
    same chosen set)."""
    history = random_history(11, num_buus=120, num_keys=32)
    serial = DataCentricCollector(sampling_rate=sr, mob=False, seed=3)
    sharded = ShardedCollector(sampling_rate=sr, mob=False, seed=3,
                               num_shards=8)
    assert serial.handle_all(history) == sharded.handle_all(history)
    assert sharded.touches == serial.touches
