"""Direct tests for the offline DependencyGraph structure."""

import pytest

from repro.core.types import Edge, EdgeType
from repro.graph.dependency import DependencyGraph, edge_list, graph_from_edges


class TestDependencyGraph:
    def test_add_and_query(self):
        graph = DependencyGraph()
        assert graph.add(1, 2, "x")
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(2, 1)
        assert graph.labels(1, 2) == {"x"}
        assert graph.successors(1) == {2}
        assert graph.predecessors(2) == {1}

    def test_rejects_self_loops(self):
        graph = DependencyGraph()
        assert not graph.add(1, 1, "x")
        assert graph.num_edges() == 0

    def test_rejects_duplicate_labels(self):
        graph = DependencyGraph()
        assert graph.add(1, 2, "x")
        assert not graph.add(1, 2, "x")
        assert graph.add(1, 2, "y")
        assert graph.num_edges() == 2

    def test_edges_iteration(self):
        graph = DependencyGraph()
        graph.add(1, 2, "x")
        graph.add(2, 3, "y")
        assert sorted(graph.edges()) == [(1, 2, "x"), (2, 3, "y")]

    def test_add_vertex_without_edges(self):
        graph = DependencyGraph()
        graph.add_vertex(9)
        assert 9 in graph.vertices
        assert graph.num_vertices() == 1
        assert graph.num_edges() == 0

    def test_remove_vertex(self):
        graph = DependencyGraph()
        graph.add(1, 2, "x")
        graph.add(2, 3, "y")
        graph.add(3, 1, "z")
        graph.remove_vertex(2)
        assert graph.num_edges() == 1
        assert not graph.has_edge(1, 2)
        assert not graph.has_edge(2, 3)
        assert graph.has_edge(3, 1)
        assert 2 not in graph.vertices

    def test_remove_vertex_counts_parallel_labels(self):
        graph = DependencyGraph()
        graph.add(1, 2, "x")
        graph.add(1, 2, "y")
        graph.remove_vertex(2)
        assert graph.num_edges() == 0

    def test_copy_is_deep(self):
        graph = DependencyGraph()
        graph.add(1, 2, "x")
        graph.add_vertex(7)
        clone = graph.copy()
        graph.add(2, 3, "y")
        assert clone.num_edges() == 1
        assert 7 in clone.vertices
        assert not clone.has_edge(2, 3)

    def test_add_edge_object(self):
        graph = DependencyGraph()
        assert graph.add_edge(Edge(1, 2, EdgeType.RW, "x", 5))
        assert graph.labels(1, 2) == {"x"}


class TestHelpers:
    def test_edge_list(self):
        edges = edge_list([(1, 2, "x"), (2, 3, "y")], kind=EdgeType.WW)
        assert all(e.kind is EdgeType.WW for e in edges)
        assert [(e.src, e.dst, e.label) for e in edges] == [
            (1, 2, "x"), (2, 3, "y")
        ]

    def test_graph_from_edges(self):
        graph = graph_from_edges(edge_list([(1, 2, "x"), (2, 1, "x")]))
        assert graph.has_edge(1, 2)
        assert graph.has_edge(2, 1)
        assert graph.num_edges() == 2
