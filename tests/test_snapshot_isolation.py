"""Tests for the snapshot-isolation execution mode.

Snapshot isolation is the related-work anchor (Fekete et al.): it gives
every BUU a consistent point-in-time view, eliminating torn reads and
read skew, while its hallmark failure — write skew — survives.  The
bookstore experiment demonstrates exactly that.
"""

import random

import pytest

from repro.core.config import RushMonConfig
from repro.core.monitor import RushMon
from repro.sim import Buu, SimConfig, Simulator
from repro.sim.scheduler import SimConfig as _SimConfig
from repro.workloads.bookstore import Bookstore, BookstoreConfig


def transfer_buu(amount):
    """Move ``amount`` from x to y, preserving x + y.

    Written as additive deltas so concurrent transfers commute — the
    committed state always sums to 100 and any deviation a reader sees
    is purely a visibility (torn-read) artefact.
    """

    def compute(values):
        return {"x": -amount, "y": amount}

    return Buu(reads=[], compute=compute, additive=True)


def balance_reader(results):
    """Read x and y; record their sum."""

    def compute(values):
        results.append((values.get("x") or 0) + (values.get("y") or 0))
        return {}

    return Buu(reads=["x", "y"], compute=compute)


class TestConsistentSnapshots:
    def _run(self, isolation, seed=0):
        results = []
        sim = Simulator(
            SimConfig(num_workers=8, seed=seed, isolation=isolation,
                      compute_jitter=15),
            store={"x": 100, "y": 0},
        )
        buus = []
        rng = random.Random(seed)
        for i in range(120):
            if i % 3 == 0:
                buus.append(balance_reader(results))
            else:
                buus.append(transfer_buu(rng.randint(1, 5)))
        sim.run(buus)
        return results

    def test_snapshot_readers_always_see_invariant(self):
        """Under SI, every reader sees some committed prefix: x + y is
        always exactly 100."""
        for seed in range(5):
            results = self._run("snapshot", seed)
            assert results
            assert all(total == 100 for total in results)

    def test_no_isolation_shows_torn_reads(self):
        """Without isolation, some reader catches a transfer mid-flight."""
        torn = 0
        for seed in range(5):
            results = self._run("none", seed)
            torn += sum(1 for total in results if total != 100)
        assert torn > 0

    def test_snapshot_before_any_write_sees_seed_values(self):
        sim = Simulator(SimConfig(num_workers=1, seed=0,
                                  isolation="snapshot"),
                        store={"x": 7})
        seen = []
        sim.run([Buu(reads=["x"],
                     compute=lambda v: seen.append(v["x"]) or {})])
        assert seen == [7]

    def test_versions_installed_atomically(self):
        """A snapshot taken between a BUU's two write-applies must see
        neither write (commit-time stamping)."""
        sim = Simulator(SimConfig(num_workers=2, seed=3,
                                  isolation="snapshot", write_latency=40,
                                  compute_jitter=5),
                        store={"x": 100, "y": 0})
        results = []
        buus = [transfer_buu(10), balance_reader(results),
                transfer_buu(5), balance_reader(results)]
        sim.run(buus)
        assert all(total == 100 for total in results)


class TestWriteSkewSurvivesSi:
    def _violations(self, isolation):
        shop = Bookstore(
            BookstoreConfig(num_books=10, customers=16, books_per_order=3,
                            initial_stock=3, think_time=40, seed=5),
            _SimConfig(num_workers=16, seed=5, write_latency=200,
                       compute_jitter=40, isolation=isolation),
        )
        return shop.run(1200).violations

    def test_si_does_not_fix_the_bookstore(self):
        """SI's hallmark: constraint violations from write skew persist
        (each customer's snapshot passes the stock check; the concurrent
        decrements still overshoot)."""
        assert self._violations("snapshot") > 0

    def test_serializable_does(self):
        assert self._violations("serializable") == 0

    def test_si_monitor_still_sees_anomalies(self):
        """The monitor keeps reporting cycles under SI — the dependency
        graph of an SI execution is exactly where write skew shows up."""
        monitor = RushMon(RushMonConfig(sampling_rate=1, mob=False))
        shop = Bookstore(
            BookstoreConfig(num_books=10, customers=16, books_per_order=3,
                            initial_stock=3, think_time=40, seed=6),
            _SimConfig(num_workers=16, seed=6, write_latency=200,
                       compute_jitter=40, isolation="snapshot"),
        )
        shop.simulator.subscribe(monitor)
        shop.run(800)
        e2, e3 = monitor.cumulative_estimates()
        assert e2 + e3 > 0
