"""Tests for coordinate descent, the convergence predictor, and rate
smoothers."""

import numpy as np
import pytest

from repro.core.prediction import ConvergencePredictor, rank_correlation
from repro.core.types import AnomalyReport
from repro.core.windows import EwmaRate, SlidingWindowRate, report_rate
from repro.ml.coordinate import (
    AsyncCoordinateDescent,
    RidgeProblem,
    random_ridge_problem,
)
from repro.sim import SimConfig


class TestRidgeProblem:
    def test_exact_solution_minimises(self):
        problem = random_ridge_problem(seed=1)
        optimal = problem.optimal_loss()
        rng = np.random.default_rng(0)
        for _ in range(10):
            perturbed = problem.solution + 0.1 * rng.normal(
                size=problem.dimension
            )
            assert problem.loss(perturbed) >= optimal

    def test_zero_weights_loss_positive(self):
        problem = random_ridge_problem(seed=2)
        assert problem.loss(np.zeros(problem.dimension)) > problem.optimal_loss()


class TestAsyncCoordinateDescent:
    def test_serial_converges(self):
        problem = random_ridge_problem(seed=3)
        cd = AsyncCoordinateDescent(problem, SimConfig(num_workers=1, seed=0))
        trajectory = cd.run(rounds=40, tolerance=1e-4)
        assert trajectory[-1][1] <= problem.optimal_loss() + 1e-4

    def test_serial_loss_monotone(self):
        """Exact coordinate minimisation never increases the loss when
        executed in isolation."""
        problem = random_ridge_problem(seed=4)
        cd = AsyncCoordinateDescent(problem, SimConfig(num_workers=1, seed=0))
        trajectory = cd.run(rounds=15, tolerance=0.0)
        losses = [loss for _, loss in trajectory]
        for earlier, later in zip(losses, losses[1:]):
            assert later <= earlier + 1e-9

    def test_concurrent_chaos_slows_or_breaks_monotonicity(self):
        problem = random_ridge_problem(seed=5)
        serial = AsyncCoordinateDescent(problem,
                                        SimConfig(num_workers=1, seed=0))
        serial_traj = serial.run(rounds=25, tolerance=1e-5)

        chaotic = AsyncCoordinateDescent(
            problem,
            SimConfig(num_workers=8, seed=1, write_latency=300,
                      compute_jitter=10),
        )
        chaotic_traj = chaotic.run(rounds=25, tolerance=1e-5)
        # chaos needs at least as many updates, usually more
        assert len(chaotic_traj) >= len(serial_traj)

    def test_monitor_attached(self):
        problem = random_ridge_problem(seed=6)
        cd = AsyncCoordinateDescent(
            problem,
            SimConfig(num_workers=8, seed=2, write_latency=100),
        )
        cd.run(rounds=5, tolerance=0.0)
        e2, e3 = cd.monitor.cumulative_estimates()
        assert e2 + e3 >= 0  # dense reads, every BUU conflicts: usually > 0


class TestConvergencePredictor:
    def test_recovers_power_law(self):
        rng = np.random.default_rng(7)
        rates2 = rng.uniform(0.1, 10.0, size=80)
        rates3 = rng.uniform(0.1, 10.0, size=80)
        outcomes = 100 * rates2**1.5 * rates3**0.5 * np.exp(
            rng.normal(0, 0.05, size=80)
        )
        predictor = ConvergencePredictor().fit(rates2, rates3, outcomes)
        assert predictor.r_squared(rates2, rates3, outcomes) > 0.95
        prediction = predictor.predict([2.0], [2.0])[0]
        expected = 100 * 2**1.5 * 2**0.5
        assert prediction == pytest.approx(expected, rel=0.2)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            ConvergencePredictor().predict([1.0], [1.0])

    def test_nonpositive_outcomes_rejected(self):
        with pytest.raises(ValueError):
            ConvergencePredictor().fit([1.0], [1.0], [0.0])


class TestRankCorrelation:
    def test_perfect_monotone(self):
        assert rank_correlation([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)
        assert rank_correlation([1, 2, 3, 4], [9, 7, 5, 3]) == pytest.approx(-1.0)

    def test_ties_averaged(self):
        rho = rank_correlation([1, 1, 2, 2], [1, 1, 2, 2])
        assert rho == pytest.approx(1.0)

    def test_constant_series_zero(self):
        assert rank_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            rank_correlation([1, 2], [1])


def _report(anomalies, start=0, end=100):
    return AnomalyReport(window_start=start, window_end=end,
                         estimated_2=anomalies, estimated_3=0.0)


class TestRateSmoothers:
    def test_report_rate(self):
        assert report_rate(_report(50.0)) == pytest.approx(0.5)

    def test_sliding_window_mean(self):
        smoother = SlidingWindowRate(size=3)
        for rate in (1.0, 2.0, 3.0):
            smoother.observe_rate(rate)
        assert smoother.value == pytest.approx(2.0)
        smoother.observe_rate(5.0)  # evicts 1.0
        assert smoother.value == pytest.approx(10 / 3)

    def test_sliding_window_empty(self):
        assert SlidingWindowRate().value == 0.0

    def test_sliding_window_bad_size(self):
        with pytest.raises(ValueError):
            SlidingWindowRate(size=0)

    def test_ewma_first_sample_initialises(self):
        ewma = EwmaRate(alpha=0.5)
        assert ewma.observe_rate(4.0) == 4.0

    def test_ewma_converges_to_constant_input(self):
        ewma = EwmaRate(alpha=0.5)
        for _ in range(30):
            ewma.observe_rate(7.0)
        assert ewma.value == pytest.approx(7.0)

    def test_ewma_reacts_faster_than_wide_window(self):
        ewma = EwmaRate(alpha=0.5)
        window = SlidingWindowRate(size=10)
        for _ in range(10):
            ewma.observe_rate(0.0)
            window.observe_rate(0.0)
        ewma.observe_rate(10.0)
        window.observe_rate(10.0)
        assert ewma.value > window.value

    def test_ewma_bad_alpha(self):
        with pytest.raises(ValueError):
            EwmaRate(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaRate(alpha=1.5)

    def test_observe_report(self):
        ewma = EwmaRate(alpha=1.0)
        assert ewma.observe(_report(20.0)) == pytest.approx(0.2)
