"""Chaos tests for the networked ingestion layer (``repro.net``).

The tentpole scenario: a ``repro serve`` subprocess is SIGKILLed in the
middle of a client stream and restarted on the same port with the same
checkpoint.  Effectively-once delivery demands that afterwards

- no acknowledged batch is lost (every event lands exactly once),
- no replayed batch is double-counted (dedup, not re-ingest),
- the restored sr=1 / mob=off counts are **bit-identical** to replaying
  the same events through the offline baseline monitor.

Run across 20 seeds so the kill lands at different points of the
protocol (mid-batch, between checkpoint groups, during an ack flush).

The in-process tests exercise the targeted fault points (``net.ack``,
``net.recv``, ``net.accept``) where the interesting assertion is exact
counter reconciliation — e.g. with only ack frames being dropped, every
client retransmit must show up as exactly one server dedup hit.

All tests here are `-m chaos` (they ride in tier-1 too, but CI also
runs them in a dedicated ``net-chaos`` job with a hard timeout).
"""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sys
import time

import pytest

from repro.core.concurrent import RushMonService
from repro.core.config import RushMonConfig
from repro.core.monitor import OfflineAnomalyMonitor
from repro.core.types import Operation, OpType
from repro.net import RushMonClient, RushMonServer
from repro.testing import Fault, FaultInjector

pytestmark = pytest.mark.chaos


def _ops(count, num_keys, seed):
    rng = random.Random(seed)
    return [
        Operation(
            OpType.READ if rng.random() < 0.5 else OpType.WRITE,
            buu=rng.randrange(count // 4 + 1),
            key=f"k{rng.randrange(num_keys)}",
            seq=i,
        )
        for i in range(count)
    ]


def _service(faults=None, **kwargs):
    kwargs.setdefault("num_shards", 2)
    kwargs.setdefault("detect_interval", 0.003)
    record_trace = kwargs.pop("record_trace", True)
    return RushMonService(
        RushMonConfig(sampling_rate=1, mob=False, seed=42, **kwargs),
        faults=faults,
        record_trace=record_trace,
    )


def _assert_sr1_differential(service):
    replayed = OfflineAnomalyMonitor()
    service.serialized_trace().replay([replayed])
    assert replayed.exact_counts() == service.counts()


def _offline_exact(ops):
    """The ground truth: the same ops through the offline baseline."""
    baseline = OfflineAnomalyMonitor()
    for op in ops:
        baseline.on_operation(op)
    return baseline.exact_counts()


# -- serve subprocess helpers --------------------------------------------------


def _repro_env():
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn_serve(args):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *args],
        env=_repro_env(), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True,
    )
    port = None
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(f"serve exited early: {proc.poll()}")
        if "listening on" in line:
            port = int(line.rsplit(":", 1)[1])
            break
    assert port is not None, "serve never printed its port"
    return proc, port


def _serve_args(port, ckpt):
    # --no-mob matters: the chaos differential demands *exact* counts,
    # and MOB bookkeeping is approximate by design.
    return ["--port", str(port), "--checkpoint", ckpt,
            "--checkpoint-every", "2", "--no-mob",
            "--detect-interval", "0.005"]


def _drain_serve(proc, timeout=30):
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=timeout)
    return out


# -- the tentpole: SIGKILL mid-stream, restart, reconcile ----------------------


@pytest.mark.parametrize("seed", range(20))
def test_kill9_mid_stream_recovery_is_bit_identical(tmp_path, seed):
    """SIGKILL the server mid-stream, restart it from the checkpoint on
    the same port, finish the stream: the recovered counts must equal
    the offline baseline bit-for-bit — no acked batch lost, no replayed
    batch double-counted."""
    rng = random.Random(1000 + seed)
    ops = _ops(rng.randrange(160, 240), 8, seed=seed)
    kill_at = rng.randrange(len(ops) // 4, 3 * len(ops) // 4)
    ckpt = str(tmp_path / "chaos.ckpt")

    proc, port = _spawn_serve(_serve_args(0, ckpt))
    second = None
    try:
        with RushMonClient(
            "127.0.0.1", port, session=f"chaos-{seed}", batch_size=16,
            flush_interval=0.002, ack_timeout=0.4, connect_timeout=0.5,
            backoff_base=0.02, backoff_max=0.2, seed=seed,
        ) as client:
            for index, op in enumerate(ops):
                if index == kill_at:
                    proc.kill()  # SIGKILL: no drain, no final checkpoint
                    proc.wait(timeout=10)
                    second, _ = _spawn_serve(_serve_args(port, ckpt))
                client.on_operation(op)
                if index % 8 == 0:
                    time.sleep(0.001)  # let batches interleave the kill
            assert client.flush(30.0), "stream never settled after restart"
            counters = client.counters()
        out = _drain_serve(second)
        second = None
    finally:
        for p in (proc, second):
            if p is not None and p.poll() is None:
                p.kill()

    assert "final checkpoint written" in out
    restored = RushMonService.restore(ckpt)
    # Exactly once: every op ingested a single time across both server
    # incarnations, despite the client replaying every unacked batch.
    assert restored.processed_events == len(ops)
    assert restored.counts() == _offline_exact(ops)
    _assert_sr1_differential(restored)
    # The wire stats ride in the checkpoint, so they reconcile across
    # incarnations: every received batch was either accepted or deduped
    # (refusals would show as a gap here), and a dedup hit can only come
    # from a client retransmit.
    stats = restored.extra_state["net"]["stats"]
    assert stats["batches_accepted"] + stats["dedup_hits"] \
        >= stats["batches_received"] - counters["retransmits"]
    assert stats["dedup_hits"] <= counters["retransmits"]
    assert counters["reconnects"] >= 1  # the kill was actually felt


def test_sigterm_drain_mid_stream_keeps_every_acked_event(tmp_path):
    """SIGTERM (not SIGKILL) mid-stream: the server drains gracefully,
    acks everything it ingested, writes a final checkpoint, and exits 0.
    The checkpoint must contain exactly the events the drain reported."""
    ops = _ops(300, 8, seed=77)
    ckpt = str(tmp_path / "drain.ckpt")
    proc, port = _spawn_serve(_serve_args(0, ckpt))
    try:
        with RushMonClient(
            "127.0.0.1", port, session="drain-mid", batch_size=16,
            flush_interval=0.002, ack_timeout=0.3, connect_timeout=0.3,
            backoff_base=0.02, backoff_max=0.1, seed=7,
        ) as client:
            for index, op in enumerate(ops):
                if index == len(ops) // 2:
                    proc.send_signal(signal.SIGTERM)
                client.on_operation(op)
                time.sleep(0.0005)
            # No server comes back: the unacked tail stays pending.
            client.flush(2.0)
        out, _ = proc.communicate(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()

    assert proc.returncode == 0
    assert "draining" in out
    drained_line = next(line for line in out.splitlines()
                        if line.startswith("drained."))
    reported = {key: int(value) for key, value in
                (field.split("=") for field in drained_line.split()[1:])}
    restored = RushMonService.restore(ckpt)
    assert restored.processed_events == reported["events"]
    assert restored.processed_events <= len(ops)
    _assert_sr1_differential(restored)


# -- targeted fault points (in-process) ----------------------------------------


def test_dropped_acks_reconcile_dedup_hits_with_retransmits_exactly():
    """Drop the ack after ingest: the client must retransmit, the server
    must dedup.  Streaming one batch at a time makes the reconciliation
    exact — every retransmit is of an already-ingested batch, so
    ``dedup_hits == retransmits`` to the digit."""
    ops = _ops(240, 8, seed=51)
    faults = FaultInjector().inject(
        Fault("net.ack", kind="disconnect", every=5, times=3)
    )
    service = _service(detect_interval=0.001)
    with RushMonServer(service, faults=faults) as server:
        with RushMonClient(
            "127.0.0.1", server.port, batch_size=16, flush_interval=0.002,
            ack_timeout=0.3, connect_timeout=0.5, backoff_base=0.02,
            backoff_max=0.1, seed=5,
        ) as client:
            for start in range(0, len(ops), 16):
                for op in ops[start:start + 16]:
                    client.on_operation(op)
                # ≤1 batch in flight: a dropped ack is the only reason
                # to retransmit, and the retransmit is always a dedup.
                assert client.flush(15.0)
            counters = client.counters()
        assert server.stats["events_ingested"] == len(ops)
        assert server.stats["dedup_hits"] == counters["retransmits"] == 3
        assert counters["reconnects"] == 3
        assert service.processed_events == len(ops)
    assert service.counts() == _offline_exact(ops)
    _assert_sr1_differential(service)


def test_corrupt_frames_are_caught_and_replayed():
    """Flip a byte in a received frame: the CRC rejects it, the server
    drops the connection, and the client's replay delivers the batch
    intact — corruption slows the stream down but never poisons it."""
    ops = _ops(200, 8, seed=52)
    faults = FaultInjector().inject(
        # after=4 skips the hello exchange so the session gets set up.
        Fault("net.recv", kind="corrupt", after=4, times=2)
    )
    service = _service(detect_interval=0.001)
    with RushMonServer(service, faults=faults) as server:
        with RushMonClient(
            "127.0.0.1", server.port, batch_size=16, flush_interval=0.002,
            ack_timeout=0.3, connect_timeout=0.5, backoff_base=0.02,
            backoff_max=0.1, seed=6,
        ) as client:
            for op in ops:
                client.on_operation(op)
            assert client.flush(20.0)
            counters = client.counters()
        assert server.stats["events_ingested"] == len(ops)
        assert service.processed_events == len(ops)
        assert counters["reconnects"] >= 1
    assert service.counts() == _offline_exact(ops)
    _assert_sr1_differential(service)


def test_accept_disconnects_are_retried_until_connected():
    """Drop the first connection attempts at accept time: the client
    backs off (full jitter) and retries until the server lets it in."""
    ops = _ops(120, 8, seed=53)
    faults = FaultInjector().inject(
        Fault("net.accept", kind="disconnect", times=2)
    )
    service = _service(detect_interval=0.001)
    with RushMonServer(service, faults=faults) as server:
        with RushMonClient(
            "127.0.0.1", server.port, batch_size=16, flush_interval=0.002,
            ack_timeout=0.5, connect_timeout=0.3, backoff_base=0.02,
            backoff_max=0.1, seed=8,
        ) as client:
            for op in ops:
                client.on_operation(op)
            assert client.flush(20.0)
        assert server.stats["events_ingested"] == len(ops)
        # Both injected accept-drops actually fired (connections_total
        # only counts connections that survive the accept fault).
        assert faults.fired_by_point["net.accept"] == 2
    assert service.counts() == _offline_exact(ops)
    _assert_sr1_differential(service)
