"""Differential tests for the batched ingest fast path.

The contract under test: every batched API (``Collector.handle_batch``,
``CycleDetector.add_edge_batch``, ``ShardedCollector.handle_batch``,
``RushMon.on_operations``) is *bit-identical* to its per-operation
counterpart — same edges, same counters, same cycle/pattern counts, and
the same RNG draw order — for every collector kind, sampling rate and
batch size.  Also covered here: the reachability-based ECT prune vs the
exact-ect oracle, the key/BUU interner, and the lazily-compacted
active-time heap.
"""

import random
from collections import Counter

import pytest

from tests.histgen import random_history
from repro.bench.regress import _chunk_plan, synth_events
from repro.core.collector import (
    BaselineCollector,
    DataCentricCollector,
    EdgeSamplingCollector,
)
from repro.core.concurrent import RushMonService, ShardedCollector
from repro.core.config import RushMonConfig
from repro.core.detector import CycleDetector, LiveGraph
from repro.core.monitor import RushMon
from repro.core.pruning import EctPruning, make_pruner
from repro.core.types import (
    BuuInterner,
    Edge,
    EdgeType,
    KeyInterner,
    Operation,
    OpType,
    intern_operations,
)
from repro.storage.wal import decode_detector_state, encode_detector_state

SEEDS = range(30)
BATCH_SIZES = (1, 7, 1024)
SAMPLING_RATES = (1, 2, 8)


def _make_collector(kind, sr):
    if kind == "baseline":
        return BaselineCollector()
    if kind == "es":
        return EdgeSamplingCollector(sampling_rate=sr)
    return DataCentricCollector(sampling_rate=sr, mob=True, seed=0)


def _rng_states(col):
    """Every RNG a collector owns, in a comparable form."""
    states = []
    rng = getattr(col, "_rng", None)
    if rng is not None:
        states.append(rng.getstate())
    shard = getattr(col, "shard", None)
    if shard is not None:
        states.append(shard._rng.getstate())
    return states


def _chunks(seq, size):
    for i in range(0, len(seq), size):
        yield seq[i:i + size]


# -- collector: handle_batch == handle, bit for bit --------------------------


@pytest.mark.parametrize("kind", ["baseline", "es", "dcs"])
@pytest.mark.parametrize("sr", SAMPLING_RATES)
@pytest.mark.parametrize("batch", BATCH_SIZES)
def test_collector_batch_bit_identical(kind, sr, batch):
    for seed in SEEDS:
        history = random_history(seed)
        per_op = _make_collector(kind, sr)
        batched = _make_collector(kind, sr)
        edges_a = [e for op in history for e in per_op.handle(op)]
        edges_b = []
        for chunk in _chunks(history, batch):
            edges_b.extend(batched.handle_batch(chunk))
        assert edges_a == edges_b
        assert per_op.stats == batched.stats
        assert per_op.touches == batched.touches
        assert per_op.ops_seen == batched.ops_seen
        assert _rng_states(per_op) == _rng_states(batched)


def test_collector_batch_accepts_generators():
    history = random_history(3)
    per_op = BaselineCollector()
    batched = BaselineCollector()
    edges_a = [e for op in history for e in per_op.handle(op)]
    edges_b = list(batched.handle_batch(op for op in history))
    assert edges_a == edges_b


# -- detector: add_edge_batch == add_edge ------------------------------------


def _lifecycle_stream(history):
    """Interleave begin/commit lifecycle tuples with per-op edge batches
    from the exact baseline collector."""
    col = BaselineCollector()
    last_index = {op.buu: i for i, op in enumerate(history)}
    begun = set()
    stream = []
    for i, op in enumerate(history):
        if op.buu not in begun:
            begun.add(op.buu)
            stream.append(("b", op.buu, op.seq))
        stream.extend(col.handle(op))
        if last_index[op.buu] == i:
            stream.append(("c", op.buu, op.seq))
    return stream


@pytest.mark.parametrize("batch", BATCH_SIZES)
@pytest.mark.parametrize("pruning", [None, "both"])
def test_detector_batch_counts_identical(batch, pruning):
    """Counts/patterns match per-edge ingestion exactly; with pruning
    disabled the entire graph state matches too (with pruning enabled
    prune *timing* differs by design — counts still must not)."""
    for seed in range(10):
        stream = _lifecycle_stream(random_history(seed))
        pruner_a = make_pruner(pruning) if pruning else None
        pruner_b = make_pruner(pruning) if pruning else None
        det_a = CycleDetector(pruner=pruner_a, prune_interval=50)
        det_b = CycleDetector(pruner=pruner_b, prune_interval=50)
        buf = []
        for item in stream:
            if item.__class__ is Edge:
                det_a.add_edge(item)
                buf.append(item)
                if len(buf) >= batch:
                    det_b.add_edge_batch(buf)
                    buf = []
            else:
                if buf:
                    det_b.add_edge_batch(buf)
                    buf = []
                if item[0] == "b":
                    det_a.begin_buu(item[1], item[2])
                    det_b.begin_buu(item[1], item[2])
                else:
                    det_a.commit_buu(item[1], item[2])
                    det_b.commit_buu(item[1], item[2])
        if buf:
            det_b.add_edge_batch(buf)
        assert det_a.counts == det_b.counts
        assert det_a.patterns.counts == det_b.patterns.counts
        if pruning is None:
            g_a, g_b = det_a.graph, det_b.graph
            assert g_a.labels == g_b.labels
            assert g_a.out == g_b.out
            assert g_a.inc == g_b.inc
            assert g_a.present == g_b.present
            assert g_a.edge_count == g_b.edge_count


def test_add_edge_batch_returns_aggregate_of_new_cycles():
    det_a = CycleDetector()
    det_b = CycleDetector()
    edges = [
        Edge(1, 2, EdgeType.WR, "k1", 1),
        Edge(2, 1, EdgeType.RW, "k1", 2),
        Edge(2, 3, EdgeType.WW, "k2", 3),
        Edge(3, 1, EdgeType.WR, "k3", 4),
        Edge(1, 2, EdgeType.WR, "k1", 5),  # duplicate: ignored
    ]
    total = det_b.add_edge_batch(edges)
    per_edge = [det_a.add_edge(e) for e in edges]
    agg = per_edge[0]
    for new in per_edge[1:]:
        agg.add(new)
    assert total == agg
    assert det_a.counts == det_b.counts


def test_batching_across_lifecycle_boundaries_is_count_exact():
    """The regress harness buffers operations across begin/commit events
    (lifecycle applies to the detector immediately, buffered operations
    flush later).  That reordering must not change any count."""
    events = synth_events(4000, num_keys=64, seed=5)
    col_a = DataCentricCollector(sampling_rate=1, mob=True, seed=0)
    det_a = CycleDetector(pruner=make_pruner("both"), prune_interval=100)
    for ev in events:
        if ev.__class__ is Operation:
            for edge in col_a.handle(ev):
                det_a.add_edge(edge)
        elif ev[0] == "b":
            det_a.begin_buu(ev[1], ev[2])
        else:
            det_a.commit_buu(ev[1], ev[2])

    col_b = DataCentricCollector(sampling_rate=1, mob=True, seed=0)
    det_b = CycleDetector(pruner=make_pruner("both"), prune_interval=100)
    for item in _chunk_plan(events, 256):
        if item.__class__ is list:
            det_b.add_edge_batch(col_b.handle_batch(item))
        elif item[0] == "b":
            det_b.begin_buu(item[1], item[2])
        else:
            det_b.commit_buu(item[1], item[2])

    assert det_a.counts == det_b.counts
    assert det_a.patterns.counts == det_b.patterns.counts
    assert col_a.stats == col_b.stats


# -- ECT pruning: reachability pass == exact-ect oracle ----------------------


def _random_live_graph(seed):
    rng = random.Random(seed)
    graph = LiveGraph()
    n = rng.randrange(6, 40)
    for v in range(n):
        graph.begin(v, rng.randrange(100))
    kinds = [EdgeType.WR, EdgeType.WW, EdgeType.RW]
    for _ in range(rng.randrange(10, 90)):
        u, v = rng.randrange(n), rng.randrange(n)
        graph.add_edge(u, v, f"k{rng.randrange(8)}", rng.choice(kinds))
    for v in range(n):
        if rng.random() < 0.7:
            graph.commit(v, rng.randrange(100, 220))
    return graph


def test_ect_reachability_matches_exact_ect_oracle():
    checked = 0
    for seed in range(50):
        graph = _random_live_graph(seed)
        if not graph.alive:
            continue
        now = 300
        t_active = graph.active_time(default=now)
        ect = EctPruning()._exact_ect(graph)
        inf = float("inf")
        expected = {
            v for v in graph.present
            if v not in graph.alive and v in graph.commits
            and ect.get(v, inf) < t_active
        }
        before = set(graph.present)
        pruner = EctPruning()
        removed = pruner.prune(graph, now)
        assert removed == len(expected)
        assert graph.present == before - expected
        checked += 1
    assert checked > 10  # the sweep must actually exercise the pruner


# -- sharded collector -------------------------------------------------------


@pytest.mark.parametrize("sr", (1, 4))
@pytest.mark.parametrize("journal", (False, True))
def test_sharded_collector_batch_matches_per_op(sr, journal):
    for seed in range(8):
        history = random_history(seed)
        per_op = ShardedCollector(sampling_rate=sr, num_shards=4, seed=0,
                                  journal=journal)
        batched = ShardedCollector(sampling_rate=sr, num_shards=4, seed=0,
                                   journal=journal)
        edges_a = [e for op in history for e in per_op.handle(op)]
        edges_b = []
        for chunk in _chunks(history, 16):
            edges_b.extend(batched.handle_batch(chunk))
        # The batch path groups operations by shard, so inter-shard edge
        # order may differ; a key lives in exactly one shard, so the
        # multiset is the invariant.
        assert Counter(edges_a) == Counter(edges_b)
        assert per_op.stats == batched.stats
        if journal:
            # The batch path tickets operations shard group by shard
            # group, so cross-shard journal order inside one batch may
            # differ from arrival order.  Per-key (= per-shard) order is
            # the only order the bookkeeping and detector results depend
            # on — cycle totals are edge-multiset properties and
            # classify_two_cycle is symmetric — so the invariant is:
            # identical per-shard event subsequences.
            def by_shard(collector, events):
                seqs = {}
                for _ticket, kind, payload, extra in events:
                    shard = (collector.shard_index(payload.key)
                             if kind == "op" else "lifecycle")
                    normalized = (kind, payload, tuple(extra or ()))
                    seqs.setdefault(shard, []).append(normalized)
                return seqs

            assert by_shard(per_op, per_op.drain_journal()) == \
                by_shard(batched, batched.drain_journal())


def test_sharded_collector_int_key_fast_path():
    """Interned (int) keys bucket by masked id on power-of-two shard
    counts, and by the splitmix hash otherwise — never by CRC of repr."""
    pow2 = ShardedCollector(num_shards=8)
    for kid in (0, 1, 7, 8, 123456):
        assert pow2.shard_index(kid) == kid & 7
    odd = ShardedCollector(num_shards=3)
    for kid in (0, 1, 7, 8, 123456):
        assert 0 <= odd.shard_index(kid) < 3
    # bool is an int subclass but must not take the masked path silently
    # differing from equal string keys; just check it stays in range.
    assert 0 <= pow2.shard_index(True) < 8


# -- serial monitor ----------------------------------------------------------


def _feed_monitor(monitor, history, batch=None):
    last_index = {op.buu: i for i, op in enumerate(history)}
    begun = set()
    buf = []
    for i, op in enumerate(history):
        if op.buu not in begun:
            if buf and batch is not None:
                for chunk in _chunks(buf, batch):
                    monitor.on_operations(chunk)
                buf = []
            begun.add(op.buu)
            monitor.begin_buu(op.buu, op.seq)
        if batch is None:
            monitor.on_operation(op)
        else:
            buf.append(op)
        if last_index[op.buu] == i:
            if buf:
                for chunk in _chunks(buf, batch):
                    monitor.on_operations(chunk)
                buf = []
            monitor.commit_buu(op.buu, op.seq)


@pytest.mark.parametrize("batch", BATCH_SIZES)
def test_rushmon_on_operations_matches_per_op(batch):
    for seed in range(8):
        history = random_history(seed)
        config = RushMonConfig(sampling_rate=2, mob=True, seed=0)
        per_op = RushMon(config)
        batched = RushMon(RushMonConfig(sampling_rate=2, mob=True, seed=0))
        _feed_monitor(per_op, history)
        _feed_monitor(batched, history, batch=batch)
        assert per_op.detector.counts == batched.detector.counts
        assert per_op.detector.patterns.counts == \
            batched.detector.patterns.counts
        assert per_op.collector.stats == batched.collector.stats
        report_a = per_op.close_window()
        report_b = batched.close_window()
        assert report_a.operations == report_b.operations
        assert report_a.estimated_2 == report_b.estimated_2
        assert report_a.estimated_3 == report_b.estimated_3


# -- service: batch size configuration + checkpoint --------------------------


def test_service_batch_size_validation():
    with pytest.raises(ValueError, match="batch_size"):
        RushMonConfig(batch_size=0)
    with pytest.raises(ValueError, match="batch_size"):
        RushMonConfig(batch_size="16")


def test_service_checkpoint_round_trips_batch_size(tmp_path):
    config = RushMonConfig(sampling_rate=1, seed=0, num_shards=2,
                           batch_size=7)
    service = RushMonService(config)
    ops = [Operation(OpType.WRITE if i % 2 else OpType.READ,
                     buu=i % 4, key=f"k{i % 8}", seq=i + 1)
           for i in range(64)]
    for b in range(4):
        service.begin_buu(b, 0)
    service.on_operations(ops)
    service.close_window()
    path = tmp_path / "ckpt.json"
    service.checkpoint(str(path))
    restored = RushMonService.restore(str(path))
    assert restored.batch_size == 7
    assert restored.counts() == service.counts()
    # and the restored service keeps ingesting in batches
    more = [Operation(OpType.WRITE, buu=1, key="k1", seq=100 + i)
            for i in range(10)]
    restored.on_operations(more)
    restored.close_window()


@pytest.mark.parametrize("batch_size", (1, 3, 256))
def test_service_batched_ingest_matches_unbatched(batch_size):
    """The same stream through services with different batch sizes must
    produce identical cumulative counts (single-threaded: the batched
    journal/detect path is exactly order-preserving)."""
    history = random_history(11)
    results = []
    for size in (batch_size, 10_000):
        service = RushMonService(RushMonConfig(sampling_rate=1, seed=0,
                                               num_shards=4,
                                               batch_size=size))
        last_index = {op.buu: i for i, op in enumerate(history)}
        begun = set()
        for i, op in enumerate(history):
            if op.buu not in begun:
                begun.add(op.buu)
                service.begin_buu(op.buu, op.seq)
            service.on_operations([op])
            if last_index[op.buu] == i:
                service.commit_buu(op.buu, op.seq)
        service.close_window()
        results.append((service.counts(), service.cumulative_estimates()))
        service.stop()
    assert results[0] == results[1]


# -- interner ----------------------------------------------------------------


def test_key_interner_dense_ids_and_roundtrip():
    interner = KeyInterner()
    ids = [interner.intern(k) for k in ("a", "b", "a", "c", "b")]
    assert ids == [0, 1, 0, 2, 1]
    assert len(interner) == 3
    assert "a" in interner and "z" not in interner
    assert [interner.key_of(i) for i in range(3)] == ["a", "b", "c"]
    assert interner.intern_many(["c", "d"]) == [2, 3]

    clone = KeyInterner()
    clone.load_state(interner.to_state())
    assert clone.intern("e") == 4
    assert clone.key_of(3) == "d"


def test_intern_operations_maps_keys_and_buus():
    ops = [Operation(OpType.READ, buu="t1", key="x", seq=1),
           Operation(OpType.WRITE, buu="t2", key="y", seq=2),
           Operation(OpType.WRITE, buu="t1", key="x", seq=3)]
    keys = KeyInterner()
    buus = BuuInterner()
    interned = intern_operations(ops, keys, buus)
    assert [op.key for op in interned] == [0, 1, 0]
    assert [op.buu for op in interned] == [0, 1, 0]
    assert [op.op for op in interned] == [op.op for op in ops]
    assert [op.seq for op in interned] == [1, 2, 3]
    assert keys.key_of(1) == "y" and buus.key_of(1) == "t2"


def test_interned_stream_equivalent_to_string_stream():
    """Interning relabels keys/BUUs bijectively, so cycle counts are
    unchanged (only labels differ)."""
    history = random_history(7)
    keys, buus = KeyInterner(), BuuInterner()
    interned = intern_operations(history, keys, buus)

    counts = []
    for stream in (history, interned):
        col = BaselineCollector()
        det = CycleDetector()
        det.add_edge_batch(col.handle_batch(stream))
        counts.append(det.counts)
    assert counts[0] == counts[1]


# -- active-time heap --------------------------------------------------------


def test_active_time_matches_naive_min_under_churn():
    rng = random.Random(42)
    graph = LiveGraph()
    next_buu = 0
    alive = []
    for step in range(2000):
        if alive and rng.random() < 0.4:
            buu = alive.pop(rng.randrange(len(alive)))
            graph.commit(buu, step)
        else:
            graph.begin(next_buu, step)
            alive.append(next_buu)
            next_buu += 1
        expected = (min(graph.starts[b] for b in alive)
                    if alive else float(step))
        assert graph.active_time(default=step) == expected


def test_active_time_after_wholesale_state_install():
    """Checkpoint restore assigns alive/starts directly; the heap must
    rebuild itself instead of reporting a stale or missing minimum."""
    graph = LiveGraph()
    graph.alive = {10, 11, 12}
    graph.starts = {10: 50, 11: 30, 12: 70}
    assert graph.active_time() == 30.0
    graph.commit(11, 80)
    assert graph.active_time() == 50.0


def test_wal_detector_roundtrip_preserves_active_time():
    det = CycleDetector()
    det.begin_buu(1, 5)
    det.begin_buu(2, 9)
    det.add_edge(Edge(1, 2, EdgeType.WR, "k", 10))
    det.commit_buu(1, 11)
    clone = CycleDetector()
    decode_detector_state(clone, encode_detector_state(det))
    assert clone.graph.active_time() == det.graph.active_time() == 9.0
    clone.commit_buu(2, 12)
    clone.begin_buu(3, 20)
    assert clone.graph.active_time() == 20.0
