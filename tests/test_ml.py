"""Tests for the optimization substrate (logistic regression, optimizers,
asynchronous training)."""

import math
import random

import pytest

from repro.ml.async_sgd import AsyncTrainer
from repro.ml.logistic import (
    dataset_loss,
    initial_loss,
    optimum_loss,
    sample_gradient,
    sample_loss,
    sigmoid,
)
from repro.ml.optimizers import (
    asgd_buu,
    asgdm_buu,
    make_optimizer,
    rmsprop_buu,
    sequential_sgd,
)
from repro.sim import SimConfig
from repro.workloads.datasets import ClickSample, synthetic_click_dataset


@pytest.fixture(scope="module")
def dataset():
    return synthetic_click_dataset(300, 40, 5, rng=random.Random(1))


class TestLogistic:
    def test_sigmoid_range_and_symmetry(self):
        assert sigmoid(0.0) == pytest.approx(0.5)
        assert sigmoid(100.0) == pytest.approx(1.0)
        assert sigmoid(-100.0) == pytest.approx(0.0, abs=1e-10)
        assert sigmoid(2.0) + sigmoid(-2.0) == pytest.approx(1.0)

    def test_zero_model_loss_is_log2(self, dataset):
        assert initial_loss(dataset) == pytest.approx(math.log(2))

    def test_optimum_beats_initial(self, dataset):
        assert optimum_loss(dataset) < initial_loss(dataset)

    def test_loss_nonnegative(self, dataset):
        weights = {dataset.weight_key(i): 0.3 for i in range(dataset.num_features)}
        for sample in dataset.samples[:20]:
            assert sample_loss(weights, sample, dataset) >= 0

    def test_gradient_matches_finite_difference(self, dataset):
        sample = dataset.samples[0]
        weights = {dataset.weight_key(i): 0.1 * (i % 5)
                   for i in range(dataset.num_features)}
        grad = sample_gradient(weights, sample, dataset)
        eps = 1e-6
        for feature in sample.features:
            key = dataset.weight_key(feature)
            bumped = dict(weights)
            bumped[key] = weights.get(key, 0.0) + eps
            numeric = (sample_loss(bumped, sample, dataset)
                       - sample_loss(weights, sample, dataset)) / eps
            assert grad[key] == pytest.approx(numeric, rel=1e-3, abs=1e-6)

    def test_gradient_sign(self, dataset):
        """For a positive label and zero weights, the gradient is negative
        (pushing scores up)."""
        sample = ClickSample(features=[0, 1], label=1)
        grad = sample_gradient({}, sample, dataset)
        assert all(g < 0 for g in grad.values())


class TestSequentialSgd:
    def test_converges_near_optimum(self, dataset):
        weights = sequential_sgd(dataset, lr=0.1, epochs=10)
        assert dataset_loss(weights, dataset) <= optimum_loss(dataset) + 0.05

    def test_deterministic(self, dataset):
        w1 = sequential_sgd(dataset, lr=0.1, epochs=2, seed=5)
        w2 = sequential_sgd(dataset, lr=0.1, epochs=2, seed=5)
        assert w1 == w2


class TestOptimizerBuus:
    def test_asgd_buu_shape(self, dataset):
        sample = dataset.samples[0]
        buu = asgd_buu(dataset, sample, lr=0.1)
        assert buu.additive
        assert len(buu.reads) == len(sample.features)
        deltas = buu.run_compute({k: 0.0 for k in buu.reads})
        assert set(deltas) == set(buu.reads)

    def test_asgdm_reads_velocity(self, dataset):
        sample = dataset.samples[0]
        buu = asgdm_buu(dataset, sample, lr=0.1)
        assert any(str(k).startswith("m:") for k in buu.reads)
        deltas = buu.run_compute({k: 0.0 for k in buu.reads})
        # writes both weights and velocity deltas
        assert any(str(k).startswith("m:") for k in deltas)

    def test_asgdm_momentum_accumulates(self, dataset):
        sample = dataset.samples[0]
        buu = asgdm_buu(dataset, sample, lr=0.1, momentum=0.9)
        key = dataset.weight_key(sample.features[0])
        first = buu.run_compute({k: 0.0 for k in buu.reads})
        # second step with the velocity from the first: larger weight delta
        values = {k: 0.0 for k in buu.reads}
        values[f"m:{key}"] = first[f"m:{key}"]
        second = buu.run_compute(values)
        assert abs(second[key]) > abs(first[key]) * 0.99

    def test_rmsprop_normalizes_step(self, dataset):
        sample = dataset.samples[0]
        buu = rmsprop_buu(dataset, sample, lr=0.1, decay=0.0)
        deltas = buu.run_compute({k: 0.0 for k in buu.reads})
        key = dataset.weight_key(sample.features[0])
        # with decay=0, step = -lr * g / |g| = -lr * sign(g)
        assert abs(deltas[key]) == pytest.approx(0.1, rel=1e-3)

    def test_make_optimizer_unknown(self):
        with pytest.raises(ValueError):
            make_optimizer("adamw")


class TestAsyncTrainer:
    def test_serial_like_training_converges(self, dataset):
        trainer = AsyncTrainer(
            dataset, "asgd",
            SimConfig(num_workers=1, seed=0),
            learning_rate=0.2, batch_per_round=300,
        )
        result = trainer.train(rounds=12)
        assert result.converged
        assert result.final_loss <= optimum_loss(dataset) + 0.06

    def test_records_anomalies_and_losses(self, dataset):
        trainer = AsyncTrainer(
            dataset, "asgd",
            SimConfig(num_workers=8, seed=1, write_latency=200),
            learning_rate=0.2, batch_per_round=200,
        )
        result = trainer.train(rounds=4)
        assert len(result.rounds) == 4
        assert result.rounds[-1].buus_total == 800
        assert result.total_2_cycles >= 0
        assert all(r.loss > 0 for r in result.rounds)

    def test_staleness_slows_convergence(self, dataset):
        """The Fig 7 relationship: tighter staleness converges in fewer
        BUUs; loose staleness needs more (or diverges)."""

        def buus_to_converge(bound):
            trainer = AsyncTrainer(
                dataset, "asgd",
                SimConfig(num_workers=16, seed=3, write_latency=800,
                          staleness_bound=bound, compute_jitter=20),
                learning_rate=0.5, batch_per_round=100, seed=3,
            )
            result = trainer.train(rounds=30, stop_at_convergence=True)
            return result.buus_to_converge or 10**9

        assert buus_to_converge(1) < buus_to_converge(None)

    def test_staleness_increases_anomaly_rate(self):
        """Needs the sparse-conflict regime (wide feature space) that the
        Fig 7 experiment operates in."""
        sparse = synthetic_click_dataset(300, 60, 5, rng=random.Random(1))

        def rate(bound):
            trainer = AsyncTrainer(
                sparse, "asgd",
                SimConfig(num_workers=8, seed=3, write_latency=400,
                          staleness_bound=bound, compute_jitter=20),
                learning_rate=0.05, batch_per_round=200, seed=3,
            )
            result = trainer.train(rounds=5)
            c2, c3 = result.cycles_per_time()
            return c2 + c3

        assert rate(1) < rate(None)

    def test_staleness_schedule_switch(self, dataset):
        """Fig 8 mechanics: the schedule switches the bound mid-run."""
        trainer = AsyncTrainer(
            dataset, "asgd",
            SimConfig(num_workers=16, seed=3, write_latency=800,
                      staleness_bound=None, compute_jitter=20),
            learning_rate=0.3, batch_per_round=100, seed=3,
        )
        trainer.train(rounds=4, staleness_schedule={2: 1})
        assert trainer.simulator.config.staleness_bound == 1

    def test_divergence_detected(self, dataset):
        trainer = AsyncTrainer(
            dataset, "asgd",
            SimConfig(num_workers=16, seed=3, write_latency=2000,
                      compute_jitter=10),
            learning_rate=8.0, batch_per_round=200, seed=3,
        )
        result = trainer.train(rounds=20)
        assert not result.converged
        # blow-up cut the run short
        assert len(result.rounds) <= 20
