"""Smoke tests for the monitoring-overhead harness."""

import os

from repro.bench.overhead import run_overhead


def test_quick_overhead_reports_ratios(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    rows = run_overhead(buus=60, keys=32, touch=2, threads=2,
                        sampling_rates=(1,), repeats=1, name="overhead_test")

    # One bare row plus serial+service per sampling rate.
    assert [r["mode"] for r in rows] == ["bare", "serial", "service"]
    bare = rows[0]
    assert bare["ratio"] == 1.0 and bare["overhead_pct"] == 0.0
    for row in rows[1:]:
        assert row["seconds"] > 0
        assert row["ratio"] > 0
        assert row["overhead_pct"] == (row["ratio"] - 1.0) * 100.0

    # The table was printed and persisted.
    out = capsys.readouterr().out
    assert "overhead %" in out
    path = os.path.join(str(tmp_path), "overhead_test.txt")
    with open(path) as handle:
        assert "Monitoring overhead" in handle.read()


def test_main_quick_flag(tmp_path, monkeypatch):
    from repro.bench.overhead import main

    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    rows = main(["--quick", "--buus", "40", "--keys", "16",
                 "--rates", "1", "--threads", "2"])
    assert any(r["mode"] == "service" for r in rows)
    assert os.path.exists(os.path.join(str(tmp_path), "overhead.txt"))
