"""Tests for the benchmark harness itself (replay, overhead, reporting)."""

import os

import pytest

from repro.bench.harness import (
    SAMPLING_RATES,
    measure_collector,
    record_graph_workload,
    record_workload_from_buus,
    scale,
)
from repro.bench.reporting import format_table
from repro.core.collector import BaselineCollector, DataCentricCollector
from repro.sim import read_modify_write


class TestScale:
    def test_default_is_identity(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale(100) == 100

    def test_multiplier(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert scale(100) == 250

    def test_minimum_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.001")
        assert scale(100, minimum=7) == 7


@pytest.fixture(scope="module")
def small_run():
    return record_graph_workload(num_buus=300, num_vertices=200,
                                 average_degree=6, num_workers=4, seed=77)


class TestRecordedRun:
    def test_records_everything(self, small_run):
        assert small_run.ops
        assert len(small_run.begins) == 300
        assert len(small_run.commits) == 300
        assert small_run.app_seconds > 0
        assert small_run.num_items == 200

    def test_from_buus(self):
        run = record_workload_from_buus(
            [read_modify_write(["a"], lambda v: (v or 0) + 1)
             for _ in range(20)],
            num_items=1, num_workers=2, seed=1,
        )
        assert len(run.commits) == 20


class TestMeasureCollector:
    def test_unsampled_reference(self, small_run):
        m = measure_collector(BaselineCollector(), small_run, "US")
        assert m.edges > 0
        assert m.estimated_2 == m.raw.two_cycles  # p=1: estimate == raw
        assert m.collect_seconds > 0

    def test_replay_is_repeatable(self, small_run):
        a = measure_collector(
            DataCentricCollector(sampling_rate=3, mob=False, seed=1),
            small_run, "a")
        b = measure_collector(
            DataCentricCollector(sampling_rate=3, mob=False, seed=1),
            small_run, "b")
        assert a.edges == b.edges
        assert a.estimated_2 == b.estimated_2

    def test_pruning_inside_replay_preserves_counts(self, small_run):
        pruned = measure_collector(BaselineCollector(), small_run, "p",
                                   pruning="both", prune_interval=50)
        unpruned = measure_collector(BaselineCollector(), small_run, "u",
                                     pruning="none")
        assert pruned.raw.two_cycles == unpruned.raw.two_cycles
        assert pruned.raw.three_cycles == unpruned.raw.three_cycles

    def test_edge_estimator_selection(self, small_run):
        from repro.core.collector import EdgeSamplingCollector

        m = measure_collector(EdgeSamplingCollector(sampling_rate=2),
                              small_run, "es", estimator="edge")
        assert m.estimated_2 == m.raw.two_cycles * 4  # 1/p^2

    def test_unknown_estimator(self, small_run):
        with pytest.raises(ValueError):
            measure_collector(BaselineCollector(), small_run, "x",
                              estimator="bayes")

    def test_overhead_accessors(self, small_run):
        m = measure_collector(BaselineCollector(), small_run, "US")
        base = m.overhead_percent(small_run.app_seconds)
        with_det = m.overhead_with_detection_percent(small_run.app_seconds)
        assert with_det >= base > 0


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table("T", ["a", "long header"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "long header" in lines[2]
        # all rows equal width per column: '333' padded under 'a'
        assert lines[4].startswith("333")

    def test_format_table_float_rendering(self):
        table = format_table("T", ["v"], [[0.123456], [12345.6], [0.0001]])
        assert "0.123" in table
        assert "1.23e+04" in table
        assert "0.0001" in table

    def test_sampling_rates_constant(self):
        assert SAMPLING_RATES == (1, 2, 5, 10, 20, 50, 100)
