"""Unit and golden-corpus tests for the exact checker (``repro.checkers``).

The golden traces under ``tests/golden/`` are hand-built minimal
histories, one per G-class plus serializable controls; each file's full
classification is asserted *exactly*, so any drift in edge derivation,
cycle enumeration or taxonomy mapping fails loudly with the class name in
the assertion.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, strategies as st

from repro.checkers import (
    CYCLE_CLASSES,
    GClass,
    check_operations,
    check_trace,
    classify_cycle,
    derive_dependency_edges,
    exact_cycle_counts,
)
from repro.cli import main
from repro.core.types import EdgeType, Operation, OpType
from repro.sim.traces import Trace

GOLDEN = Path(__file__).parent / "golden"

R, W = OpType.READ, OpType.WRITE


def history(*steps):
    """Build a history from (op, buu, key) triples; seq is the position."""
    return [Operation(op, buu, key, seq)
            for seq, (op, buu, key) in enumerate(steps, start=1)]


class TestClassifyCycle:
    def test_all_ww_is_g0(self):
        assert classify_cycle([EdgeType.WW, EdgeType.WW]) is GClass.G0

    def test_ww_wr_mix_is_g1c(self):
        assert classify_cycle([EdgeType.WW, EdgeType.WR]) is GClass.G1C
        assert classify_cycle([EdgeType.WR, EdgeType.WR]) is GClass.G1C

    def test_two_adjacent_rw_is_gsi(self):
        assert classify_cycle([EdgeType.RW, EdgeType.RW]) is GClass.G_SI
        assert classify_cycle(
            [EdgeType.WR, EdgeType.RW, EdgeType.RW]) is GClass.G_SI

    def test_wraparound_adjacency_counts(self):
        """The last and first edges are cyclically adjacent."""
        assert classify_cycle(
            [EdgeType.RW, EdgeType.WW, EdgeType.RW]) is GClass.G_SI

    def test_isolated_rw_is_g2(self):
        assert classify_cycle([EdgeType.RW, EdgeType.WW]) is GClass.G2
        assert classify_cycle(
            [EdgeType.RW, EdgeType.WR, EdgeType.RW, EdgeType.WW]
        ) is GClass.G2
        assert classify_cycle(
            [EdgeType.RW, EdgeType.WR, EdgeType.RW, EdgeType.WR]
        ) is GClass.G2

    def test_empty_cycle_rejected(self):
        with pytest.raises(ValueError):
            classify_cycle([])

    @given(kinds=st.lists(st.sampled_from(list(EdgeType)),
                          min_size=2, max_size=6),
           shift=st.integers(0, 5))
    def test_rotation_invariant(self, kinds, shift):
        """A cycle has no distinguished starting edge: classification
        must not depend on where the walk begins."""
        rotated = kinds[shift % len(kinds):] + kinds[:shift % len(kinds)]
        assert classify_cycle(kinds) is classify_cycle(rotated)

    @given(kinds=st.lists(st.sampled_from(list(EdgeType)),
                          min_size=2, max_size=6))
    def test_total_and_exclusive(self, kinds):
        """Every kind sequence maps to exactly one cycle class."""
        assert classify_cycle(kinds) in CYCLE_CLASSES


class TestEdgeDerivation:
    def test_wr_ww_rw_basics(self):
        ops = history((W, 1, "x"), (R, 2, "x"), (W, 3, "x"), (W, 4, "x"))
        edges, stats, _ = derive_dependency_edges(ops)
        kinds = {(e.src, e.dst, e.kind) for e in edges}
        assert kinds == {(1, 2, EdgeType.WR),   # read observes write
                         (2, 3, EdgeType.RW),   # write overwrites read
                         (3, 4, EdgeType.WW)}   # direct overwrite
        assert (stats.wr, stats.ww, stats.rw) == (1, 1, 1)

    def test_self_edges_skipped(self):
        ops = history((W, 1, "x"), (R, 1, "x"), (W, 1, "x"))
        edges, stats, _ = derive_dependency_edges(ops)
        assert edges == []
        assert stats.total == 0

    def test_matches_offline_monitor_on_random_histories(self):
        """The independent per-key derivation reproduces Algorithm 1's
        aggregate edge stats on seeded random histories."""
        from repro.core.monitor import OfflineAnomalyMonitor
        from tests.histgen import random_history

        for seed in range(10):
            hist = random_history(seed)
            offline = OfflineAnomalyMonitor()
            offline.on_operations(hist)
            _, stats, _ = derive_dependency_edges(hist)
            assert stats == offline.collector.stats


class TestGoldenCorpus:
    """Each golden trace's classification, asserted exactly."""

    def check(self, name):
        return check_trace(Trace.load(GOLDEN / name))

    def test_g0_dirty_write(self):
        report = self.check("g0_dirty_write.jsonl")
        assert report.counts == {GClass.G0: 1}
        assert report.cycles.two_cycles == 1 and report.cycles.dd == 1
        assert not report.serializable

    def test_g1a_aborted_read(self):
        report = self.check("g1a_aborted_read.jsonl")
        assert report.counts == {GClass.G1A: 1}
        assert report.aborted == (1,)   # inferred: ops but no commit
        assert report.serializable      # graph itself is acyclic...
        assert not report.anomaly_free  # ...but the read is dirty

    def test_g1b_intermediate_read(self):
        report = self.check("g1b_intermediate_read.jsonl")
        # The re-write also closes a wr/rw cycle on x (unrepeatable
        # read), so G2 rides along with the intermediate read.
        assert report.counts == {GClass.G1B: 1, GClass.G2: 1}
        assert not report.serializable

    def test_g1c_circular_information_flow(self):
        report = self.check("g1c_circular_flow.jsonl")
        assert report.counts == {GClass.G1C: 1}
        assert report.cycles.dd == 1

    def test_gsi_write_skew(self):
        report = self.check("gsi_write_skew.jsonl")
        assert report.counts == {GClass.G_SI: 1}
        witness = report.witnesses[GClass.G_SI][0]
        assert all(e.kind is EdgeType.RW for e in witness.edges)

    def test_g2_lost_update(self):
        report = self.check("g2_lost_update.jsonl")
        assert report.counts == {GClass.G2: 1}
        assert report.cycles.ss == 1  # both edges on the same item

    @pytest.mark.parametrize("name", ["serializable_serial.jsonl",
                                      "serializable_concurrent.jsonl"])
    def test_serializable_controls_are_clean(self, name):
        report = self.check(name)
        assert report.counts == {}
        assert report.serializable
        assert report.anomaly_free
        assert report.cycles.two_cycles == 0
        assert report.cycles.three_cycles == 0

    def test_every_gclass_covered(self):
        """The corpus collectively exercises the whole taxonomy."""
        detected = set()
        for path in sorted(GOLDEN.glob("*.jsonl")):
            detected.update(check_trace(Trace.load(path)).detected_classes())
        assert detected == set(GClass)

    @pytest.mark.parametrize("name,expect_rc", [
        ("g0_dirty_write.jsonl", 1),
        ("g1a_aborted_read.jsonl", 1),
        ("g1b_intermediate_read.jsonl", 1),
        ("g1c_circular_flow.jsonl", 1),
        ("gsi_write_skew.jsonl", 1),
        ("g2_lost_update.jsonl", 1),
        ("serializable_serial.jsonl", 0),
        ("serializable_concurrent.jsonl", 0),
    ])
    def test_cli_check_verdicts(self, name, expect_rc, capsys):
        """`repro check` classifies the corpus correctly end to end."""
        assert main(["check", str(GOLDEN / name)]) == expect_rc
        out = capsys.readouterr().out
        if expect_rc:
            expected_class = {
                "g0_dirty_write.jsonl": "G0",
                "g1a_aborted_read.jsonl": "G1a",
                "g1b_intermediate_read.jsonl": "G1b",
                "g1c_circular_flow.jsonl": "G1c",
                "gsi_write_skew.jsonl": "G-SI",
                "g2_lost_update.jsonl": "G2",
            }[name]
            assert f"{expected_class} (" in out
            assert "anomaly-free: NO" in out
        else:
            assert "anomaly-free: yes" in out


class TestCheckOperations:
    def test_explicit_aborted_overrides_commit_inference(self):
        ops = history((W, 1, "x"), (R, 2, "x"))
        report = check_operations(ops, commits=[1, 2], aborted=[1])
        assert report.counts == {GClass.G1A: 1}

    def test_no_lifecycle_means_all_committed(self):
        ops = history((W, 1, "x"), (R, 2, "x"))
        report = check_operations(ops)
        assert report.counts == {}
        assert report.anomaly_free

    def test_g1b_needs_a_later_write(self):
        # The read observes the writer's *final* version: not G1b.
        ops = history((W, 1, "x"), (W, 1, "x"), (R, 2, "x"))
        assert GClass.G1B not in check_operations(ops).counts

    def test_long_cycle_beyond_bound_flagged(self):
        # A pure 5-cycle of ww edges: each key written by two BUUs.
        chain = []
        buus = [1, 2, 3, 4, 5]
        keys = ["a", "b", "c", "d", "e"]
        for i, key in enumerate(keys):
            chain.append((W, buus[i], key))
            chain.append((W, buus[(i + 1) % 5], key))
        report = check_operations(history(*chain), max_cycle_length=4)
        assert not report.serializable
        assert report.cycles_beyond_bound
        assert report.counts == {}
        # Raising the bound names it.
        report5 = check_operations(history(*chain), max_cycle_length=5)
        assert report5.counts == {GClass.G0: 1}
        assert not report5.cycles_beyond_bound

    def test_witness_cap_respected(self):
        ops = []
        step = 0
        # Many independent 2-item write skews -> many G-SI witnesses.
        for pair in range(6):
            a, b = 10 * pair, 10 * pair + 1
            x, y = f"x{pair}", f"y{pair}"
            ops += [(R, a, x), (R, b, y), (W, a, y), (W, b, x)]
        report = check_operations(history(*ops), max_witnesses=2)
        assert report.counts[GClass.G_SI] == 6
        assert len(report.witnesses[GClass.G_SI]) == 2

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            check_operations([], max_cycle_length=1)
        with pytest.raises(ValueError):
            check_operations([], max_witnesses=-1)

    def test_exact_counts_equal_full_report_counts(self):
        from tests.histgen import random_history

        hist = random_history(3)
        assert exact_cycle_counts(hist) == check_operations(hist).cycles
