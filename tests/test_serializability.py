"""Tests for the offline serializability checker."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serializability import (
    check_graph,
    check_history,
    witness_is_valid,
)
from repro.graph.dependency import DependencyGraph
from repro.sim import SimConfig, Simulator, read_modify_write
from repro.storage.history import (
    BuuProgram,
    interleaved_history,
    program,
    serial_history,
)


def lost_update_history():
    from repro.core.types import Operation, OpType

    return [
        Operation(OpType.WRITE, 0, "x", 1),
        Operation(OpType.READ, 1, "x", 2),
        Operation(OpType.READ, 2, "x", 3),
        Operation(OpType.WRITE, 1, "x", 4),
        Operation(OpType.WRITE, 2, "x", 5),
    ]


class TestCheckHistory:
    def test_serial_history_serializable(self):
        programs = [program(i, ("r", "x"), ("w", "x")) for i in range(5)]
        ops = serial_history(programs)
        verdict = check_history(ops)
        assert verdict.serializable
        assert verdict
        assert witness_is_valid(ops, verdict.serial_order)

    def test_witness_respects_dependencies(self):
        """In a write chain, the witness order follows the chain."""
        programs = [program(i, ("w", "x")) for i in (3, 1, 2)]
        ops = serial_history(programs)
        verdict = check_history(ops)
        assert verdict.serializable
        # chain 3 -> 1 -> 2 in execution order
        pos = {b: i for i, b in enumerate(verdict.serial_order)}
        assert pos[3] < pos[1] < pos[2]

    def test_lost_update_not_serializable(self):
        verdict = check_history(lost_update_history())
        assert not verdict.serializable
        assert not verdict
        assert verdict.violations
        assert sorted(verdict.violations[0]) == [1, 2]

    def test_conflict_free_buus_in_witness(self):
        programs = [program(1, ("w", "x")), program(2, ("w", "y"))]
        verdict = check_history(serial_history(programs))
        assert set(verdict.serial_order) == {1, 2}

    def test_max_witnesses_cap(self):
        # Many independent lost updates -> many cycles; cap at 2.
        from repro.core.types import Operation, OpType

        ops = []
        seq = 0
        for group in range(5):
            base = group * 10
            key = f"k{group}"
            for op_type, buu in [
                (OpType.WRITE, base), (OpType.READ, base + 1),
                (OpType.READ, base + 2), (OpType.WRITE, base + 1),
                (OpType.WRITE, base + 2),
            ]:
                seq += 1
                ops.append(Operation(op_type, buu, key, seq))
        verdict = check_history(ops, max_witnesses=2)
        assert not verdict.serializable
        assert len(verdict.violations) == 2


class TestCheckGraph:
    def test_acyclic(self):
        graph = DependencyGraph()
        graph.add(1, 2, "x")
        graph.add(2, 3, "x")
        verdict = check_graph(graph)
        assert verdict.serializable
        assert verdict.serial_order == [1, 2, 3]

    def test_cyclic(self):
        graph = DependencyGraph()
        graph.add(1, 2, "x")
        graph.add(2, 1, "y")
        verdict = check_graph(graph)
        assert not verdict.serializable
        assert verdict.violations == [[1, 2]]


class TestAgainstMonitor:
    def test_serializable_execution_checks_clean(self):
        """2PL executions pass the checker."""
        from repro.bench.harness import HistoryRecorder

        rec = HistoryRecorder()
        sim = Simulator(SimConfig(num_workers=8, seed=1,
                                  isolation="serializable"),
                        listeners=[rec])
        sim.run([read_modify_write([f"k{i % 4}"], lambda v: (v or 0) + 1)
                 for i in range(100)])
        verdict = check_history(rec.ops)
        assert verdict.serializable
        assert witness_is_valid(rec.ops, verdict.serial_order)

    def test_chaotic_execution_fails_with_witness(self):
        from repro.bench.harness import HistoryRecorder

        rec = HistoryRecorder()
        sim = Simulator(SimConfig(num_workers=16, seed=1, write_latency=200),
                        listeners=[rec])
        sim.run([read_modify_write([f"k{i % 4}"], lambda v: (v or 0) + 1)
                 for i in range(200)])
        verdict = check_history(rec.ops)
        assert not verdict.serializable
        assert verdict.violations

    @given(st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_property_verdict_consistent_with_cycle_count(self, seed):
        """The checker agrees with the monitor: zero cycles iff
        serializable (for 2-/3-cycles this is one-directional, so use the
        full Johnson check implicitly via the verdict)."""
        rng = random.Random(seed)
        programs = []
        for buu in range(12):
            prog = BuuProgram(buu)
            for _ in range(3):
                key = rng.randrange(4)
                (prog.read if rng.random() < 0.5 else prog.write)(key)
            programs.append(prog)
        ops = interleaved_history(programs, rng)
        verdict = check_history(ops)
        if verdict.serializable:
            assert witness_is_valid(ops, verdict.serial_order)
        else:
            assert verdict.violations
