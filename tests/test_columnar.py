"""Differential tests for the vectorized columnar ingest path.

The contract: feeding :class:`~repro.core.columnar.OpBatch` batches
through ``DataCentricCollector.handle_batch`` /
``CycleDetector.add_edge_batch`` is **bit-identical** to the per-op
protocol — same edges in the same order (raw-key labels), same
counters, same per-item bookkeeping, same RNG end state — at every
sampling rate, with and without MOB.  Without numpy every assertion
still holds because the columnar entry points degrade to ``to_ops()``
(the no-numpy CI leg runs this file unchanged).

Coverage:

- collector differential across sr x mob x batch size (edges, stats,
  RNG state);
- sr=1 bit-exactness of a ``columnar=True`` :class:`RushMon` against
  the per-op monitor *and* the independent exact checker on all three
  paper workloads (smoke subset in tier-1, 20 seeds under ``oracle``);
- sampled-mode unbiasedness: the Theorem 5.2 estimator through the
  columnar MOB kernel lands within 3 sigma of the checker's exact
  counts over independent sampler seeds;
- hypothesis round-trip ``OpBatch.from_ops(ops).to_ops() == ops`` over
  shrinkable interleavings;
- the codec-2 wire splitter ``OpBatch.from_wire`` (ops + lifecycle,
  frame key table interned once);
- cluster routing: ``ClusterMonitor.on_operations(OpBatch)`` produces
  the same merged counts/report as per-op record routing.
"""

from __future__ import annotations

import statistics

import pytest
from hypothesis import given

from repro.checkers import exact_cycle_counts
from repro.core.collector import DataCentricCollector
from repro.core.columnar import HAVE_NUMPY, EdgeBatch, OpBatch
from repro.core.config import RushMonConfig
from repro.core.detector import CycleDetector
from repro.core.monitor import RushMon
from repro.core.types import KeyInterner, Operation, OpType
from repro.net import protocol

from tests.histgen import feed_with_lifecycle, random_history
from tests.strategies import interleavings
from tests.test_batch_equivalence import _chunks, _rng_states
from tests.test_checkers_differential import (
    WORKLOADS,
    monitor_counts,
    workload_history,
)

COLUMNAR_SMOKE_SEEDS = (0, 7, 13)
COLUMNAR_FULL_SEEDS = range(20)


def _edges(result):
    """Normalize a ``handle_batch`` result (list of ``Edge`` or an
    :class:`EdgeBatch`) to raw-key ``Edge`` objects."""
    return result.to_edges() if isinstance(result, EdgeBatch) else result


# -- collector: OpBatch ingest == per-op ingest, bit for bit -----------------


@pytest.mark.parametrize("mob", [False, True])
@pytest.mark.parametrize("sr", (1, 2, 8))
@pytest.mark.parametrize("batch", (1, 7, 256))
def test_collector_columnar_bit_identical(mob, sr, batch):
    for seed in range(12):
        history = random_history(seed)
        per_op = DataCentricCollector(sampling_rate=sr, mob=mob, seed=0)
        columnar = DataCentricCollector(sampling_rate=sr, mob=mob, seed=0)
        interner = KeyInterner()
        edges_a: list = []
        edges_b: list = []
        for chunk in _chunks(history, batch):
            edges_a.extend(per_op.handle_batch(chunk))
            edges_b.extend(_edges(columnar.handle_batch(
                OpBatch.from_ops(chunk, interner))))
        assert edges_a == edges_b
        assert per_op.stats == columnar.stats
        assert per_op.touches == columnar.touches
        assert per_op.ops_seen == columnar.ops_seen
        assert per_op.total_reads == columnar.total_reads
        assert per_op.discarded_reads == columnar.discarded_reads
        assert _rng_states(per_op) == _rng_states(columnar)


def test_edge_batch_kind_tallies_match_rows():
    history = random_history(4)
    columnar = DataCentricCollector(sampling_rate=1, mob=True, seed=0)
    result = columnar.handle_batch(OpBatch.from_ops(history))
    edges = _edges(result)
    if isinstance(result, EdgeBatch):
        from repro.core.types import EdgeType

        assert result.wr == sum(e.kind is EdgeType.WR for e in edges)
        assert result.ww == sum(e.kind is EdgeType.WW for e in edges)
        assert result.rw == sum(e.kind is EdgeType.RW for e in edges)
        assert len(result) == len(edges)
        assert result.tuple_rows() == [tuple(e) for e in edges]


def test_detector_accepts_edge_batch_like_edge_list():
    for seed in range(6):
        history = random_history(seed)
        col = DataCentricCollector(sampling_rate=1, mob=True, seed=0)
        batch = col.handle_batch(OpBatch.from_ops(history))
        det_a = CycleDetector()
        det_b = CycleDetector()
        det_a.add_edge_batch(_edges(batch))
        det_b.add_edge_batch(batch)
        assert det_a.counts == det_b.counts
        assert det_a.patterns.counts == det_b.patterns.counts
        assert det_a.graph.labels == det_b.graph.labels
        assert det_a.graph.edge_count == det_b.graph.edge_count


# -- monitor: columnar config vs per-op monitor vs exact checker -------------


def _columnar_monitor(history, *, sampling_rate=1, mob=False, seed=0,
                      batch=256):
    monitor = RushMon(RushMonConfig(sampling_rate=sampling_rate, mob=mob,
                                    seed=seed, columnar=True))
    _feed_batched(monitor, history, batch)
    return monitor


def _feed_batched(monitor, history, batch):
    """Deliver lifecycle per-BUU plus operations in ``batch``-sized
    ``on_operations`` calls (flushing before each lifecycle event, so
    detector ordering matches the per-op feed)."""
    last_index = {op.buu: i for i, op in enumerate(history)}
    begun: set = set()
    buf: list = []

    def flush():
        while buf:
            monitor.on_operations(buf[:batch])
            del buf[:batch]

    for i, op in enumerate(history):
        if op.buu not in begun:
            flush()
            begun.add(op.buu)
            monitor.begin_buu(op.buu, op.seq)
        buf.append(op)
        if last_index[op.buu] == i:
            flush()
            monitor.commit_buu(op.buu, op.seq)
    flush()


def _assert_columnar_bit_exact(history):
    exact = exact_cycle_counts(history)
    per_op = monitor_counts(history)
    columnar = _columnar_monitor(history)
    assert columnar.detector.counts == per_op.detector.counts == exact
    assert columnar.cumulative_estimates() == per_op.cumulative_estimates()
    assert columnar.collector.stats == per_op.collector.stats


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("seed", COLUMNAR_SMOKE_SEEDS)
def test_sr1_columnar_bit_exact_smoke(workload, seed):
    """Tier-1 subset of the sweep (the oracle job runs all 20 seeds)."""
    _assert_columnar_bit_exact(workload_history(workload, seed))


@pytest.mark.oracle
@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("seed", COLUMNAR_FULL_SEEDS)
def test_sr1_columnar_bit_exact_full_sweep(workload, seed):
    """The acceptance sweep: all three paper workloads x 20 seeds, the
    columnar monitor's sr=1 counts equal the per-op monitor's and the
    independent exact checker's."""
    _assert_columnar_bit_exact(workload_history(workload, seed))


@pytest.mark.oracle
@pytest.mark.parametrize("sr", [2, 4])
def test_columnar_estimator_unbiased_against_checker(sr):
    """Theorem 5.2 through the columnar full-bookkeeping kernel: over
    independent sampler seeds the estimate's mean lands within 3
    standard errors of the exact checker's 2-/3-cycle counts.  Like the
    per-op unbiasedness test this runs ``mob=False`` — the MOB
    reservoir's rw discard correction is approximate by design, and the
    columnar MOB kernel is covered by bit-exactness against the per-op
    MOB path instead."""
    history = random_history(5, num_buus=140, num_keys=8, ops_per_buu=5)
    exact = exact_cycle_counts(history)
    assert exact.two_cycles > 0 and exact.three_cycles > 0
    trials = 150
    e2s, e3s = [], []
    for trial in range(trials):
        monitor = _columnar_monitor(history, sampling_rate=sr, mob=False,
                                    seed=trial, batch=128)
        e2, e3 = monitor.cumulative_estimates()
        e2s.append(e2)
        e3s.append(e3)
    for estimates, truth in ((e2s, exact.two_cycles),
                             (e3s, exact.three_cycles)):
        mean = statistics.fmean(estimates)
        stderr = statistics.stdev(estimates) / trials ** 0.5
        assert abs(mean - truth) <= 3 * max(stderr, 1e-9), (
            f"sr={sr}: mean {mean:.2f} vs exact {truth} "
            f"(stderr {stderr:.3f})"
        )


def test_sampled_columnar_matches_sampled_per_op():
    """Cheap tier-1 stand-in for the statistical sweep: at sr=4 the
    columnar monitor is *bit-exact* against the per-op monitor (the
    sampler is a pure function of the key and the MOB RNG draw order is
    preserved), so unbiasedness transfers from the per-op proofs."""
    for seed in range(6):
        history = random_history(seed)
        per_op = monitor_counts(history, sampling_rate=4, mob=True,
                                seed=seed)
        columnar = _columnar_monitor(history, sampling_rate=4, mob=True,
                                     seed=seed, batch=64)
        assert columnar.detector.counts == per_op.detector.counts
        assert columnar.cumulative_estimates() == \
            per_op.cumulative_estimates()


# -- round trips -------------------------------------------------------------


@given(history=interleavings(max_buus=5, max_steps=4, max_keys=3))
def test_opbatch_roundtrip_is_identity(history):
    assert OpBatch.from_ops(history).to_ops() == history


def test_opbatch_from_events_matches_from_ops():
    history = random_history(9)
    records = protocol.encode_events(history)
    a = OpBatch.from_ops(history)
    b = OpBatch.from_events(records)
    assert a.to_ops() == b.to_ops() == history
    assert a.max_seq() == b.max_seq() == max(op.seq for op in history)


def test_opbatch_from_wire_splits_ops_and_lifecycle():
    """The codec-2 server path: a packed frame with interleaved
    lifecycle rows splits into an op batch (global kids through the
    shared interner) plus lifecycle tuples in frame order."""
    ops = [Operation(OpType.WRITE, 1, "k1", 2),
           Operation(OpType.READ, 2, "k2", 3),
           Operation(OpType.WRITE, 2, "k1", 5)]
    records = [protocol.wire_begin(1, 1), protocol.wire_op(ops[0]),
               protocol.wire_begin(2, 2), protocol.wire_op(ops[1]),
               protocol.wire_op(ops[2]), protocol.wire_commit(1, 6),
               protocol.wire_commit(2, 7)]
    wire = protocol.encode_frame(protocol.batch("s", 1, records),
                                 protocol.CODEC_COLUMNAR)
    (message,) = protocol.FrameReader().feed(wire)
    events = message["events"]
    assert isinstance(events, protocol.ColumnarEvents)
    interner = KeyInterner()
    interner.intern("already-there")  # global ids != frame indices
    batch, lifecycle = OpBatch.from_wire(events, interner)
    assert batch.to_ops() == ops
    assert batch.interner is interner
    assert lifecycle == [("b", 1, 1), ("b", 2, 2), ("c", 1, 6), ("c", 2, 7)]
    assert batch.max_seq() == 5

    # An all-op frame takes the no-mask fast path.
    wire = protocol.encode_frame(
        protocol.batch("s", 2, protocol.encode_events(ops)),
        protocol.CODEC_COLUMNAR)
    (message,) = protocol.FrameReader().feed(wire)
    batch, lifecycle = OpBatch.from_wire(message["events"], interner)
    assert batch.to_ops() == ops
    assert lifecycle == []


# -- cluster routing ---------------------------------------------------------


@pytest.mark.cluster
def test_cluster_op_batch_routing_matches_per_op():
    """``on_operations(OpBatch)`` routes through the per-kid owner
    cache; merged counts, estimates and the window report must equal
    per-op record routing exactly."""
    from repro.cluster import ClusterMonitor

    history = random_history(3, num_buus=90, num_keys=16)
    config = RushMonConfig(sampling_rate=1, mob=False, num_workers=2)
    with ClusterMonitor(config) as per_op:
        feed_with_lifecycle([per_op], history)
        with ClusterMonitor(config) as columnar:
            interner = KeyInterner()
            last_index = {op.buu: i for i, op in enumerate(history)}
            begun: set = set()
            buf: list = []

            def flush():
                if buf:
                    columnar.on_operations(OpBatch.from_ops(buf, interner))
                    buf.clear()

            for i, op in enumerate(history):
                if op.buu not in begun:
                    flush()
                    begun.add(op.buu)
                    columnar.begin_buu(op.buu, op.seq)
                buf.append(op)
                if len(buf) >= 64:
                    flush()
                if last_index[op.buu] == i:
                    flush()
                    columnar.commit_buu(op.buu, op.seq)
            flush()
            assert columnar.counts() == per_op.counts()
            assert columnar.cumulative_estimates() == \
                per_op.cumulative_estimates()
            assert columnar.ops_routed == per_op.ops_routed
            assert columnar.close_window() == per_op.close_window()


# -- checker: columnar grouping == dict-of-lists grouping --------------------


def test_checker_columnar_grouping_matches_python(monkeypatch):
    """`derive_dependency_edges` routes grouping through the columnar
    builder when numpy is present; edges, stats and observations must
    be element-for-element identical to the pure-python layout (the
    golden-corpus suites assert the counts stay put on real traces)."""
    from repro.checkers import checker

    for seed in range(10):
        history = random_history(seed)
        got = checker.derive_dependency_edges(history)
        with monkeypatch.context() as m:
            m.setattr(checker, "_columnar_key_groups", lambda ops: None)
            want = checker.derive_dependency_edges(history)
        assert got == want


def test_checker_falls_back_on_uncolumnable_history():
    """Non-integer BUUs don't fit int64 columns; the checker must keep
    the pure-python layout instead of failing."""
    from repro.checkers import checker

    ops = [Operation(OpType.WRITE, "t1", "k", 1),
           Operation(OpType.READ, "t2", "k", 2),
           Operation(OpType.WRITE, "t3", "k", 3)]
    edges, stats, observations = checker.derive_dependency_edges(ops)
    assert stats.wr == 1 and stats.rw == 1
    assert [(e.src, e.dst) for e in edges] == [("t1", "t2"), ("t2", "t3")]
    assert len(observations) == 1


# -- fallback sanity ---------------------------------------------------------


def test_opbatch_columns_are_lists_without_numpy():
    batch = OpBatch.from_ops(random_history(1))
    if HAVE_NUMPY:
        assert not isinstance(batch.op, list)
    else:
        assert isinstance(batch.op, list)
        assert isinstance(batch.kid, list)
