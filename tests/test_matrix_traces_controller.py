"""Tests for matrix cycle counting, trace persistence, and the controller."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.controller import AnomalyController, DEFAULT_LADDER
from repro.core.monitor import OfflineAnomalyMonitor, RushMon
from repro.core.config import RushMonConfig
from repro.core.types import AnomalyReport
from repro.graph.dependency import DependencyGraph
from repro.graph.cycles import count_simple_cycles_by_length
from repro.graph.matrix import (
    adjacency_matrix,
    count_k_cycle_closed_walks,
    count_three_cycles_matrix,
    count_two_cycles_matrix,
)
from repro.sim import SimConfig, Simulator, read_modify_write
from repro.sim.traces import Trace, TraceWriter


def random_digraph(num_vertices, num_edges, seed):
    rng = random.Random(seed)
    graph = DependencyGraph()
    for v in range(num_vertices):
        graph.add_vertex(v)
    for _ in range(num_edges):
        graph.add(rng.randrange(num_vertices), rng.randrange(num_vertices),
                  label=rng.randrange(3))
    return graph


class TestMatrixCounting:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_dfs_counter(self, seed):
        graph = random_digraph(12, 40, seed)
        by_len = count_simple_cycles_by_length(graph, max_length=3)
        assert count_two_cycles_matrix(graph) == by_len[2]
        assert count_three_cycles_matrix(graph) == by_len[3]

    def test_empty_graph(self):
        graph = DependencyGraph()
        assert count_two_cycles_matrix(graph) == 0
        assert count_three_cycles_matrix(graph) == 0

    def test_adjacency_ignores_parallel_labels(self):
        graph = DependencyGraph()
        graph.add(1, 2, "x")
        graph.add(1, 2, "y")
        matrix, vertices = adjacency_matrix(graph)
        assert matrix.sum() == 1
        assert vertices == [1, 2]

    def test_closed_walks_dominate_simple_cycles(self):
        """trace(A^k) counts non-simple cycles too — the §3 explosion."""
        graph = random_digraph(8, 30, seed=1)
        walks4 = count_k_cycle_closed_walks(graph, 4)
        simple4 = count_simple_cycles_by_length(graph, max_length=4)[4]
        assert walks4 >= simple4

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            count_k_cycle_closed_walks(DependencyGraph(), 0)

    @given(st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_property_matrix_equals_dfs(self, seed):
        graph = random_digraph(9, 25, seed)
        by_len = count_simple_cycles_by_length(graph, max_length=3)
        assert count_two_cycles_matrix(graph) == by_len[2]
        assert count_three_cycles_matrix(graph) == by_len[3]


class TestTraces:
    def _record(self, tmp_path):
        trace = Trace()
        sim = Simulator(SimConfig(num_workers=4, seed=2, write_latency=30),
                        listeners=[trace])
        sim.run([read_modify_write([f"k{i % 4}"], lambda v: (v or 0) + 1)
                 for i in range(60)])
        return trace

    def test_roundtrip(self, tmp_path):
        trace = self._record(tmp_path)
        path = tmp_path / "run.jsonl"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.ops == trace.ops
        assert sorted(loaded.begins) == sorted(trace.begins)
        assert sorted(loaded.commits) == sorted(trace.commits)

    def test_replay_matches_live_monitoring(self, tmp_path):
        trace = self._record(tmp_path)
        live = OfflineAnomalyMonitor()
        for op in trace.ops:
            live.on_operation(op)

        replayed = OfflineAnomalyMonitor()
        trace.replay([replayed])
        assert replayed.exact_counts() == live.exact_counts()

    def test_replay_drives_rushmon_with_pruning(self, tmp_path):
        trace = self._record(tmp_path)
        mon = RushMon(RushMonConfig(sampling_rate=1, mob=False,
                                    pruning="both", prune_interval=20))
        trace.replay([mon])
        offline = OfflineAnomalyMonitor()
        offline.on_operations(trace.ops)
        e2, e3 = mon.cumulative_estimates()
        exact = offline.exact_counts()
        assert e2 == exact.two_cycles
        assert e3 == exact.three_cycles

    def test_streaming_writer(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with open(path, "w") as handle:
            writer = TraceWriter(handle)
            sim = Simulator(SimConfig(num_workers=2, seed=0),
                            listeners=[writer])
            sim.run([read_modify_write(["x"], lambda v: (v or 0) + 1)
                     for _ in range(5)])
        loaded = Trace.load(path)
        assert len(loaded.ops) == 10  # 5 reads + 5 writes
        assert len(loaded.begins) == 5
        assert len(loaded.commits) == 5

    def test_load_rejects_unknown_records(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": "mystery"}\n')
        with pytest.raises(ValueError):
            Trace.load(path)


def report(rate, window=100):
    return AnomalyReport(window_start=0, window_end=window,
                         estimated_2=rate * window, estimated_3=0.0)


class TestAnomalyController:
    def test_starts_loose(self):
        controller = AnomalyController(upper=1.0, lower=0.1)
        assert controller.bound is None

    def test_tightens_on_high_rate(self):
        controller = AnomalyController(upper=1.0, lower=0.1)
        decision = controller.observe(report(rate=5.0))
        assert decision.action == "tighten"
        assert controller.bound == DEFAULT_LADDER[-2]

    def test_relaxes_on_low_rate(self):
        controller = AnomalyController(upper=1.0, lower=0.1,
                                       start_position=0)
        decision = controller.observe(report(rate=0.0))
        assert decision.action == "relax"
        assert controller.bound == DEFAULT_LADDER[1]

    def test_holds_inside_band(self):
        controller = AnomalyController(upper=1.0, lower=0.1)
        assert controller.observe(report(rate=0.5)).action == "hold"

    def test_saturates_at_ladder_ends(self):
        controller = AnomalyController(upper=1.0, lower=0.1,
                                       start_position=0)
        assert controller.observe(report(rate=99.0)).action == "hold"
        loose = AnomalyController(upper=1.0, lower=0.1)
        assert loose.observe(report(rate=0.0)).action == "hold"

    def test_cooldown_blocks_consecutive_moves(self):
        controller = AnomalyController(upper=1.0, lower=0.1, cooldown=2)
        assert controller.observe_rate(5.0).action == "tighten"
        assert controller.observe_rate(5.0).action == "hold"
        assert controller.observe_rate(5.0).action == "hold"
        assert controller.observe_rate(5.0).action == "tighten"

    def test_history_recorded(self):
        controller = AnomalyController(upper=1.0, lower=0.1)
        controller.observe_rate(5.0)
        controller.observe_rate(0.5)
        assert [d.action for d in controller.history] == ["tighten", "hold"]

    def test_validation(self):
        with pytest.raises(ValueError):
            AnomalyController(upper=0.1, lower=1.0)
        with pytest.raises(ValueError):
            AnomalyController(upper=1.0, lower=0.1, ladder=())
        with pytest.raises(ValueError):
            AnomalyController(upper=1.0, lower=0.1, start_position=99)
        with pytest.raises(ValueError):
            AnomalyController(upper=1.0, lower=0.1, cooldown=-1)

    def test_closed_loop_converges_to_tight_bound(self):
        """End to end: the controller drives a chaotic system into the
        target band by tightening the staleness bound."""
        from repro.sim import SimConfig, Simulator, read_modify_write

        monitor = RushMon(RushMonConfig(sampling_rate=1, mob=False))
        sim = Simulator(SimConfig(num_workers=16, seed=3, write_latency=600,
                                  compute_jitter=10),
                        listeners=[monitor])
        controller = AnomalyController(upper=0.05, lower=0.002)
        rng = random.Random(1)
        for _ in range(12):
            sim.config.staleness_bound = controller.bound
            sim.run([read_modify_write(
                [f"k{k}" for k in rng.sample(range(40), 3)],
                lambda v: (v or 0) + 1) for _ in range(150)])
            controller.observe(monitor.close_window(sim.now))
        tightened = sum(1 for d in controller.history if d.action == "tighten")
        assert tightened >= 1
