"""Tests for the three collectors (Algorithm 1, ES, Algorithm 2/DCS)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.collector import (
    BaselineCollector,
    DataCentricCollector,
    EdgeSamplingCollector,
    ItemSampler,
)
from repro.core.types import Edge, EdgeType, Operation, OpType


def ops_from(spec):
    """Build operations from ("r"|"w", buu, key) triples."""
    out = []
    for seq, (kind, buu, key) in enumerate(spec, start=1):
        op_type = OpType.READ if kind == "r" else OpType.WRITE
        out.append(Operation(op_type, buu, key, seq))
    return out


#: The Figure 5(a) history: three BUUs over items x, y, z.
FIG5_HISTORY = ops_from(
    [
        ("w", 1, "x"),
        ("r", 2, "x"),
        ("w", 2, "y"),
        ("w", 3, "y"),
        ("w", 3, "x"),
        ("r", 1, "x"),
        ("r", 2, "y"),
        ("w", 2, "z"),
        ("w", 2, "y"),
        ("w", 1, "z"),
    ]
)


def edge_triples(edges):
    return sorted((e.src, e.dst, e.kind.value, e.label) for e in edges)


class TestBaselineCollector:
    def test_fig5_history(self):
        """Algorithm 1 applied to the paper's Figure 5(a) example.

        Derived by hand from the pseudocode; note the paper's simplified
        figure omits the rw(x) edge from T2 to T3 that Algorithm 1
        produces (r2(x) is overwritten by w3(x)).
        """
        collector = BaselineCollector()
        edges = collector.handle_all(FIG5_HISTORY)
        assert edge_triples(edges) == sorted(
            [
                (1, 2, "wr", "x"),  # r2(x) reads w1(x)
                (2, 3, "ww", "y"),  # w3(y) overwrites w2(y), no readers
                (2, 3, "rw", "x"),  # w3(x) overwrites r2(x)'s read
                (3, 1, "wr", "x"),  # r1(x) reads w3(x)
                (3, 2, "wr", "y"),  # r2(y) reads w3(y)
                (2, 1, "ww", "z"),  # w1(z) overwrites w2(z), no readers
            ]
        )

    def test_wr_edge_requires_previous_write(self):
        collector = BaselineCollector()
        assert collector.handle_all(ops_from([("r", 1, "x")])) == []

    def test_self_edges_suppressed(self):
        collector = BaselineCollector()
        edges = collector.handle_all(
            ops_from([("w", 1, "x"), ("r", 1, "x"), ("w", 1, "x")])
        )
        assert edges == []

    def test_lost_update_pattern(self):
        """r1 r2 w1 w2 on one item: the classic lost-update 2-cycle."""
        collector = BaselineCollector()
        edges = collector.handle_all(
            ops_from(
                [("w", 0, "x"), ("r", 1, "x"), ("r", 2, "x"),
                 ("w", 1, "x"), ("w", 2, "x")]
            )
        )
        triples = edge_triples(edges)
        # w1's rw edges fire for readers {1, 2}; the self-edge 1->1 is
        # suppressed, so only 2->1 rw.  w1 clears readIDs, so w2 then sees
        # an empty reader set and emits ww 1->2 — completing the 2-cycle.
        assert (2, 1, "rw", "x") in triples
        assert (1, 2, "ww", "x") in triples

    def test_lost_update_forms_two_cycle(self):
        collector = BaselineCollector()
        edges = collector.handle_all(
            ops_from(
                [("w", 0, "x"), ("r", 1, "x"), ("r", 2, "x"),
                 ("w", 1, "x"), ("w", 2, "x")]
            )
        )
        triples = {(e.src, e.dst) for e in edges}
        assert (2, 1) in triples and (1, 2) in triples

    def test_ww_chain(self):
        collector = BaselineCollector()
        edges = collector.handle_all(
            ops_from([("w", 1, "x"), ("w", 2, "x"), ("w", 3, "x")])
        )
        assert edge_triples(edges) == [
            (1, 2, "ww", "x"),
            (2, 3, "ww", "x"),
        ]

    def test_multiple_readers_fan_in(self):
        collector = BaselineCollector()
        edges = collector.handle_all(
            ops_from(
                [("w", 1, "x"), ("r", 2, "x"), ("r", 3, "x"), ("r", 4, "x"),
                 ("w", 5, "x")]
            )
        )
        rw = sorted((e.src, e.dst) for e in edges if e.kind is EdgeType.RW)
        assert rw == [(2, 5), (3, 5), (4, 5)]

    def test_edge_stats(self):
        collector = BaselineCollector()
        collector.handle_all(FIG5_HISTORY)
        assert collector.stats.as_dict() == {"wr": 3, "ww": 2, "rw": 1}

    def test_touches_counts_all_ops(self):
        collector = BaselineCollector()
        collector.handle_all(FIG5_HISTORY)
        assert collector.touches == len(FIG5_HISTORY)


class TestEdgeSamplingCollector:
    def test_rate_one_equals_baseline(self):
        baseline = BaselineCollector()
        es = EdgeSamplingCollector(sampling_rate=1)
        assert edge_triples(es.handle_all(FIG5_HISTORY)) == edge_triples(
            baseline.handle_all(FIG5_HISTORY)
        )

    def test_bookkeeping_cost_unchanged(self):
        """The §4.2 point: ES pays full bookkeeping regardless of rate."""
        es = EdgeSamplingCollector(sampling_rate=100)
        es.handle_all(FIG5_HISTORY)
        assert es.touches == len(FIG5_HISTORY)

    def test_samples_subset_of_baseline(self):
        history = _random_history(seed=3, n=500, buus=20, keys=10)
        baseline = set(edge_triples(BaselineCollector().handle_all(history)))
        es = EdgeSamplingCollector(sampling_rate=5, rng=random.Random(1))
        sampled = edge_triples(es.handle_all(history))
        assert set(sampled) <= baseline
        assert 0 < len(sampled) < len(baseline)

    def test_sampling_rate_controls_fraction(self):
        history = _random_history(seed=5, n=4000, buus=100, keys=20)
        full = len(BaselineCollector().handle_all(history))
        es = EdgeSamplingCollector(sampling_rate=4, rng=random.Random(2))
        kept = len(es.handle_all(history))
        assert kept == pytest.approx(full / 4, rel=0.3)

    def test_stats_reflect_post_sampling(self):
        history = _random_history(seed=5, n=2000, buus=50, keys=10)
        es = EdgeSamplingCollector(sampling_rate=10, rng=random.Random(0))
        kept = es.handle_all(history)
        assert es.stats.total == len(kept)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            EdgeSamplingCollector(sampling_rate=0)


class TestItemSampler:
    def test_rate_one_chooses_all(self):
        sampler = ItemSampler(1)
        assert all(sampler.chosen(k) for k in range(100))

    def test_materialized_sample_size(self):
        sampler = ItemSampler(10)
        sampler.materialize(range(5000))
        chosen = sum(sampler.chosen(k) for k in range(5000))
        assert chosen == pytest.approx(500, rel=0.15)

    def test_materialized_inclusion_independent(self):
        """Pairwise joint inclusion ~ p^2 (no fixed-size correlation)."""
        trials, hits = 2000, 0
        for seed in range(trials):
            sampler = ItemSampler(2, seed=seed)
            sampler.materialize(range(10))
            if sampler.chosen(0) and sampler.chosen(1):
                hits += 1
        assert hits / trials == pytest.approx(0.25, abs=0.03)

    def test_hash_inclusion_independent(self):
        trials, hits = 2000, 0
        for seed in range(trials):
            sampler = ItemSampler(2, seed=seed)
            if sampler.chosen(0) and sampler.chosen(1):
                hits += 1
        assert hits / trials == pytest.approx(0.25, abs=0.03)

    def test_hash_sampling_fraction(self):
        sampler = ItemSampler(5, seed=42)
        chosen = sum(sampler.chosen(k) for k in range(5000))
        assert chosen == pytest.approx(1000, rel=0.15)

    def test_deterministic(self):
        a = ItemSampler(7, seed=1)
        b = ItemSampler(7, seed=1)
        assert [a.chosen(k) for k in range(200)] == [b.chosen(k) for k in range(200)]

    def test_reseed_changes_sample(self):
        sampler = ItemSampler(5, seed=1)
        before = {k for k in range(500) if sampler.chosen(k)}
        sampler.reseed(999)
        after = {k for k in range(500) if sampler.chosen(k)}
        assert before != after

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ItemSampler(0)


class TestDataCentricCollector:
    def test_rate_one_no_mob_equals_baseline(self):
        history = _random_history(seed=11, n=1000, buus=30, keys=8)
        baseline = BaselineCollector()
        dcs = DataCentricCollector(sampling_rate=1, mob=False)
        assert edge_triples(dcs.handle_all(history)) == edge_triples(
            baseline.handle_all(history)
        )

    def test_fig5_sampled_items(self):
        """Example 5.1: with x and z chosen, only x/z edges are issued."""
        dcs = DataCentricCollector(sampling_rate=2, mob=False, items=["x", "z"])
        dcs.sampler._chosen = {"x", "z"}  # pin the paper's exact choice
        edges = dcs.handle_all(FIG5_HISTORY)
        assert edge_triples(edges) == sorted(
            [
                (1, 2, "wr", "x"),
                (2, 3, "rw", "x"),
                (3, 1, "wr", "x"),
                (2, 1, "ww", "z"),
            ]
        )

    def test_unchosen_items_pay_no_bookkeeping(self):
        dcs = DataCentricCollector(sampling_rate=2, mob=False, items=["x", "z"])
        dcs.sampler._chosen = {"x"}
        dcs.handle_all(FIG5_HISTORY)
        # Only the 4 x-operations touch bookkeeping.
        assert dcs.touches == 4

    def test_mob_equals_full_when_single_reader(self):
        """rwrw interleavings (the ML pattern) lose nothing under MOB."""
        spec = []
        for i in range(1, 40):
            spec.append(("r", i, "x"))
            spec.append(("w", i, "x"))
        history = ops_from(spec)
        full = DataCentricCollector(sampling_rate=1, mob=False)
        mob = DataCentricCollector(sampling_rate=1, mob=True)
        assert edge_triples(mob.handle_all(history)) == edge_triples(
            full.handle_all(history)
        )
        assert mob.discard_ratio == 0.0

    def test_mob_keeps_one_rw_edge_per_write(self):
        history = ops_from(
            [("w", 0, "x"), ("r", 1, "x"), ("r", 2, "x"), ("r", 3, "x"),
             ("w", 4, "x")]
        )
        mob = DataCentricCollector(sampling_rate=1, mob=True, seed=3,
                                   mob_slots=1)
        edges = mob.handle_all(history)
        rw = [e for e in edges if e.kind is EdgeType.RW]
        assert len(rw) == 1
        assert rw[0].src in {1, 2, 3} and rw[0].dst == 4
        assert mob.discarded_reads == 2

    def test_mob_reservoir_uniform(self):
        """The surviving reader is uniform among the readers (Vitter)."""
        winners = {1: 0, 2: 0, 3: 0}
        trials = 3000
        for seed in range(trials):
            history = ops_from(
                [("w", 0, "x"), ("r", 1, "x"), ("r", 2, "x"), ("r", 3, "x"),
                 ("w", 4, "x")]
            )
            mob = DataCentricCollector(sampling_rate=1, mob=True, seed=seed,
                                       mob_slots=1)
            edges = mob.handle_all(history)
            rw = [e for e in edges if e.kind is EdgeType.RW]
            winners[rw[0].src] += 1
        for count in winners.values():
            assert count == pytest.approx(trials / 3, rel=0.15)

    def test_ww_calibration_discards(self):
        """Once reads are being discarded, ww edges thin at the same ratio."""
        spec = [("w", 0, "x")]
        # Phase 1: many multi-reader groups to drive the discard ratio up.
        buu = 1
        for _ in range(200):
            for _ in range(4):
                spec.append(("r", buu, "x"))
                buu += 1
            spec.append(("w", buu, "x"))
            buu += 1
        # Phase 2: many pure ww pairs.
        ww_writes = 400
        for _ in range(ww_writes):
            spec.append(("w", buu, "x"))
            buu += 1
        mob = DataCentricCollector(sampling_rate=1, mob=True, seed=7)
        edges = mob.handle_all(ops_from(spec))
        ww = sum(1 for e in edges if e.kind is EdgeType.WW)
        # 2 of every 4 reads are discarded (default 2-slot array), so the
        # discard ratio converges to 1/2 and ~1/2 of ww edges survive.
        assert ww == pytest.approx(ww_writes * 0.5, rel=0.3)

    def test_resampling_switches_items(self):
        dcs = DataCentricCollector(
            sampling_rate=2, mob=False, seed=1, resample_interval=100
        )
        epoch0 = {k for k in range(100) if dcs.sampler.chosen(k)}
        dcs.handle_all(_random_history(seed=1, n=150, buus=10, keys=20))
        epoch1 = {k for k in range(100) if dcs.sampler.chosen(k)}
        assert epoch0 != epoch1

    def test_resampling_resets_state(self):
        dcs = DataCentricCollector(
            sampling_rate=1, mob=False, seed=1, resample_interval=3
        )
        # The switch after op 3 forgets lastWrite, so the read at op 4
        # produces no wr edge (the §5.1 warm-up phase).
        history = ops_from(
            [("w", 1, "x"), ("r", 2, "x"), ("w", 3, "x"), ("r", 4, "x")]
        )
        edges = dcs.handle_all(history)
        kinds = [(e.src, e.dst, e.kind.value) for e in edges]
        assert (1, 2, "wr") in kinds
        assert all(dst != 4 for _, dst, _ in kinds)


@given(st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_property_dcs_edges_subset_of_baseline(seed):
    """Every DCS edge (any rate, no MOB) exists in the baseline stream."""
    history = _random_history(seed=seed, n=300, buus=20, keys=12)
    baseline = set(edge_triples(BaselineCollector().handle_all(history)))
    dcs = DataCentricCollector(sampling_rate=3, mob=False, seed=seed)
    assert set(edge_triples(dcs.handle_all(history))) <= baseline


@given(st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_property_dcs_keeps_all_edges_on_chosen_items(seed):
    """Data-centric sampling is all-or-nothing per item."""
    history = _random_history(seed=seed, n=300, buus=20, keys=12)
    baseline = BaselineCollector().handle_all(history)
    dcs = DataCentricCollector(sampling_rate=3, mob=False, seed=seed)
    sampled = set(edge_triples(dcs.handle_all(history)))
    chosen_labels = {k for k in range(12) if dcs.sampler.chosen(k)}
    expected = {
        t for t in edge_triples(baseline) if t[3] in chosen_labels
    }
    assert sampled == expected


def _random_history(seed, n, buus, keys):
    rng = random.Random(seed)
    spec = []
    for _ in range(n):
        kind = "r" if rng.random() < 0.5 else "w"
        spec.append((kind, rng.randrange(buus), rng.randrange(keys)))
    return ops_from(spec)
