"""Tests for history builders and the Theorem B.1 property."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import OpType
from repro.storage.history import (
    BuuProgram,
    count_consecutive_write_pairs,
    interleaved_history,
    lifecycle_bounds,
    program,
    random_rw_permutation,
    serial_history,
)


class TestBuilders:
    def test_program_shorthand(self):
        prog = program(3, ("r", "x"), ("w", "y"))
        assert prog.buu == 3
        assert prog.steps == [(OpType.READ, "x"), (OpType.WRITE, "y")]

    def test_program_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            program(1, ("q", "x"))

    def test_serial_history_order(self):
        programs = [program(1, ("r", "x")), program(2, ("w", "x"))]
        ops = serial_history(programs)
        assert [op.buu for op in ops] == [1, 2]
        assert [op.seq for op in ops] == [1, 2]

    def test_interleaved_preserves_program_order(self):
        prog = BuuProgram(1)
        for i in range(10):
            prog.read(i)
        ops = interleaved_history([prog, program(2, ("w", "a"), ("w", "b"))],
                                  random.Random(0))
        mine = [op.key for op in ops if op.buu == 1]
        assert mine == list(range(10))

    def test_interleaved_contains_all_ops(self):
        programs = [program(i, ("r", "x"), ("w", "x")) for i in range(5)]
        ops = interleaved_history(programs, random.Random(1))
        assert len(ops) == 10
        assert sorted({op.buu for op in ops}) == list(range(5))

    @given(st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_property_interleaving_seqs_strictly_increase(self, seed):
        programs = [program(i, ("r", "x"), ("w", "y"), ("w", "x"))
                    for i in range(6)]
        ops = interleaved_history(programs, random.Random(seed))
        seqs = [op.seq for op in ops]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_lifecycle_bounds(self):
        programs = [program(1, ("r", "x"), ("w", "x")), program(2, ("w", "y"))]
        ops = serial_history(programs)
        bounds = lifecycle_bounds(ops)
        assert bounds[1] == (1, 2)
        assert bounds[2] == (3, 3)


class TestTheoremB1:
    """E[#adjacent write-write pairs] = (n-1)/2 for n reads, n writes."""

    def test_counting(self):
        ops = random_rw_permutation(0, 4, random.Random(0))
        assert count_consecutive_write_pairs(ops) == 3

    def test_no_writes(self):
        ops = random_rw_permutation(5, 0, random.Random(0))
        assert count_consecutive_write_pairs(ops) == 0

    @pytest.mark.parametrize("n", [3, 8, 20])
    def test_expectation(self, n):
        rng = random.Random(42)
        trials = 4000
        total = sum(
            count_consecutive_write_pairs(random_rw_permutation(n, n, rng))
            for _ in range(trials)
        )
        assert total / trials == pytest.approx((n - 1) / 2, rel=0.08)

    def test_reads_per_write_pair_near_two(self):
        """The §5.2 consequence: expected reads between consecutive writes
        approaches 2, so a single read slot captures most information."""
        n = 50
        rng = random.Random(7)
        trials = 2000
        ww_pairs = sum(
            count_consecutive_write_pairs(random_rw_permutation(n, n, rng))
            for _ in range(trials)
        ) / trials
        # n writes create n inter-write gaps on average containing
        # n reads; 2n/(n-1) ~= 2 reads per *non-empty* gap.
        reads_per_gap = 2 * n / (n - 1)
        assert reads_per_gap == pytest.approx(2.0, abs=0.1)
        assert ww_pairs == pytest.approx((n - 1) / 2, rel=0.1)
