"""Tests for the core value types."""

import pytest

from repro.core.types import (
    AnomalyReport,
    BuuInfo,
    CycleCounts,
    Edge,
    EdgeStats,
    EdgeType,
    Operation,
    OpType,
)


class TestOperation:
    def test_predicates(self):
        read = Operation(OpType.READ, 1, "x", 1)
        write = Operation(OpType.WRITE, 1, "x", 2)
        assert read.is_read() and not read.is_write()
        assert write.is_write() and not write.is_read()

    def test_frozen(self):
        op = Operation(OpType.READ, 1, "x", 1)
        with pytest.raises(AttributeError):
            op.buu = 2

    def test_equality_and_hash(self):
        a = Operation(OpType.READ, 1, "x", 1)
        b = Operation(OpType.READ, 1, "x", 1)
        assert a == b
        assert hash(a) == hash(b)


class TestEdge:
    def test_endpoints(self):
        edge = Edge(1, 2, EdgeType.RW, "x", 5)
        assert edge.endpoints() == (1, 2)

    def test_frozen_and_hashable(self):
        edge = Edge(1, 2, EdgeType.WW, "x")
        assert edge in {edge}


class TestBuuInfo:
    def test_alive_until_commit(self):
        info = BuuInfo(buu=1, start=3)
        assert info.alive
        assert info.commit_time() == float("inf")
        info.commit = 9
        assert not info.alive
        assert info.commit_time() == 9.0


class TestCycleCounts:
    def test_totals(self):
        counts = CycleCounts(ss=1, dd=2, sss=3, ssd=4, ddd=5)
        assert counts.two_cycles == 3
        assert counts.three_cycles == 12

    def test_add(self):
        a = CycleCounts(ss=1, ddd=1)
        b = CycleCounts(ss=2, dd=1)
        a.add(b)
        assert (a.ss, a.dd, a.ddd) == (3, 1, 1)

    def test_copy_independent(self):
        a = CycleCounts(ss=1)
        b = a.copy()
        a.ss = 99
        assert b.ss == 1


class TestEdgeStats:
    def test_record_and_total(self):
        stats = EdgeStats()
        stats.record(EdgeType.WR)
        stats.record(EdgeType.WW)
        stats.record(EdgeType.RW)
        stats.record(EdgeType.RW)
        assert stats.total == 4
        assert stats.as_dict() == {"wr": 1, "ww": 1, "rw": 2}


class TestAnomalyReport:
    def test_anomalies_sum(self):
        report = AnomalyReport(window_start=0, window_end=10,
                               estimated_2=3.0, estimated_3=4.0)
        assert report.anomalies == 7.0

    def test_defaults(self):
        report = AnomalyReport(window_start=0, window_end=1,
                               estimated_2=0.0, estimated_3=0.0)
        assert report.operations == 0
        assert report.patterns == {}
        assert report.raw.two_cycles == 0
