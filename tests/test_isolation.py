"""Tests for the serializable isolation controller (conservative 2PL)."""

import random

import pytest

from repro.core.config import RushMonConfig
from repro.core.monitor import OfflineAnomalyMonitor, RushMon
from repro.sim import Buu, SimConfig, Simulator, read_modify_write


def increment(keys):
    return read_modify_write(keys, lambda v: (v or 0) + 1)


class TestSerializableMode:
    def test_no_lost_updates(self):
        """Under 2PL, every increment lands: the counter is exact."""
        sim = Simulator(SimConfig(num_workers=16, seed=1,
                                  isolation="serializable"))
        sim.run([increment(["x"]) for _ in range(300)])
        assert sim.store["x"] == 300

    def test_zero_anomalies(self):
        offline = OfflineAnomalyMonitor()
        sim = Simulator(
            SimConfig(num_workers=16, seed=2, isolation="serializable",
                      compute_jitter=10),
            listeners=[offline],
        )
        rng = random.Random(0)
        buus = [increment([f"k{k}" for k in rng.sample(range(10), 3)])
                for _ in range(300)]
        sim.run(buus)
        counts = offline.exact_counts()
        assert counts.two_cycles == 0
        assert counts.three_cycles == 0

    def test_zero_anomalies_with_latency(self):
        """Locks held until visibility keep even delayed writes safe."""
        offline = OfflineAnomalyMonitor()
        sim = Simulator(
            SimConfig(num_workers=8, seed=3, isolation="serializable",
                      write_latency=200, compute_jitter=10),
            listeners=[offline],
        )
        buus = [increment([f"k{i % 5}"]) for i in range(200)]
        sim.run(buus)
        assert offline.exact_counts().two_cycles == 0
        assert sim.store == {f"k{i}": 40 for i in range(5)}

    def test_serializable_is_slower(self):
        """The isolation/throughput trade-off the paper's ITAs avoid."""

        def sim_time(isolation):
            sim = Simulator(SimConfig(num_workers=16, seed=4,
                                      isolation=isolation, compute_jitter=10))
            sim.run([increment([f"k{i % 3}"]) for i in range(300)])
            return sim.now

        assert sim_time("serializable") > sim_time("none")

    def test_monitor_confirms_quiet(self):
        mon = RushMon(RushMonConfig(sampling_rate=1, mob=False))
        sim = Simulator(
            SimConfig(num_workers=8, seed=5, isolation="serializable"),
            listeners=[mon],
        )
        sim.run([increment([f"k{i % 4}"]) for i in range(200)])
        report = mon.close_window(sim.now)
        assert report.estimated_2 == 0.0
        assert report.estimated_3 == 0.0

    def test_locks_respect_writes_hint(self):
        """A write-only BUU declared via writes_hint is still excluded."""
        sim = Simulator(SimConfig(num_workers=4, seed=6,
                                  isolation="serializable"))
        buus = [Buu(reads=[], compute=lambda v: {"y": 1}, writes_hint=["y"])
                for _ in range(20)]
        assert sim.run(buus) == 20

    def test_invalid_isolation(self):
        with pytest.raises(ValueError):
            SimConfig(isolation="mvcc")

    def test_all_buus_complete_under_contention(self):
        sim = Simulator(SimConfig(num_workers=32, seed=7,
                                  isolation="serializable"))
        done = sim.run([increment(["hot"]) for _ in range(500)])
        assert done == 500
        assert sim.store["hot"] == 500
