"""Chaos tests: fault injection against the concurrent service.

Every test here drives the pipeline with a
:class:`~repro.testing.faults.FaultInjector` armed and then checks the
fault-tolerance contract of :class:`~repro.core.concurrent.RushMonService`:

- detection failures are supervised (caught, logged, counted, the thread
  restarted with backoff) rather than silently killing monitoring;
- no event the collector *acknowledged* is ever lost — after the dust
  settles, the ``sr=1`` differential against the offline baseline still
  holds bit-exactly;
- overload policies fail loudly (``block``), honestly (``shed`` is
  counted), or adaptively (``degrade`` is recorded), never silently;
- a persistent failure trips the circuit breaker into an explicit
  DEGRADED state visible in ``latest_report()`` and on ``/metrics``.

Marked ``chaos`` so CI can run the suite standalone (``-m chaos``); the
tests are small enough to ride in the default tier-1 run too.
"""

import logging
import random
import time

import pytest

from repro.core.concurrent import JournalBackpressure, RushMonService
from repro.core.config import RushMonConfig
from repro.core.monitor import OfflineAnomalyMonitor
from repro.core.types import Operation, OpType
from repro.sim.scheduler import ThreadedWorkloadDriver
from repro.testing import Fault, FaultInjector, InjectedFault

from tests.test_concurrent_stress import _workload

pytestmark = pytest.mark.chaos


def _ops(count, num_keys, seed):
    """A deterministic single-threaded operation stream."""
    rng = random.Random(seed)
    return [
        Operation(
            OpType.READ if rng.random() < 0.5 else OpType.WRITE,
            buu=rng.randrange(count // 4 + 1),
            key=f"k{rng.randrange(num_keys)}",
            seq=i,
        )
        for i in range(count)
    ]


def _service(faults=None, **kwargs):
    kwargs.setdefault("num_shards", 4)
    kwargs.setdefault("detect_interval", 0.003)
    record_trace = kwargs.pop("record_trace", True)
    return RushMonService(
        RushMonConfig(sampling_rate=1, mob=False, seed=42, **kwargs),
        faults=faults,
        record_trace=record_trace,
    )


def _assert_sr1_differential(service):
    """The chaos invariant: replaying the serialized trace of everything
    the service acknowledged through the offline baseline reproduces the
    service's counts exactly — faults may slow or shed, never corrupt."""
    replayed = OfflineAnomalyMonitor()
    service.serialized_trace().replay([replayed])
    assert replayed.exact_counts() == service.counts()


def test_supervised_restart_preserves_differential(caplog):
    """Three injected detection-pass crashes: the supervisor restarts the
    thread each time (logged + counted + exported) and the final counts
    still match the offline replay for every acknowledged event."""
    faults = FaultInjector().inject(
        Fault("detect.pass", kind="exception", times=3)
    )
    service = _service(
        faults, max_restarts=10, restart_backoff=0.001, max_backoff=0.01
    )
    workload = _workload(120, 32, 3, seed=5)
    driver = ThreadedWorkloadDriver([service], num_threads=4, seed=5,
                                    yield_every=7, join_timeout=60.0)
    with caplog.at_level(logging.WARNING,
                         logger="repro.core.concurrent.service"):
        with service:
            driver.run(workload)
            # Wait for the *restarts*, not just the fired faults: stop()
            # would otherwise race the supervisor's respawn and win.
            deadline = time.monotonic() + 10.0
            while service.detect_restarts < 3 and time.monotonic() < deadline:
                time.sleep(0.005)
    assert faults.fired_by_point["detect.pass"] == 3
    assert service.detect_failures == 3
    assert service.detect_restarts == 3
    assert not service.degraded
    assert any("restarting detection thread" in r.message
               for r in caplog.records)

    # The restart counter is visible on the metrics surface.
    snap = service.metrics.snapshot()
    assert snap["rushmon_service_detect_restarts_total"] == 3.0
    assert snap["rushmon_service_detect_failures_total"] == 3.0
    assert snap["rushmon_service_degraded"] == 0.0

    # Nothing acknowledged was lost across the crashes.
    assert service.processed_events == (
        driver.ops_emitted + 2 * driver.buus_completed
    )
    _assert_sr1_differential(service)
    assert service.counts().two_cycles > 0  # the run was not vacuous


def test_mid_pass_crash_requeues_unconsumed_suffix():
    """A crash in the middle of a batch re-queues the unconsumed suffix:
    the next pass picks it up in ticket order and the totals match an
    uninterrupted run."""
    faults = FaultInjector().inject(
        Fault("detect.process", kind="exception", after=25, times=1)
    )
    service = _service(faults)
    ops = _ops(200, 16, seed=9)
    for op in ops:
        service.on_operation(op)
    with pytest.raises(InjectedFault):
        service.close_window()
    assert service.processed_events == 25  # the consumed prefix
    # The journal still holds the rest; a clean pass finishes the job.
    service.close_window()
    assert service.processed_events == len(ops)
    trace = service.serialized_trace()
    assert len(trace.ops) == len(ops)
    assert [o.seq for o in trace.ops] == sorted(o.seq for o in trace.ops)
    _assert_sr1_differential(service)


def test_partial_drain_requeues_tail_in_ticket_order():
    """A partial drain hands the detector only a prefix; the re-queued
    tail is consumed by later passes with ticket order intact."""
    faults = FaultInjector().inject(
        Fault("journal.drain", kind="partial_drain", fraction=0.3, times=2)
    )
    service = _service(faults)
    ops = _ops(300, 24, seed=11)
    for op in ops:
        service.on_operation(op)
    for _ in range(4):  # enough passes to drain through both faults
        service.close_window()
    assert service.processed_events == len(ops)
    trace = service.serialized_trace()
    tickets = [o.seq for o in trace.ops]
    assert tickets == sorted(tickets) and len(set(tickets)) == len(tickets)
    _assert_sr1_differential(service)


def test_drain_delay_fault_loses_nothing():
    """Injected latency in the drain path slows windows down but the
    differential still holds exactly."""
    faults = FaultInjector().inject(
        Fault("journal.drain", kind="delay", delay=0.004, times=3)
    )
    service = _service(faults)
    workload = _workload(100, 24, 3, seed=21)
    driver = ThreadedWorkloadDriver([service], num_threads=4, seed=21,
                                    yield_every=5, join_timeout=60.0)
    with service:
        driver.run(workload)
    assert service.processed_events == (
        driver.ops_emitted + 2 * driver.buus_completed
    )
    _assert_sr1_differential(service)


def test_shed_overflow_is_counted_never_silent():
    """'shed' drops whole events when the journal is full — but every
    drop is counted, nothing acknowledged is lost, and the differential
    holds over exactly the acknowledged prefix."""
    service = _service(journal_capacity=8, overflow="shed")
    ops = _ops(500, 16, seed=33)
    for op in ops:  # no detection running: the tiny journal must overflow
        service.on_operation(op)
    shed = service.collector.shed_events
    assert shed > 0
    # Conservation: every submitted op was either acknowledged or shed.
    assert service.collector.ops_seen + shed == len(ops)
    snap = service.metrics.snapshot()
    assert snap["rushmon_collector_journal_shed_total"] == float(shed)
    service.close_window()
    assert service.processed_events == service.collector.ops_seen
    _assert_sr1_differential(service)


def test_block_overflow_raises_backpressure_to_producer():
    """'block' with a dead detector fails the producer loudly after the
    timeout instead of buffering without bound or dropping silently."""
    service = _service(
        journal_capacity=4, overflow="block", block_timeout=0.05
    )
    with pytest.raises(JournalBackpressure, match="journal"):
        for op in _ops(50, 8, seed=1):
            service.on_operation(op)
    assert service.metrics.snapshot()[
        "rushmon_collector_backpressure_timeouts_total"
    ] >= 1.0
    # Draining relieves the pressure; ingestion works again.
    service.close_window()
    service.on_operation(Operation(OpType.WRITE, 999, "fresh", 1))
    service.close_window()
    _assert_sr1_differential(service)


def test_degrade_overflow_raises_sampling_rate_and_records_it():
    """'degrade' trades accuracy for liveness: the effective sampling
    rate rises (recorded, and reflected in sampling_probability so the
    estimator stays calibrated) and recovers once drains come up light."""
    service = RushMonService(
        RushMonConfig(sampling_rate=1, mob=False, seed=7, num_shards=2,
                      journal_capacity=16, overflow="degrade"),
        record_trace=True,
    )
    for op in _ops(400, 64, seed=13):
        service.on_operation(op)
    collector = service.collector
    assert collector.degrade_shift >= 1
    assert collector.degrade_shifts_total >= 1
    assert collector.sampling_probability == pytest.approx(
        0.5 ** collector.degrade_shift
    )
    snap = service.metrics.snapshot()
    assert snap["rushmon_collector_degrade_shifts_total"] >= 1.0
    assert snap["rushmon_collector_effective_sampling_rate"] == float(
        1 << collector.degrade_shift
    )
    # Light drains step the shift back down.
    for _ in range(collector.degrade_shift + 1):
        service.close_window()
    assert collector.degrade_shift == 0
    assert collector.sampling_probability == 1.0


def test_circuit_breaker_degraded_state_is_visible_everywhere():
    """A persistent detection fault exhausts max_restarts: the service
    goes DEGRADED — visible via latest_report() health, the Prometheus
    exposition, and the collector's switch to shed — while producers
    remain unblocked."""
    faults = FaultInjector().inject(
        Fault("detect.pass", kind="exception", times=None)
    )
    service = _service(
        faults, max_restarts=2, restart_backoff=0.001, max_backoff=0.01,
        journal_capacity=32, overflow="block", block_timeout=30.0,
    )
    service.start()
    deadline = time.monotonic() + 10.0
    while not service.degraded and time.monotonic() < deadline:
        time.sleep(0.005)
    assert service.degraded
    assert service.health == "degraded"
    assert service.detect_failures == 3  # initial + max_restarts retries
    assert service.detect_restarts == 2

    report = service.latest_report()
    assert report is not None and report.health == "degraded"

    prom = service.metrics.render_prometheus()
    assert "rushmon_service_degraded 1" in prom
    snap = service.metrics.snapshot()
    assert snap["rushmon_service_degraded"] == 1.0
    assert snap["rushmon_service_detect_restarts_total"] == 2.0

    # Producers must not block on the dead detector: the collector was
    # switched to shed-on-overflow, so flooding far past the journal
    # capacity returns promptly instead of waiting out block_timeout.
    started = time.monotonic()
    for op in _ops(200, 8, seed=3):
        service.on_operation(op)
    assert time.monotonic() - started < 5.0
    assert service.collector.overflow == "shed"
    assert service.collector.shed_events > 0

    assert service.stop() is service.latest_report()
    assert service.latest_report().health == "degraded"


def test_degrade_steps_down_one_shift_per_light_drain():
    """The recovery side of the 'degrade' overflow policy, pinned step
    by step: a drain that comes up light (under half the capacity)
    lowers the shift by exactly one — never more — while a heavy drain
    only reopens the escalation epoch and holds the shift."""
    from repro.core.concurrent.sharded import ShardedCollector

    collector = ShardedCollector(
        sampling_rate=1, mob=False, num_shards=1, journal=True,
        journal_capacity=8, overflow="degrade", seed=5,
    )
    ops = iter(_ops(400, 64, seed=17))

    def feed(count):
        for _ in range(count):
            collector.handle(next(ops))

    # Escalate to shift=3: each overfill raises the shift once per
    # epoch, and the (heavy) drain between overfills holds it.
    for expected in (1, 2, 3):
        feed(9)  # capacity is 8: the 9th op overflows
        assert collector.degrade_shift == expected
        feed(3)  # same epoch: a burst escalates one step, not three
        assert collector.degrade_shift == expected
        drained = collector.drain_journal()
        assert len(drained) >= collector.journal_capacity // 2  # heavy
        assert collector.degrade_shift == expected  # held, not lowered
    assert collector.degrade_shifts_total == 3
    assert collector.sampling_probability == pytest.approx(0.5 ** 3)

    # Recover: each light drain steps down exactly once, and the
    # effective probability recalibrates at every step.
    for expected in (2, 1, 0):
        feed(2)
        drained = collector.drain_journal()
        assert len(drained) < collector.journal_capacity // 2  # light
        assert collector.degrade_shift == expected
        assert collector.sampling_probability == pytest.approx(
            0.5 ** expected
        )
    # Every transition (3 up, 3 down) was recorded.
    assert collector.degrade_shifts_total == 6

    # Stepping down below zero is impossible: further light drains are
    # no-ops on the shift and on the transition counter.
    feed(2)
    collector.drain_journal()
    assert collector.degrade_shift == 0
    assert collector.degrade_shifts_total == 6
    assert collector.sampling_probability == 1.0
