"""Tests for the instrumented KV store."""

from repro.core.config import RushMonConfig
from repro.core.monitor import RushMon
from repro.core.types import OpType
from repro.storage.kvstore import KVStore


class TestKVStore:
    def test_read_write_roundtrip(self):
        store = KVStore()
        store.write(1, "x", 42)
        assert store.read(2, "x") == 42

    def test_missing_key_reads_none(self):
        store = KVStore()
        assert store.read(1, "ghost") is None

    def test_initial_contents(self):
        store = KVStore({"a": 1})
        assert store.read(1, "a") == 1

    def test_sequence_increments_per_operation(self):
        store = KVStore()
        store.write(1, "x", 0)
        store.read(1, "x")
        assert store.seq == 2

    def test_listeners_see_visibility_order(self):
        store = KVStore()
        seen = []
        store.subscribe(seen.append)
        store.write(1, "x", 1)
        store.read(2, "x")
        assert [op.op for op in seen] == [OpType.WRITE, OpType.READ]
        assert [op.seq for op in seen] == [1, 2]

    def test_peek_does_not_notify(self):
        store = KVStore({"x": 5})
        seen = []
        store.subscribe(seen.append)
        assert store.peek("x") == 5
        assert seen == []

    def test_snapshot_is_a_copy(self):
        store = KVStore({"x": 1})
        snap = store.snapshot()
        store.write(1, "x", 2)
        assert snap["x"] == 1

    def test_subscribe_monitor(self):
        store = KVStore()
        monitor = RushMon(RushMonConfig(sampling_rate=1, mob=False))
        store.subscribe_monitor(monitor)
        # the classic lost update, issued directly against the store
        store.write(0, "x", 1)
        store.read(1, "x")
        store.read(2, "x")
        store.write(1, "x", 2)
        store.write(2, "x", 3)
        report = monitor.close_window()
        assert report.estimated_2 == 1.0
        assert report.patterns == {"lost_update": 1}

    def test_keys(self):
        store = KVStore({"a": 1, "b": 2})
        assert sorted(store.keys()) == ["a", "b"]
