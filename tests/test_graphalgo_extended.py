"""Tests for the additional §2.2 workloads: PageRank and matching."""

import random

import pytest

from repro.graph.random_graphs import (
    UndirectedGraph,
    preferential_attachment_graph,
)
from repro.graphalgo.matching import AsyncMatching
from repro.graphalgo.pagerank import AsyncPageRank, reference_pagerank
from repro.sim import SimConfig


def small_graph(seed=0, n=60, degree=4):
    return preferential_attachment_graph(n, degree, rng=random.Random(seed))


class TestReferencePageRank:
    def test_ranks_sum_to_one(self):
        graph = small_graph()
        ranks = reference_pagerank(graph)
        assert sum(ranks) == pytest.approx(1.0, abs=0.01)

    def test_hub_outranks_leaf(self):
        graph = small_graph()
        ranks = reference_pagerank(graph)
        degrees = [graph.degree(v) for v in range(graph.num_vertices)]
        hub = max(range(graph.num_vertices), key=lambda v: degrees[v])
        leaf = min(range(graph.num_vertices), key=lambda v: degrees[v])
        assert ranks[hub] > ranks[leaf]

    def test_isolated_vertices_share_base_rank(self):
        graph = UndirectedGraph(4)
        ranks = reference_pagerank(graph)
        assert all(r == pytest.approx((1 - 0.85) / 4) for r in ranks)


class TestAsyncPageRank:
    def test_serial_converges_to_reference(self):
        pr = AsyncPageRank(small_graph(1), SimConfig(num_workers=1, seed=0))
        result = pr.run(max_rounds=60, tolerance=1e-3)
        assert result.converged
        assert result.final_error <= 1e-3

    def test_concurrent_still_converges(self):
        pr = AsyncPageRank(
            small_graph(2),
            SimConfig(num_workers=8, seed=1, write_latency=100,
                      compute_jitter=10),
        )
        result = pr.run(max_rounds=80, tolerance=2e-3)
        assert result.converged

    def test_chaos_recorded_as_anomalies(self):
        pr = AsyncPageRank(
            small_graph(3),
            SimConfig(num_workers=8, seed=2, write_latency=200),
        )
        result = pr.run(max_rounds=20, tolerance=1e-6)
        assert result.estimated_2 + result.estimated_3 > 0


class TestAsyncMatching:
    def test_serial_reaches_maximal_matching(self):
        matching = AsyncMatching(small_graph(4),
                                 SimConfig(num_workers=1, seed=0))
        result = matching.run(max_rounds=10)
        assert result.converged
        assert matching.is_consistent()
        assert matching.is_maximal()
        assert result.matched_pairs >= 1

    def test_concurrent_converges_with_repair(self):
        matching = AsyncMatching(
            small_graph(5),
            SimConfig(num_workers=8, seed=1, write_latency=80,
                      compute_jitter=10),
        )
        result = matching.run(max_rounds=60)
        assert result.converged
        assert matching.is_consistent()

    def test_consistency_check_catches_dangling(self):
        graph = UndirectedGraph(3)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        matching = AsyncMatching(graph, SimConfig(num_workers=1, seed=0))
        matching.simulator.store["m0"] = 1
        matching.simulator.store["m1"] = 2  # 1 points at 2, not back at 0
        matching.simulator.store["m2"] = 1
        assert not matching.is_consistent()

    def test_maximality_check(self):
        graph = UndirectedGraph(2)
        graph.add_edge(0, 1)
        matching = AsyncMatching(graph, SimConfig(num_workers=1, seed=0))
        assert not matching.is_maximal()  # nothing matched yet
