"""The multi-process monitor cluster: unit tests + differential sweeps.

The differential is the cluster's acceptance gate: at ``sr=1``/
``mob=False`` a :class:`ClusterMonitor` must be **bit-exact** against
both the serial monitor and the independent exact checkers
(:mod:`repro.checkers`) on every paper workload — with 2 and with 4
workers.  One spawned cluster per worker count is reused across seeds
via :meth:`ClusterMonitor.reset` (tickets and watermarks stay monotone,
so the reuse itself exercises the reset path).

The tier-1 run covers a smoke subset of seeds; the full ``>= 20`` seed
sweep carries the ``oracle`` mark (CI's oracle job).  Everything in
this file also carries the ``cluster`` mark for CI's dedicated cluster
job.
"""

from __future__ import annotations

import pytest

from repro.checkers import exact_cycle_counts
from repro.cluster import ClusterMonitor
from repro.core.concurrent.sharded import ShardedCollector
from repro.core.config import RushMonConfig
from repro.core.frontier import (
    FRONTIER_VERSION,
    FrontierVersionError,
    decode_frontier,
    encode_frontier,
    key_partition,
)
from repro.core.types import Edge, EdgeType, Operation, OpType

from tests.histgen import feed_with_lifecycle
from tests.test_checkers_differential import (
    WORKLOADS,
    monitor_counts,
    workload_history,
)

pytestmark = pytest.mark.cluster

CLUSTER_FULL_SEEDS = range(20)
CLUSTER_SMOKE_SEEDS = (0, 13)


# -- frontier / partition units ------------------------------------------------


def test_frontier_roundtrip():
    groups = [
        (7, [Edge(1, 2, EdgeType.WW, "x", 5), Edge(2, 3, EdgeType.RW, 9, 6)]),
        (9, []),
    ]
    payload = encode_frontier(groups)
    assert payload["v"] == FRONTIER_VERSION
    decoded, sampler_state = decode_frontier(payload)
    assert decoded == groups
    assert sampler_state is None


def test_frontier_carries_sampler_state():
    from repro.core.collector import ItemSampler

    sampler = ItemSampler(4, seed=3)
    _, state = decode_frontier(encode_frontier([], sampler))
    restored = ItemSampler(1)
    restored.load_state(state)
    for key in ("a", "b", 1, 17, "zz"):
        assert restored.chosen(key) == sampler.chosen(key)


def test_frontier_version_mismatch_refused():
    payload = encode_frontier([])
    payload["v"] = FRONTIER_VERSION + 1
    with pytest.raises(FrontierVersionError):
        decode_frontier(payload)


def test_route_wire_roundtrip_and_validation():
    """``decode_route_events`` is the reference decoder for the route
    wire records (the worker fuses its own copy of this loop into the
    batch-collect path)."""
    from repro.cluster import messages as msg

    op = Operation(OpType.READ, 3, "k", 7)
    records = [msg.wire_op(op, 10), msg.wire_begin(4, 11, 11),
               msg.wire_commit(4, 12, 12)]
    assert msg.decode_route_events(records) == [
        ("op", 10, op), ("b", 11, 4, 11), ("c", 12, 4, 12)]
    with pytest.raises(msg.ProtocolError):
        msg.decode_route_events([["?", 1, 2, 3]])
    with pytest.raises(msg.ProtocolError):
        msg.decode_route_events([["r", 1]])


def _collect_per_op(worker, records):
    """The per-op reference for ``_collect_route_events``: one
    ``collector.handle`` call per wire record, in order."""
    from repro.cluster import messages as msg

    groups, batch = [], []
    for event in msg.decode_route_events(records):
        if event[0] == "op":
            _, ticket, op = event
            derived = worker.collector.handle(op)
            batch.append((ticket, "o", op, derived))
            if derived:
                groups.append((ticket, derived))
        else:
            kind, ticket, buu, when = event
            batch.append((ticket, kind, buu, when))
    return groups, batch


def _norm_batch(batch):
    return [(e[0], e[1], e[2], list(e[3])) if e[1] == "o"
            else (e[0], e[1], e[2], e[3]) for e in batch]


def test_worker_batch_collection_matches_per_op():
    """The worker's batch-collect fast path (handle_batch + regroup by
    ``(key, seq)``) must yield exactly the per-op groups — including a
    frame that repeats a ``(key, seq)`` pair, which must take the
    per-op fallback rather than merging two operations' edges."""
    from repro.cluster import messages as msg
    from repro.cluster.worker import ClusterWorker

    def build():
        return ClusterWorker(0, 2, RushMonConfig(
            sampling_rate=1, mob=False, seed=1, num_workers=2))

    records, ticket, seq = [], 0, 0
    for buu in range(6):
        ticket += 1
        records.append(msg.wire_begin(buu, seq, ticket))
        for i in range(8):
            seq += 1
            ticket += 1
            op = Operation(OpType.READ if i % 2 else OpType.WRITE,
                           buu, f"k{(buu + i) % 5}", seq)
            records.append(msg.wire_op(op, ticket))
        seq += 1
        ticket += 1
        records.append(msg.wire_commit(buu, seq, ticket))

    groups_fast, batch_fast = build()._collect_route_events(records)
    groups_ref, batch_ref = _collect_per_op(build(), records)
    assert groups_fast == groups_ref
    assert _norm_batch(batch_fast) == _norm_batch(batch_ref)

    # Two operations sharing (key, seq) in one frame: the regroup would
    # be ambiguous, so the frame must fall back to per-op collection.
    dup_records = [
        msg.wire_begin(0, 0, 1),
        msg.wire_begin(1, 0, 2),
        msg.wire_op(Operation(OpType.WRITE, 0, "k", 5), 3),
        msg.wire_op(Operation(OpType.READ, 1, "k", 5), 4),
    ]
    groups_fast, batch_fast = build()._collect_route_events(dup_records)
    groups_ref, batch_ref = _collect_per_op(build(), dup_records)
    assert groups_fast == groups_ref
    assert _norm_batch(batch_fast) == _norm_batch(batch_ref)


def test_key_partition_agrees_with_sharded_collector():
    """The cluster router and the in-process sharded collector must
    place every key identically (one placement digest, one owner)."""
    collector = ShardedCollector(num_shards=4)
    keys = [0, 1, 5, 1 << 40, -3, "x", "key-17", (), 3.5]
    for key in keys:
        assert collector.shard_index(key) == key_partition(key, 4, mask=3)
    collector3 = ShardedCollector(num_shards=3)
    for key in keys:
        assert collector3.shard_index(key) == key_partition(key, 3)


# -- facade contract -----------------------------------------------------------


def test_cluster_rejects_resample_interval():
    with pytest.raises(ValueError, match="resample_interval"):
        ClusterMonitor(RushMonConfig(sampling_rate=4, resample_interval=10))


def test_reset_cannot_change_worker_count():
    monitor = ClusterMonitor(RushMonConfig(num_workers=2))
    with pytest.raises(ValueError, match="num_workers"):
        monitor.reset(RushMonConfig(num_workers=4))
    monitor.stop()


def test_stop_is_idempotent_and_refuses_further_ingestion():
    monitor = ClusterMonitor(
        RushMonConfig(sampling_rate=1, mob=False, num_workers=2))
    monitor.on_operation(Operation(OpType.WRITE, 1, "x", 1))
    assert monitor.close_window().operations == 1
    monitor.stop()
    monitor.stop()
    with pytest.raises(RuntimeError, match="stopped"):
        monitor.on_operation(Operation(OpType.WRITE, 1, "x", 2))


def test_worker_death_is_respawned_transparently():
    monitor = ClusterMonitor(
        RushMonConfig(sampling_rate=1, mob=False, num_workers=2))
    monitor.on_operation(Operation(OpType.WRITE, 1, "x", 1))
    victim = monitor._links[0].proc
    victim.terminate()
    victim.join(timeout=10)
    # The supervisor detects the death and respawns shard 0 behind the
    # barrier: the window closes healthy, with nothing lost.
    report = monitor.close_window()
    assert report.health == "ok"
    assert report.degraded_shards == ()
    assert report.operations == 1
    assert monitor.worker_restarts_total >= 1
    assert monitor._links[0].proc is not victim
    health = {entry["index"]: entry for entry in monitor.shard_health()}
    assert health[0]["state"] == "up"
    assert health[0]["restarts"] >= 1
    monitor.stop()


# -- differential: bit-exact against serial and the exact checkers -------------


@pytest.fixture(scope="module", params=[2, 4], ids=["workers2", "workers4"])
def cluster(request):
    monitor = ClusterMonitor(RushMonConfig(
        sampling_rate=1, mob=False, num_workers=request.param))
    yield monitor
    monitor.stop()


def _assert_cluster_bit_exact(cluster: ClusterMonitor, workload: str,
                              seed: int) -> None:
    cluster.reset(RushMonConfig(sampling_rate=1, mob=False, seed=seed,
                                num_workers=cluster.num_workers))
    history = workload_history(workload, seed)
    serial = monitor_counts(history)
    feed_with_lifecycle([cluster], history)
    exact = exact_cycle_counts(history)
    assert cluster.counts() == serial.detector.counts == exact
    assert cluster.cumulative_estimates() == serial.cumulative_estimates()
    # The merged window report must equal the serial one field-for-field
    # (raw counts, edge stats, op totals, patterns, window bounds).
    assert cluster.close_window() == serial.close_window()


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("seed", CLUSTER_SMOKE_SEEDS)
def test_cluster_sr1_bit_exact_smoke(cluster, workload, seed):
    """Tier-1 subset (the oracle/cluster jobs run all 20 seeds)."""
    _assert_cluster_bit_exact(cluster, workload, seed)


@pytest.mark.oracle
@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("seed", CLUSTER_FULL_SEEDS)
def test_cluster_sr1_bit_exact_full_sweep(cluster, workload, seed):
    """The acceptance sweep: all three paper workloads x 20 seeds x
    {2, 4} workers, merged cluster counts equal to the serial monitor
    and the independent exact checker."""
    _assert_cluster_bit_exact(cluster, workload, seed)


@pytest.mark.parametrize("seed", (1, 9))
def test_cluster_sampled_run_matches_serial(seed):
    """Sampling composes with sharding: at sr=4 (mob off, pure per-key
    sampler) the cluster's cumulative counts still equal the serial
    monitor's bit-for-bit — workers sample the same items the serial
    collector would."""
    with ClusterMonitor(RushMonConfig(sampling_rate=4, mob=False, seed=seed,
                                      num_workers=4)) as cluster:
        history = workload_history("ycsb", seed)
        serial = monitor_counts(history, sampling_rate=4, seed=seed)
        feed_with_lifecycle([cluster], history)
        assert cluster.counts() == serial.detector.counts
        assert cluster.cumulative_estimates() == serial.cumulative_estimates()
