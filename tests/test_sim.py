"""Tests for the discrete-event concurrency simulator."""

import pytest

from repro.core.monitor import OfflineAnomalyMonitor, RushMon
from repro.core.config import RushMonConfig
from repro.core.types import OpType
from repro.sim import Buu, SimConfig, Simulator, read_modify_write


class _Recorder:
    """Listener capturing the full event stream."""

    def __init__(self):
        self.ops = []
        self.begins = []
        self.commits = []

    def on_operation(self, op):
        self.ops.append(op)

    def begin_buu(self, buu, t):
        self.begins.append((buu, t))

    def commit_buu(self, buu, t):
        self.commits.append((buu, t))


def increment_buu(keys):
    return read_modify_write(keys, lambda v: (v or 0) + 1)


class TestSimulatorBasics:
    def test_single_worker_is_serial(self):
        rec = _Recorder()
        sim = Simulator(SimConfig(num_workers=1, seed=0), listeners=[rec])
        done = sim.run([increment_buu(["x"]) for _ in range(5)])
        assert done == 5
        assert sim.store["x"] == 5
        # Serial execution: strictly alternating r/w per BUU, no overlap.
        kinds = [op.op for op in rec.ops]
        assert kinds == [OpType.READ, OpType.WRITE] * 5

    def test_all_buus_complete(self):
        sim = Simulator(SimConfig(num_workers=8, seed=1))
        done = sim.run([increment_buu(["a", "b"]) for _ in range(50)])
        assert done == 50
        assert sim.buus_completed == 50

    def test_deterministic_given_seed(self):
        def run(seed):
            rec = _Recorder()
            sim = Simulator(SimConfig(num_workers=4, seed=seed), listeners=[rec])
            sim.run([increment_buu(["x", "y"]) for _ in range(30)])
            return [(op.op, op.buu, op.key, op.seq) for op in rec.ops]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_lifecycle_events(self):
        rec = _Recorder()
        sim = Simulator(SimConfig(num_workers=2, seed=0), listeners=[rec])
        sim.run([increment_buu(["x"]) for _ in range(6)])
        assert len(rec.begins) == 6
        assert len(rec.commits) == 6
        begin_times = dict(rec.begins)
        commit_times = dict(rec.commits)
        for buu in begin_times:
            assert begin_times[buu] <= commit_times[buu]

    def test_resumable(self):
        sim = Simulator(SimConfig(num_workers=1, seed=0))
        sim.run([increment_buu(["x"]) for _ in range(3)])
        t_mid = sim.now
        sim.run([increment_buu(["x"]) for _ in range(3)])
        assert sim.store["x"] == 6
        assert sim.now > t_mid

    def test_lost_updates_under_concurrency(self):
        """With many workers incrementing one counter without isolation,
        some increments are lost — the motivating phenomenon."""
        sim = Simulator(SimConfig(num_workers=16, seed=3))
        sim.run([increment_buu(["x"]) for _ in range(400)])
        assert sim.store["x"] < 400

    def test_compute_sees_read_values(self):
        captured = {}

        def compute(values):
            captured.update(values)
            return {"out": values["in"] * 2}

        sim = Simulator(SimConfig(num_workers=1, seed=0), store={"in": 21})
        sim.run([Buu(reads=["in"], compute=compute)])
        assert captured == {"in": 21}
        assert sim.store["out"] == 42

    def test_empty_buu(self):
        sim = Simulator(SimConfig(num_workers=2, seed=0))
        assert sim.run([Buu(reads=[], compute=lambda v: {})]) == 1


class TestWriteLatency:
    def test_zero_latency_immediate_visibility(self):
        rec = _Recorder()
        sim = Simulator(SimConfig(num_workers=1, seed=0, write_latency=0),
                        listeners=[rec])
        sim.run([increment_buu(["x"])])
        read, write = rec.ops
        assert write.seq >= read.seq

    def test_latency_delays_visibility(self):
        """With high latency and two workers on one key, reads are stale
        and both increments compute from the same base — lost update."""
        sim = Simulator(SimConfig(num_workers=2, seed=0, write_latency=50))
        sim.run([increment_buu(["x"]) for _ in range(2)])
        assert sim.store["x"] == 1  # second increment lost to staleness

    def test_latency_increases_anomalies(self):
        def anomalies(latency):
            offline = OfflineAnomalyMonitor()
            sim = Simulator(
                SimConfig(num_workers=8, seed=5, write_latency=latency),
                listeners=[offline],
            )
            sim.run([increment_buu([f"k{i % 20}"]) for i in range(300)])
            return offline.exact_counts().two_cycles

        assert anomalies(20) > anomalies(0)

    def test_commit_waits_for_visibility(self):
        rec = _Recorder()
        sim = Simulator(SimConfig(num_workers=1, seed=0, write_latency=10),
                        listeners=[rec])
        sim.run([increment_buu(["x"])])
        commit_time = rec.commits[0][1]
        write_time = next(op.seq for op in rec.ops if op.op is OpType.WRITE)
        assert commit_time >= write_time


class TestStalenessBound:
    def test_bound_one_is_synchronous(self):
        """s=1: at most one outstanding write, so each write applies
        before the worker proceeds — no self-overlap."""
        rec = _Recorder()
        sim = Simulator(
            SimConfig(num_workers=2, seed=0, write_latency=5, staleness_bound=1),
            listeners=[rec],
        )
        sim.run([increment_buu(["x", "y"]) for _ in range(10)])
        assert sim.buus_completed == 10

    def test_tighter_bound_fewer_anomalies(self):
        """On a sparse workload (the Fig 7 regime), a tight staleness bound
        yields a lower anomaly *rate* (cycles per unit of simulated time,
        the paper's reporting convention) than unbounded asynchrony."""
        import random as _random

        def anomaly_rate(bound):
            offline = OfflineAnomalyMonitor()
            sim = Simulator(
                SimConfig(num_workers=8, seed=2, write_latency=600,
                          staleness_bound=bound, compute_jitter=40),
                listeners=[offline],
            )
            rng = _random.Random(0)
            buus = [
                increment_buu([f"k{k}" for k in rng.sample(range(60), 4)])
                for _ in range(300)
            ]
            sim.run(buus)
            counts = offline.exact_counts()
            return (counts.two_cycles + counts.three_cycles) / sim.now

        assert anomaly_rate(1) < anomaly_rate(None)


class TestBarriers:
    def test_barrier_counts(self):
        sim = Simulator(SimConfig(num_workers=4, seed=0, sync_frequency=1))
        done = sim.run([increment_buu(["x"]) for _ in range(40)])
        assert done == 40

    def test_frequent_barriers_reduce_anomalies(self):
        def anomalies(freq):
            offline = OfflineAnomalyMonitor()
            sim = Simulator(
                SimConfig(num_workers=8, seed=4, sync_frequency=freq),
                listeners=[offline],
            )
            sim.run([increment_buu([f"k{i % 6}"]) for i in range(400)])
            return offline.exact_counts().two_cycles

        low = anomalies(1)
        high = anomalies(50)
        assert low <= high


class TestMonitorIntegration:
    def test_rushmon_as_listener(self):
        mon = RushMon(RushMonConfig(sampling_rate=1, pruning="both",
                                    prune_interval=50))
        sim = Simulator(SimConfig(num_workers=8, seed=9), listeners=[mon])
        sim.run([increment_buu([f"k{i % 10}"]) for i in range(300)])
        report = mon.close_window(sim.now)
        assert report.operations == 600  # 300 reads + 300 writes

    def test_monitor_matches_offline_unsampled(self):
        mon = RushMon(RushMonConfig(sampling_rate=1, mob=False, pruning="none"))
        offline = OfflineAnomalyMonitor()
        sim = Simulator(SimConfig(num_workers=8, seed=9),
                        listeners=[mon, offline])
        sim.run([increment_buu([f"k{i % 10}"]) for i in range(300)])
        exact = offline.exact_counts()
        e2, e3 = mon.cumulative_estimates()
        assert e2 == exact.two_cycles
        assert e3 == exact.three_cycles

    def test_monitor_matches_offline_with_pruning(self):
        """Pruning on the live simulated stream does not change counts."""
        pruned = RushMon(RushMonConfig(sampling_rate=1, mob=False, pruning="both",
                                       prune_interval=25))
        offline = OfflineAnomalyMonitor()
        sim = Simulator(SimConfig(num_workers=8, seed=11),
                        listeners=[pruned, offline])
        sim.run([increment_buu([f"k{i % 8}"]) for i in range(400)])
        exact = offline.exact_counts()
        e2, e3 = pruned.cumulative_estimates()
        assert e2 == exact.two_cycles
        assert e3 == exact.three_cycles


class TestSimConfigValidation:
    def test_bad_workers(self):
        with pytest.raises(ValueError):
            SimConfig(num_workers=0)

    def test_bad_latency(self):
        with pytest.raises(ValueError):
            SimConfig(write_latency=-1)

    def test_bad_staleness(self):
        with pytest.raises(ValueError):
            SimConfig(staleness_bound=0)

    def test_bad_sync_frequency(self):
        with pytest.raises(ValueError):
            SimConfig(sync_frequency=0)
