"""Shared hypothesis strategies for BUU programs and interleavings.

The seed-based generator in :mod:`tests.histgen` sweeps diverse workloads
cheaply but cannot *shrink*: when a differential fails on seed 37, the
witness is a 400-operation history.  These strategies give hypothesis the
structure it needs to minimise — programs shrink toward fewer BUUs with
fewer steps, and the interleaving schedule shrinks toward serial order —
so a monitor/checker disagreement lands as a handful of operations that
fit in a failure message.

Used by the checker property tests, the monitor differentials and the
MOB property tests; settings profiles (``fast`` for CI, ``thorough`` for
nightly) are registered in :mod:`tests.conftest` and selected with the
``HYPOTHESIS_PROFILE`` environment variable.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.types import Operation, OpType
from repro.storage.history import BuuProgram

_OP_KINDS = st.sampled_from((OpType.READ, OpType.WRITE))


@st.composite
def buu_programs(draw, max_buus: int = 6, max_steps: int = 5,
                 max_keys: int = 4) -> list[BuuProgram]:
    """A batch of BUU programs over a deliberately hot key space.

    Few keys and few BUUs is the regime where dependency cycles actually
    form; shrinking reduces BUU count, step count and key diversity.
    """
    num_buus = draw(st.integers(min_value=1, max_value=max_buus))
    num_keys = draw(st.integers(min_value=1, max_value=max_keys))
    keys = st.integers(min_value=0, max_value=num_keys - 1)
    programs = []
    for buu in range(num_buus):
        steps = draw(st.lists(st.tuples(_OP_KINDS, keys),
                              min_size=1, max_size=max_steps))
        prog = BuuProgram(buu)
        for kind, key in steps:
            (prog.read if kind is OpType.READ else prog.write)(f"k{key}")
        programs.append(prog)
    return programs


@st.composite
def interleavings(draw, programs=None, **program_kwargs) -> list[Operation]:
    """A complete history: drawn programs merged under a drawn schedule.

    The schedule is a permutation of program indices (one occurrence per
    step), so every interleaving that respects program order is reachable
    — and hypothesis shrinks the permutation toward the sorted schedule,
    i.e. toward a *serial* (anomaly-free) execution.  ``seq`` is the
    position in the merged order, matching the simulator's convention
    that same-item operations are totally ordered by ``seq``.
    """
    progs = draw(programs if programs is not None
                 else buu_programs(**program_kwargs))
    slots = [i for i, prog in enumerate(progs) for _ in prog.steps]
    schedule = draw(st.permutations(slots))
    cursors = [0] * len(progs)
    ops: list[Operation] = []
    for seq, idx in enumerate(schedule, start=1):
        kind, key = progs[idx].steps[cursors[idx]]
        cursors[idx] += 1
        ops.append(Operation(kind, progs[idx].buu, key, seq))
    return ops


@st.composite
def op_streams(draw, max_ops: int = 250, max_buus: int = 15,
               max_keys: int = 6) -> list[Operation]:
    """An unstructured operation stream (no program discipline).

    The MOB and collector property tests want raw churn rather than
    well-formed transactions; shrinking drops operations and narrows the
    BUU/key ranges.
    """
    triples = draw(st.lists(
        st.tuples(_OP_KINDS,
                  st.integers(min_value=0, max_value=max_buus - 1),
                  st.integers(min_value=0, max_value=max_keys - 1)),
        min_size=0, max_size=max_ops))
    return [Operation(kind, buu, key, seq)
            for seq, (kind, buu, key) in enumerate(triples, start=1)]
