"""Tests for the streaming cycle detector against the offline counter."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detector import CycleDetector, LiveGraph
from repro.core.types import Edge, EdgeType
from repro.graph.cycles import count_labelled_short_cycles
from repro.graph.dependency import DependencyGraph


def make_edges(triples):
    return [Edge(src, dst, EdgeType.WR, label, seq=i)
            for i, (src, dst, label) in enumerate(triples, start=1)]


def random_edge_stream(seed, n, vertices, labels):
    rng = random.Random(seed)
    return make_edges(
        (rng.randrange(vertices), rng.randrange(vertices), rng.randrange(labels))
        for _ in range(n)
    )


class TestLiveGraph:
    def test_duplicate_and_self_edges_rejected(self):
        graph = LiveGraph()
        assert graph.add_edge(1, 2, "x")
        assert not graph.add_edge(1, 2, "x")
        assert not graph.add_edge(1, 1, "x")
        assert graph.add_edge(1, 2, "y")
        assert graph.num_edges() == 2

    def test_remove_vertex_clears_edges(self):
        graph = LiveGraph()
        graph.add_edge(1, 2, "x")
        graph.add_edge(2, 3, "y")
        graph.add_edge(3, 1, "z")
        graph.remove_vertex(2)
        assert graph.num_edges() == 1
        assert graph.edge_labels(3, 1) == {"z"}
        assert not graph.edge_labels(1, 2)

    def test_active_time(self):
        graph = LiveGraph()
        graph.begin(1, 10)
        graph.begin(2, 5)
        assert graph.active_time() == 5.0
        graph.commit(2, 20)
        assert graph.active_time() == 10.0
        graph.commit(1, 25)
        assert graph.active_time(default=99) == 99.0

    def test_commit_time_infinity_while_alive(self):
        graph = LiveGraph()
        graph.begin(1, 0)
        assert graph.commit_time(1) == float("inf")
        graph.commit(1, 7)
        assert graph.commit_time(1) == 7.0


class TestCycleDetectorStreaming:
    def test_two_cycle_counted_once(self):
        det = CycleDetector()
        det.add_edge(Edge(1, 2, EdgeType.WR, "x"))
        new = det.add_edge(Edge(2, 1, EdgeType.RW, "x"))
        assert new.ss == 1
        assert det.counts.ss == 1
        # Re-adding is a duplicate and counts nothing.
        again = det.add_edge(Edge(2, 1, EdgeType.RW, "x"))
        assert again.two_cycles == 0
        assert det.counts.ss == 1

    def test_two_cycle_distinct_labels(self):
        det = CycleDetector()
        det.add_edge(Edge(1, 2, EdgeType.WR, "x"))
        new = det.add_edge(Edge(2, 1, EdgeType.WW, "z"))
        assert (new.ss, new.dd) == (0, 1)

    def test_three_cycle_label_classes(self):
        det = CycleDetector()
        det.add_edge(Edge(1, 2, EdgeType.WR, "x"))
        det.add_edge(Edge(2, 3, EdgeType.WR, "x"))
        new = det.add_edge(Edge(3, 1, EdgeType.WR, "x"))
        assert new.sss == 1

        det2 = CycleDetector()
        det2.add_edge(Edge(1, 2, EdgeType.WR, "x"))
        det2.add_edge(Edge(2, 3, EdgeType.WR, "y"))
        new2 = det2.add_edge(Edge(3, 1, EdgeType.WR, "z"))
        assert new2.ddd == 1

    def test_counts_attributed_to_closing_edge(self):
        det = CycleDetector()
        assert det.add_edge(Edge(1, 2, EdgeType.WR, "x")).two_cycles == 0
        assert det.add_edge(Edge(2, 3, EdgeType.WR, "y")).two_cycles == 0
        closing = det.add_edge(Edge(3, 1, EdgeType.WR, "z"))
        assert closing.three_cycles == 1

    def test_count_three_disabled(self):
        det = CycleDetector(count_three=False)
        det.add_edge(Edge(1, 2, EdgeType.WR, "x"))
        det.add_edge(Edge(2, 3, EdgeType.WR, "x"))
        det.add_edge(Edge(3, 1, EdgeType.WR, "x"))
        assert det.counts.three_cycles == 0
        det.add_edge(Edge(2, 1, EdgeType.WR, "x"))
        assert det.counts.two_cycles == 1

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_offline_exact(self, seed):
        edges = random_edge_stream(seed, n=200, vertices=15, labels=4)
        det = CycleDetector()
        det.add_edges(edges)
        offline = DependencyGraph()
        offline.add_edges(edges)
        exact = count_labelled_short_cycles(offline)
        assert (det.counts.ss, det.counts.dd) == (exact.ss, exact.dd)
        assert (det.counts.sss, det.counts.ssd, det.counts.ddd) == (
            exact.sss,
            exact.ssd,
            exact.ddd,
        )

    @given(st.integers(0, 10**6), st.integers(4, 12), st.integers(5, 120))
    @settings(max_examples=40, deadline=None)
    def test_property_streaming_equals_offline(self, seed, vertices, n):
        edges = random_edge_stream(seed, n=n, vertices=vertices, labels=3)
        det = CycleDetector()
        det.add_edges(edges)
        offline = DependencyGraph()
        offline.add_edges(edges)
        exact = count_labelled_short_cycles(offline)
        assert det.counts.two_cycles == exact.two_cycles
        assert det.counts.three_cycles == exact.three_cycles

    @given(st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_property_order_invariance(self, seed):
        """Total counts are independent of edge arrival order."""
        edges = random_edge_stream(seed, n=80, vertices=10, labels=3)
        det1 = CycleDetector()
        det1.add_edges(edges)
        shuffled = list(edges)
        random.Random(seed + 1).shuffle(shuffled)
        det2 = CycleDetector()
        det2.add_edges(shuffled)
        assert (det1.counts.ss, det1.counts.dd, det1.counts.sss,
                det1.counts.ssd, det1.counts.ddd) == (
            det2.counts.ss, det2.counts.dd, det2.counts.sss,
            det2.counts.ssd, det2.counts.ddd)
