"""Cluster chaos suite: worker crashes, respawn-and-replay, degradation.

The self-healing claim is differential, like everything else in this
repo: a cluster whose worker was **SIGKILLed mid-stream** must, after
the supervisor's respawn-and-replay, produce ``sr=1`` reports that are
*bit-exact* against an unharmed single-process monitor on the same
history.  The kill is deterministic — the ``cluster.route`` fault point
fires ``kill_worker`` on a configured route-frame send — so every seed
exercises the same crash site on every run.

Beyond the differential: the restart-storm test drives repeated kills
into the ``max_worker_restarts`` circuit breaker and asserts the facade
*degrades* (``health="degraded"``, ``degraded_shards``, the
``rushmon_cluster_degraded`` gauge) instead of raising; the
snapshot-corruption tests flip CRC bits at the ``cluster.snapshot``
point and assert rejected snapshots never become restore points (the
full-journal fallback keeps the differential exact); and the reset test
recovers a degraded cluster back to healthy, bit-exact operation.

Tier-1 runs the smoke seeds; the full ``>= 10`` seed x {2, 4} worker
sweep carries the ``oracle`` mark (CI's cluster-chaos job runs it via
``-m cluster``, which overrides the default ``-m 'not oracle'``).
"""

from __future__ import annotations

import pytest

from repro.checkers import exact_cycle_counts
from repro.cluster import ClusterMonitor
from repro.core.config import RushMonConfig
from repro.storage.wal import CheckpointError, decode_shard_snapshot, \
    encode_shard_snapshot
from repro.testing.faults import Fault, FaultInjector

from tests.histgen import feed_with_lifecycle
from tests.test_checkers_differential import monitor_counts, workload_history

pytestmark = pytest.mark.cluster

CHAOS_FULL_SEEDS = range(10)
CHAOS_SMOKE_SEEDS = (0, 7)
WORKER_COUNTS = (2, 4)


def _chaos_config(workers: int, seed: int, **overrides) -> RushMonConfig:
    """sr=1/no-MOB (the bit-exact regime) with a small route batch so a
    modest history produces many flushes — many deterministic crash
    sites for the ``cluster.route`` fault to pick from."""
    defaults = dict(sampling_rate=1, mob=False, seed=seed,
                    num_workers=workers, cluster_batch=16)
    defaults.update(overrides)
    return RushMonConfig(**defaults)


def _assert_chaos_bit_exact(cluster: ClusterMonitor, seed: int) -> None:
    """The acceptance differential: the harmed cluster against an
    unharmed serial monitor and the independent exact checker."""
    history = workload_history("ycsb", seed)
    serial = monitor_counts(history, seed=seed)
    feed_with_lifecycle([cluster], history)
    assert cluster.counts() == serial.detector.counts \
        == exact_cycle_counts(history)
    assert cluster.cumulative_estimates() == serial.cumulative_estimates()
    report = cluster.close_window()
    assert report == serial.close_window()
    assert report.health == "ok"
    assert report.degraded_shards == ()


def _run_kill_case(workers: int, seed: int, **config_overrides) -> None:
    faults = FaultInjector()
    # Fires on one mid-stream route-frame send: SIGKILL its destination
    # worker.  (``after`` is scaled so snapshots/journals have content
    # by the time the crash lands.)
    faults.inject(Fault("cluster.route", kind="kill_worker",
                        after=4 * workers, times=1))
    cluster = ClusterMonitor(_chaos_config(workers, seed,
                                           **config_overrides),
                             faults=faults)
    try:
        _assert_chaos_bit_exact(cluster, seed)
        assert faults.fired_by_point.get("cluster.route", 0) == 1, \
            "the kill never fired — the workload produced too few flushes"
        assert cluster.worker_restarts_total >= 1
        assert all(entry["state"] == "up"
                   for entry in cluster.shard_health())
    finally:
        cluster.stop()


@pytest.mark.parametrize("workers", WORKER_COUNTS,
                         ids=["workers2", "workers4"])
@pytest.mark.parametrize("seed", CHAOS_SMOKE_SEEDS)
def test_sigkill_respawn_bit_exact_smoke(workers, seed):
    """Tier-1 subset of the kill differential (journal-replay path:
    no snapshot rounds forced, default capacity means none trigger)."""
    _run_kill_case(workers, seed)


@pytest.mark.oracle
@pytest.mark.parametrize("workers", WORKER_COUNTS,
                         ids=["workers2", "workers4"])
@pytest.mark.parametrize("seed", CHAOS_FULL_SEEDS)
def test_sigkill_respawn_bit_exact_full_sweep(workers, seed):
    """The acceptance sweep: >= 10 seeds x {2, 4} workers."""
    _run_kill_case(workers, seed)


@pytest.mark.parametrize("workers", WORKER_COUNTS,
                         ids=["workers2", "workers4"])
def test_sigkill_respawn_from_snapshot(workers):
    """Same differential, but with snapshot rounds on every router
    flush the respawn restores from a shipped snapshot + short replay
    instead of a full journal replay."""
    faults = FaultInjector()
    faults.inject(Fault("cluster.route", kind="kill_worker",
                        after=6 * workers, times=1))
    cluster = ClusterMonitor(_chaos_config(workers, seed=3,
                                           snapshot_interval=1),
                             faults=faults)
    try:
        _assert_chaos_bit_exact(cluster, seed=3)
        assert faults.fired_by_point.get("cluster.route", 0) == 1
        assert cluster.worker_restarts_total >= 1
        assert cluster.snapshots_shipped >= workers, \
            "snapshot shipping never ran before the kill"
    finally:
        cluster.stop()


def test_restart_storm_trips_breaker_into_degraded_mode():
    """Two deaths against a one-respawn budget: the first is respawned,
    the second trips the breaker and the facade *degrades* — reports
    keep flowing with ``health`` and ``degraded_shards`` honest, the
    gauge goes up, and routed frames for the lost shard are counted as
    dropped, never silently lost."""
    faults = FaultInjector()
    # The 5th route send targets shard 0 (sends alternate 0,1 per
    # flush): SIGKILL it mid-stream; the budget covers this one.
    faults.inject(Fault("cluster.route", kind="kill_worker",
                        after=4, times=1))
    cluster = ClusterMonitor(_chaos_config(2, seed=0,
                                           max_worker_restarts=1),
                             faults=faults)
    try:
        history = workload_history("ycsb", 0)
        feed_with_lifecycle([cluster], history)
        assert cluster.close_window().health == "ok"
        assert cluster.worker_restarts_total == 1
        # Second death of the same shard: budget exhausted -> breaker.
        victim = cluster._links[0].proc
        victim.terminate()
        victim.join(timeout=10)
        feed_with_lifecycle([cluster], history)
        report = cluster.close_window()
        assert report.health == "degraded"
        assert report.degraded_shards == (0,)
        assert cluster.latest_report().degraded_shards == (0,)
        assert cluster.degraded_shards == (0,)
        assert cluster.worker_restarts_total == 1
        assert cluster.metrics.snapshot()["rushmon_cluster_degraded"] == 1.0
        assert cluster.frames_dropped_failed >= 1
        # The survivors keep reporting: another window closes cleanly.
        assert cluster.close_window().health == "degraded"
    finally:
        cluster.stop()


def test_breaker_at_zero_degrades_on_first_death():
    """``max_worker_restarts=0`` means no respawn budget at all: the
    first death goes straight to DEGRADED instead of raising."""
    cluster = ClusterMonitor(_chaos_config(2, seed=0,
                                           max_worker_restarts=0))
    try:
        history = workload_history("ycsb", 0)
        feed_with_lifecycle([cluster], history[: len(history) // 2])
        victim = cluster._links[1].proc
        victim.terminate()
        victim.join(timeout=10)
        feed_with_lifecycle([cluster], history[len(history) // 2:])
        report = cluster.close_window()
        assert report.health == "degraded"
        assert report.degraded_shards == (1,)
        assert cluster.worker_restarts_total == 0
    finally:
        cluster.stop()


def test_reset_recovers_a_degraded_cluster():
    """The recovery story: :meth:`ClusterMonitor.reset` on a degraded
    cluster tears the remnants down, respawns a fresh healthy cluster,
    and the differential holds again."""
    cluster = ClusterMonitor(_chaos_config(2, seed=0,
                                           max_worker_restarts=0))
    try:
        history = workload_history("ycsb", 0)
        feed_with_lifecycle([cluster], history)
        victim = cluster._links[0].proc
        victim.terminate()
        victim.join(timeout=10)
        assert cluster.close_window().health == "degraded"
        cluster.reset(_chaos_config(2, seed=5, max_worker_restarts=0))
        assert cluster.degraded_shards == ()
        _assert_chaos_bit_exact(cluster, seed=5)
    finally:
        cluster.stop()


def test_corrupt_snapshots_are_rejected_and_fallback_stays_exact():
    """Every shipped snapshot arrives bit-flipped (``cluster.snapshot``
    corrupt fault): the router must reject them all — a bit-rotted
    restore point is worse than none — and a kill then recovers through
    the full-journal fallback, still bit-exact."""
    faults = FaultInjector()
    faults.inject(Fault("cluster.snapshot", kind="corrupt", times=None))
    faults.inject(Fault("cluster.route", kind="kill_worker",
                        after=10, times=1))
    cluster = ClusterMonitor(_chaos_config(2, seed=1, snapshot_interval=1),
                             faults=faults)
    try:
        _assert_chaos_bit_exact(cluster, seed=1)
        assert cluster.snapshots_rejected >= 1
        assert cluster.snapshots_shipped == 0
        assert cluster.worker_restarts_total >= 1
        # No verified snapshot ever became a restore point.
        assert all(link.snapshot is None for link in cluster._links)
    finally:
        cluster.stop()


def test_shard_snapshot_codec_roundtrip_and_crc():
    """Unit pin for the snapshot envelope: roundtrip fidelity, CRC
    tamper detection, foreign-document rejection."""
    payload = {"index": 1, "high": 42, "route_high": 7,
               "collector": {"ops_seen": 9}, "detector": {"x": [1, 2]},
               "window": {"w": 3}}
    document = encode_shard_snapshot(payload)
    assert decode_shard_snapshot(document) == payload
    tampered = dict(document)
    tampered["crc"] = tampered["crc"] ^ 1
    with pytest.raises(CheckpointError, match="CRC"):
        decode_shard_snapshot(tampered)
    with pytest.raises(CheckpointError):
        decode_shard_snapshot({"format": "something-else", "version": 1})
