"""Checkpoint/restore tests for the concurrent service.

The contract: a service killed after a checkpoint and restored from it,
then fed the remainder of the event stream, ends with exactly the same
cumulative counts, window partition and (for deterministic single-thread
runs) MOB reservoir decisions as an uninterrupted run over the same
stream.  Corrupt or truncated checkpoints are detected, never restored.
"""

import json
import os
import random
import subprocess
import sys

import pytest

from repro.core.concurrent import RushMonService
from repro.core.config import RushMonConfig
from repro.core.monitor import OfflineAnomalyMonitor
from repro.core.types import Operation, OpType
from repro.storage.wal import CheckpointError, load_checkpoint, save_checkpoint


def _stream(count, num_keys, seed, buus=40):
    """Deterministic ops + lifecycle events, as (kind, payload) tuples."""
    rng = random.Random(seed)
    events = []
    for b in range(buus):
        events.append(("begin", (b, b)))
    for i in range(count):
        events.append((
            "op",
            Operation(
                OpType.READ if rng.random() < 0.5 else OpType.WRITE,
                buu=rng.randrange(buus),
                key=f"k{rng.randrange(num_keys)}",
                seq=i,
            ),
        ))
    for b in range(buus):
        events.append(("commit", (b, count + b)))
    return events


def _feed(service, events):
    for kind, payload in events:
        if kind == "op":
            service.on_operation(payload)
        elif kind == "begin":
            service.begin_buu(*payload)
        else:
            service.commit_buu(*payload)


def _run_split(config, events, split, ckpt_path, close_before_checkpoint):
    """First half into service A, checkpoint, 'kill' A, restore into B,
    feed the rest, final close.  Returns B."""
    first, second = events[:split], events[split:]
    svc = RushMonService(config, record_trace=True)
    _feed(svc, first)
    if close_before_checkpoint:
        svc.close_window()
    svc.checkpoint(str(ckpt_path))
    del svc  # simulated kill: nothing after the checkpoint survives
    restored = RushMonService.restore(str(ckpt_path))
    _feed(restored, second)
    restored.close_window()
    return restored


@pytest.mark.parametrize("close_before_checkpoint", [True, False],
                         ids=["empty-journal", "pending-journal"])
def test_restore_matches_uninterrupted_run_sr1(tmp_path,
                                               close_before_checkpoint):
    """Kill/restore at sr=1 (with and without pending journal events in
    the snapshot) reproduces the uninterrupted run's window counts."""
    config = RushMonConfig(sampling_rate=1, mob=False, seed=3, num_shards=4)
    events = _stream(600, 24, seed=17)
    restored = _run_split(config, events, split=330,
                          ckpt_path=tmp_path / "svc.ckpt",
                          close_before_checkpoint=close_before_checkpoint)

    baseline = RushMonService(config, record_trace=True)
    _feed(baseline, events)
    baseline.close_window()

    assert restored.counts() == baseline.counts()
    assert restored.cumulative_estimates() == baseline.cumulative_estimates()
    assert restored.processed_events == baseline.processed_events
    # Window reports partition the cumulative counts across the kill.
    total_ops = sum(1 for kind, _ in events if kind == "op")
    assert sum(r.operations for r in restored.reports) == total_ops
    assert sum(r.raw.two_cycles for r in restored.reports) == \
        restored.counts().two_cycles
    # And the restored trace (pre-kill + post-restore) replays exactly.
    replayed = OfflineAnomalyMonitor()
    restored.serialized_trace().replay([replayed])
    assert replayed.exact_counts() == restored.counts()


def test_restore_matches_uninterrupted_run_sampled_mob(tmp_path):
    """With sr>1 and MOB, restore must also carry the sampler and the
    reservoir RNG: the restored run's sampled counts stay bit-identical
    to the uninterrupted run's, not merely statistically close."""
    config = RushMonConfig(sampling_rate=4, mob=True, seed=11, num_shards=4)
    events = _stream(800, 48, seed=29)
    restored = _run_split(config, events, split=377,
                          ckpt_path=tmp_path / "svc.ckpt",
                          close_before_checkpoint=True)

    baseline = RushMonService(config, record_trace=True)
    _feed(baseline, events)
    baseline.close_window()

    assert restored.counts() == baseline.counts()
    assert restored.collector.stats == baseline.collector.stats
    assert restored.collector.touches == baseline.collector.touches
    assert restored.collector.discarded_reads == \
        baseline.collector.discarded_reads
    assert restored.detector.patterns.as_dict() == \
        baseline.detector.patterns.as_dict()


def test_restore_preserves_reports_and_latest(tmp_path):
    config = RushMonConfig(sampling_rate=1, mob=False, seed=5, num_shards=2)
    svc = RushMonService(config, record_trace=True)
    _feed(svc, _stream(200, 12, seed=7))
    svc.close_window()
    path = svc.checkpoint(str(tmp_path / "svc.ckpt"))
    restored = RushMonService.restore(path)
    assert len(restored.reports) == len(svc.reports)
    assert restored.latest_report() == svc.latest_report()
    assert restored.passes == svc.passes
    assert not restored.stopped  # restored services are usable


def test_periodic_checkpointing_and_stop_checkpoint(tmp_path):
    """checkpoint_interval writes from the background thread; stop()
    writes a final snapshot that restores to the stopped service's
    exact final state."""
    path = tmp_path / "auto.ckpt"
    config = RushMonConfig(sampling_rate=1, mob=False, seed=9,
                           num_shards=2, detect_interval=0.003,
                           checkpoint_path=str(path), checkpoint_interval=1)
    svc = RushMonService(config, record_trace=True)
    with svc:
        _feed(svc, _stream(300, 16, seed=23))
        import time
        deadline = time.monotonic() + 10.0
        while svc.checkpoints_written == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
    assert svc.checkpoints_written >= 2  # at least one periodic + stop()
    restored = RushMonService.restore(str(path))
    assert restored.counts() == svc.counts()
    assert restored.processed_events == svc.processed_events


def test_corrupt_or_foreign_checkpoints_are_rejected(tmp_path):
    path = tmp_path / "svc.ckpt"
    svc = RushMonService(RushMonConfig(sampling_rate=1, mob=False,
                                       num_shards=2))
    svc.on_operation(Operation(OpType.WRITE, 1, "x", 1))
    svc.checkpoint(str(path))

    # Bit-rot: payload altered without updating the CRC.
    document = json.loads(path.read_text())
    document["payload"]["processed_events"] = 10_000
    path.write_text(json.dumps(document))
    with pytest.raises(CheckpointError, match="CRC"):
        RushMonService.restore(str(path))

    # Truncation mid-write (non-atomic writer simulation).
    svc.checkpoint(str(path))
    path.write_text(path.read_text()[:40])
    with pytest.raises(CheckpointError, match="JSON"):
        load_checkpoint(path)

    # A JSON file that is not a checkpoint at all.
    path.write_text('{"hello": "world"}')
    with pytest.raises(CheckpointError, match="not a rushmon-checkpoint"):
        load_checkpoint(path)

    # Missing file.
    with pytest.raises(CheckpointError, match="cannot read"):
        load_checkpoint(tmp_path / "nope.ckpt")

    # Future version.
    save_checkpoint(path, {"x": 1})
    document = json.loads(path.read_text())
    document["version"] = 99
    path.write_text(json.dumps(document))
    with pytest.raises(CheckpointError, match="version"):
        load_checkpoint(path)


_CROSS_PROCESS_SCRIPT = r"""
import json, sys
from repro.core.concurrent import RushMonService
from repro.core.config import RushMonConfig
from repro.core.monitor import OfflineAnomalyMonitor
from repro.core.types import Operation, OpType
import random

def stream(count, num_keys, seed, buus=30):
    rng = random.Random(seed)
    events = [("begin", (b, b)) for b in range(buus)]
    for i in range(count):
        events.append(("op", (
            "r" if rng.random() < 0.5 else "w",
            rng.randrange(buus), f"k{rng.randrange(num_keys)}", i)))
    return events

def feed(svc, events):
    for kind, payload in events:
        if kind == "op":
            o, buu, key, seq = payload
            svc.on_operation(Operation(OpType(o), buu, key, seq))
        else:
            svc.begin_buu(*payload)

mode, path = sys.argv[1], sys.argv[2]
config = RushMonConfig(sampling_rate=1, mob=False, seed=3, num_shards=4)
events = stream(400, 20, seed=17)
if mode == "save":
    svc = RushMonService(config, record_trace=True)
    feed(svc, events[:220])
    svc.checkpoint(path)
else:  # restore
    svc = RushMonService.restore(path)
    feed(svc, events[220:])
    svc.close_window()
    replayed = OfflineAnomalyMonitor()
    svc.serialized_trace().replay([replayed])
    assert replayed.exact_counts() == svc.counts(), "differential broken"
    baseline = RushMonService(config, record_trace=True)
    feed(baseline, events)
    baseline.close_window()
    assert svc.counts() == baseline.counts(), "diverged from uninterrupted"
print("OK")
"""


def test_restore_in_a_different_process(tmp_path):
    """Checkpoints must survive Python's per-process hash randomization:
    shard bucketing and the degrade filter use a process-stable digest,
    not builtin hash().  Save under one PYTHONHASHSEED, restore under
    another, and require both the sr=1 differential and equality with an
    uninterrupted run."""
    path = str(tmp_path / "cross.ckpt")
    for mode, seed in (("save", "1"), ("restore", "99")):
        env = dict(os.environ, PYTHONHASHSEED=seed,
                   PYTHONPATH=os.pathsep.join(sys.path))
        result = subprocess.run(
            [sys.executable, "-c", _CROSS_PROCESS_SCRIPT, mode, path],
            env=env, capture_output=True, text=True, timeout=120)
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "OK"


def test_save_checkpoint_is_atomic(tmp_path):
    """A new checkpoint replaces the old one atomically: no temp file
    residue, and the previous content is never partially overwritten."""
    path = tmp_path / "svc.ckpt"
    save_checkpoint(path, {"generation": 1})
    save_checkpoint(path, {"generation": 2})
    assert load_checkpoint(path) == {"generation": 2}
    assert list(tmp_path.iterdir()) == [path]
