"""Random concurrent-history generation shared by the differential,
estimator-unbiasedness and concurrency-stress tests.

Histories vary BUU count, key-space size, key skew and read/write mix by
seed, and are delivered with full BUU lifecycle events (``begin`` before
a BUU's first operation, ``commit`` after its last) so detector pruning
runs under the same assumptions the simulator guarantees.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.core.types import Operation
from repro.storage.history import BuuProgram, interleaved_history


def skewed_key(rng: random.Random, num_keys: int, skew: float) -> str:
    """Power-law key pick: ``skew=1`` is uniform, larger concentrates
    mass on low indices (hot keys)."""
    return f"k{int(num_keys * (rng.random() ** skew))}"


def random_history(
    seed: int,
    num_buus: int | None = None,
    num_keys: int | None = None,
    ops_per_buu: int | None = None,
    write_frac: float | None = None,
    skew: float | None = None,
) -> list[Operation]:
    """A randomly interleaved multi-BUU history; unspecified parameters
    are drawn from the seed so a seed range sweeps diverse workloads."""
    rng = random.Random(seed)
    num_buus = num_buus if num_buus is not None else rng.choice([20, 50, 90, 140])
    num_keys = num_keys if num_keys is not None else rng.choice([4, 8, 16, 32])
    ops_per_buu = ops_per_buu if ops_per_buu is not None else rng.randrange(2, 6)
    write_frac = write_frac if write_frac is not None else rng.choice([0.3, 0.5, 0.7])
    skew = skew if skew is not None else rng.choice([1.0, 2.0, 3.0])
    programs = []
    for buu in range(num_buus):
        prog = BuuProgram(buu)
        for _ in range(ops_per_buu):
            key = skewed_key(rng, num_keys, skew)
            (prog.write if rng.random() < write_frac else prog.read)(key)
        programs.append(prog)
    return interleaved_history(programs, rng)


def feed_with_lifecycle(listeners: Iterable, history: Sequence[Operation]) -> None:
    """Deliver ``history`` to listeners with begin/commit lifecycle events
    (begin at a BUU's first op, commit at its last)."""
    listeners = list(listeners)
    last_index = {op.buu: i for i, op in enumerate(history)}
    begun: set[int] = set()
    for i, op in enumerate(history):
        if op.buu not in begun:
            begun.add(op.buu)
            for listener in listeners:
                handler = getattr(listener, "begin_buu", None)
                if handler is not None:
                    handler(op.buu, op.seq)
        for listener in listeners:
            handler = getattr(listener, "on_operation", None)
            if handler is not None:
                handler(op)
        if last_index[op.buu] == i:
            for listener in listeners:
                handler = getattr(listener, "commit_buu", None)
                if handler is not None:
                    handler(op.buu, op.seq)
