"""Tests for the YCSB-style workload, the Zipfian generator, and the
ASCII figure renderer."""

import random

import pytest

from repro.bench.figures import render_loglog
from repro.core.monitor import OfflineAnomalyMonitor
from repro.sim import SimConfig, Simulator
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload, ZipfianGenerator


class TestZipfian:
    def test_range(self):
        gen = ZipfianGenerator(100, 0.9, random.Random(0))
        values = gen.sample(5000)
        assert all(0 <= v < 100 for v in values)

    def test_skew_concentrates_on_small_ranks(self):
        gen = ZipfianGenerator(1000, 0.99, random.Random(1))
        values = gen.sample(10000)
        top10 = sum(1 for v in values if v < 10)
        assert top10 / len(values) > 0.3

    def test_lower_theta_less_skewed(self):
        def top1_share(theta):
            gen = ZipfianGenerator(500, theta, random.Random(2))
            values = gen.sample(8000)
            return sum(1 for v in values if v == 0) / len(values)

        assert top1_share(0.5) < top1_share(0.95)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0, 0.9)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, 1.0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, 0.0)


class TestYcsbWorkload:
    def test_mix_validation(self):
        with pytest.raises(ValueError):
            YcsbConfig(read=0.5, update=0.2, rmw=0.2)
        with pytest.raises(ValueError):
            YcsbConfig(records=2, keys_per_txn=3)

    def test_buus_touch_configured_key_count(self):
        workload = YcsbWorkload(YcsbConfig(records=50, keys_per_txn=3,
                                           read=0.0, update=0.0, rmw=1.0))
        for _ in range(20):
            buu = workload.make_buu()
            assert len(buu.reads) == 3

    def test_read_only_buus_write_nothing(self):
        workload = YcsbWorkload(YcsbConfig(read=1.0, update=0.0, rmw=0.0))
        buu = workload.make_buu()
        assert buu.run_compute({k: 1 for k in buu.reads}) == {}

    def test_update_buus_declare_writes(self):
        workload = YcsbWorkload(YcsbConfig(read=0.0, update=1.0, rmw=0.0))
        buu = workload.make_buu()
        assert not buu.reads
        assert buu.writes_hint
        writes = buu.run_compute({})
        assert set(writes) == set(buu.writes_hint)

    def test_runs_on_simulator(self):
        workload = YcsbWorkload(YcsbConfig(records=100, seed=3))
        sim = Simulator(SimConfig(num_workers=8, seed=3))
        assert sim.run(workload.buus(200)) == 200

    def test_skew_increases_anomalies(self):
        """Hot keys are where conflicts live: higher theta, more cycles."""

        def anomalies(theta):
            workload = YcsbWorkload(
                YcsbConfig(records=300, keys_per_txn=2, read=0.0,
                           update=0.0, rmw=1.0, theta=theta, seed=4)
            )
            offline = OfflineAnomalyMonitor()
            sim = Simulator(SimConfig(num_workers=16, seed=4,
                                      write_latency=100, compute_jitter=10),
                            listeners=[offline])
            sim.run(workload.buus(600))
            counts = offline.exact_counts()
            return counts.two_cycles + counts.three_cycles

        assert anomalies(0.5) < anomalies(0.95)


class TestRenderLoglog:
    def test_contains_title_and_legend(self):
        chart = render_loglog(
            "demo", [1, 10, 100],
            {"a": [1.0, 10.0, 100.0], "b": [100.0, 10.0, 1.0]},
        )
        assert chart.startswith("demo")
        assert "o=a" in chart and "x=b" in chart

    def test_drops_nonpositive_points(self):
        chart = render_loglog("demo", [1, 10], {"a": [0.0, 5.0]})
        assert chart.count("o") >= 1

    def test_empty_series(self):
        chart = render_loglog("demo", [1, 10], {"a": [0.0, 0.0]})
        assert "no positive data" in chart

    def test_grid_dimensions(self):
        chart = render_loglog("demo", [1, 100],
                              {"a": [2.0, 50.0]}, width=30, height=8)
        body = [line for line in chart.splitlines() if "|" in line]
        assert len(body) == 8
