"""Property tests for memory-optimized bookkeeping (Algorithm 2).

Histories come from the shared strategies in :mod:`tests.strategies`, so
a failing property shrinks to a minimal operation stream instead of an
opaque seed; example counts follow the profile registered in
:mod:`tests.conftest` (``HYPOTHESIS_PROFILE=fast|thorough``).
"""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.core.collector import BaselineCollector, DataCentricCollector
from repro.core.detector import CycleDetector
from repro.core.types import Operation, OpType

from tests.strategies import op_streams


def _edge_set(edges):
    return {(e.src, e.dst, e.kind, e.label) for e in edges}


@given(history=op_streams(max_ops=200, max_buus=15, max_keys=5),
       seed=st.integers(0, 10**6))
def test_huge_slot_array_equals_full_bookkeeping(history, seed):
    """With enough slots to hold every reader, MOB degenerates to the
    full readIDs set (modulo edge multiplicity, which dedup hides), and
    the ww-discard calibration never fires."""
    full = DataCentricCollector(sampling_rate=1, mob=False, seed=seed)
    mob = DataCentricCollector(sampling_rate=1, mob=True, seed=seed,
                               mob_slots=1000)
    assert _edge_set(mob.handle_all(history)) == \
        _edge_set(full.handle_all(history))
    assert mob.discarded_reads == 0


@given(history=op_streams(max_ops=250, max_buus=15, max_keys=6),
       seed=st.integers(0, 10**6), slots=st.integers(1, 4))
def test_mob_edges_are_subset_of_full(history, seed, slots):
    """MOB only ever drops information, never invents edges."""
    full = DataCentricCollector(sampling_rate=1, mob=False, seed=seed)
    mob = DataCentricCollector(sampling_rate=1, mob=True, seed=seed,
                               mob_slots=slots)
    assert _edge_set(mob.handle_all(history)) <= \
        _edge_set(full.handle_all(history))


@given(history=op_streams(max_ops=250, max_buus=12, max_keys=5),
       seed=st.integers(0, 10**6))
def test_mob_cycle_counts_bounded_by_full(history, seed):
    """Fewer edges can only mean fewer or equal detected cycles."""
    full_det = CycleDetector()
    full_det.add_edges(
        DataCentricCollector(sampling_rate=1, mob=False,
                             seed=seed).handle_all(history)
    )
    mob_det = CycleDetector()
    mob_det.add_edges(
        DataCentricCollector(sampling_rate=1, mob=True, seed=seed,
                             mob_slots=2).handle_all(history)
    )
    assert mob_det.counts.two_cycles <= full_det.counts.two_cycles
    assert mob_det.counts.three_cycles <= full_det.counts.three_cycles


@given(seed=st.integers(0, 10**6))
def test_rwrw_interleave_lossless_for_any_seed(seed):
    """The §5.2 design point: strict r/w interleavings per item lose
    nothing even with a single slot."""
    rng = random.Random(seed)
    ops = []
    seq = 0
    for buu in range(30):
        key = rng.randrange(3)
        seq += 1
        ops.append(Operation(OpType.READ, buu, key, seq))
        seq += 1
        ops.append(Operation(OpType.WRITE, buu, key, seq))
    full = BaselineCollector()
    mob = DataCentricCollector(sampling_rate=1, mob=True, seed=seed,
                               mob_slots=1)
    assert _edge_set(mob.handle_all(ops)) == _edge_set(full.handle_all(ops))
