"""Property tests for memory-optimized bookkeeping (Algorithm 2)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.collector import BaselineCollector, DataCentricCollector
from repro.core.detector import CycleDetector
from repro.core.types import Operation, OpType


def random_history(seed, n_ops, n_buus, n_keys):
    rng = random.Random(seed)
    ops = []
    for seq in range(1, n_ops + 1):
        kind = OpType.READ if rng.random() < 0.5 else OpType.WRITE
        ops.append(Operation(kind, rng.randrange(n_buus),
                             rng.randrange(n_keys), seq))
    return ops


@given(st.integers(0, 10**6))
@settings(max_examples=25, deadline=None)
def test_huge_slot_array_equals_full_bookkeeping(seed):
    """With enough slots to hold every reader, MOB degenerates to the
    full readIDs set (modulo edge multiplicity, which dedup hides), and
    the ww-discard calibration never fires."""
    history = random_history(seed, n_ops=200, n_buus=15, n_keys=5)
    full = DataCentricCollector(sampling_rate=1, mob=False, seed=seed)
    mob = DataCentricCollector(sampling_rate=1, mob=True, seed=seed,
                               mob_slots=1000)
    full_edges = {(e.src, e.dst, e.kind, e.label)
                  for e in full.handle_all(history)}
    mob_edges = {(e.src, e.dst, e.kind, e.label)
                 for e in mob.handle_all(history)}
    assert mob_edges == full_edges
    assert mob.discarded_reads == 0


@given(st.integers(0, 10**6), st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_mob_edges_are_subset_of_full(seed, slots):
    """MOB only ever drops information, never invents edges."""
    history = random_history(seed, n_ops=250, n_buus=15, n_keys=6)
    full = DataCentricCollector(sampling_rate=1, mob=False, seed=seed)
    mob = DataCentricCollector(sampling_rate=1, mob=True, seed=seed,
                               mob_slots=slots)
    full_edges = {(e.src, e.dst, e.kind, e.label)
                  for e in full.handle_all(history)}
    mob_edges = {(e.src, e.dst, e.kind, e.label)
                 for e in mob.handle_all(history)}
    assert mob_edges <= full_edges


@given(st.integers(0, 10**6))
@settings(max_examples=20, deadline=None)
def test_mob_cycle_counts_bounded_by_full(seed):
    """Fewer edges can only mean fewer or equal detected cycles."""
    history = random_history(seed, n_ops=250, n_buus=12, n_keys=5)
    full_det = CycleDetector()
    full_det.add_edges(
        DataCentricCollector(sampling_rate=1, mob=False,
                             seed=seed).handle_all(history)
    )
    mob_det = CycleDetector()
    mob_det.add_edges(
        DataCentricCollector(sampling_rate=1, mob=True, seed=seed,
                             mob_slots=2).handle_all(history)
    )
    assert mob_det.counts.two_cycles <= full_det.counts.two_cycles
    assert mob_det.counts.three_cycles <= full_det.counts.three_cycles


@given(st.integers(0, 10**6))
@settings(max_examples=20, deadline=None)
def test_rwrw_interleave_lossless_for_any_seed(seed):
    """The §5.2 design point: strict r/w interleavings per item lose
    nothing even with a single slot."""
    rng = random.Random(seed)
    ops = []
    seq = 0
    for buu in range(30):
        key = rng.randrange(3)
        seq += 1
        ops.append(Operation(OpType.READ, buu, key, seq))
        seq += 1
        ops.append(Operation(OpType.WRITE, buu, key, seq))
    full = BaselineCollector()
    mob = DataCentricCollector(sampling_rate=1, mob=True, seed=seed,
                               mob_slots=1)
    full_edges = {(e.src, e.dst, e.kind, e.label)
                  for e in full.handle_all(ops)}
    mob_edges = {(e.src, e.dst, e.kind, e.label)
                 for e in mob.handle_all(ops)}
    assert mob_edges == full_edges
