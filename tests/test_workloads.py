"""Tests for workloads: synthetic graph workload, datasets, bookstore."""

import random

import pytest

from repro.graph.random_graphs import preferential_attachment_graph
from repro.workloads.bookstore import Bookstore, BookstoreConfig
from repro.workloads.datasets import (
    REAL_GRAPH_SPECS,
    scaled_real_graph_standin,
    synthetic_click_dataset,
)
from repro.workloads.graph_workload import GraphWorkload, GraphWorkloadConfig
from repro.sim import SimConfig, Simulator


class TestPreferentialAttachment:
    def test_degree_close_to_target(self):
        graph = preferential_attachment_graph(2000, 10, rng=random.Random(0))
        assert graph.average_degree() == pytest.approx(10, rel=0.25)

    def test_heavy_tail(self):
        """Preferential attachment produces hubs: the max degree is far
        above the average."""
        graph = preferential_attachment_graph(2000, 10, rng=random.Random(0))
        max_degree = max(graph.degree(v) for v in range(graph.num_vertices))
        assert max_degree > 5 * graph.average_degree()

    def test_degree_lower_bound(self):
        graph = preferential_attachment_graph(
            500, 4, degree_lower_bound=5, rng=random.Random(1)
        )
        assert min(graph.degree(v) for v in range(graph.num_vertices)) >= 5

    def test_too_small(self):
        with pytest.raises(ValueError):
            preferential_attachment_graph(1, 5)


class TestGraphWorkload:
    def test_buu_reads_vertex_and_neighbors(self):
        workload = GraphWorkload(GraphWorkloadConfig(num_vertices=200, seed=2))
        buu = workload.make_buu()
        assert 1 <= len(buu.reads) <= 1 + workload.config.neighbor_cap
        vertex = buu.reads[0]
        neighbors = set(workload.graph.neighbors(vertex))
        assert all(r in neighbors for r in buu.reads[1:])

    def test_buus_runnable(self):
        workload = GraphWorkload(GraphWorkloadConfig(num_vertices=100, seed=3))
        sim = Simulator(SimConfig(num_workers=4, seed=0))
        assert sim.run(workload.buus(50)) == 50

    def test_default_writes_everything_read(self):
        workload = GraphWorkload(GraphWorkloadConfig(num_vertices=100, seed=4))
        for _ in range(20):
            buu = workload.make_buu()
            writes = buu.run_compute({k: 1.0 for k in buu.reads})
            assert set(writes) == set(buu.reads)

    def test_bounded_write_back(self):
        workload = GraphWorkload(
            GraphWorkloadConfig(num_vertices=100, seed=4, write_back=2)
        )
        for _ in range(20):
            buu = workload.make_buu()
            writes = buu.run_compute({k: 1.0 for k in buu.reads})
            assert set(writes) <= set(buu.reads)
            assert len(writes) <= 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GraphWorkloadConfig(num_vertices=1)
        with pytest.raises(ValueError):
            GraphWorkloadConfig(neighbor_cap=0)
        with pytest.raises(ValueError):
            GraphWorkloadConfig(write_back=0)


class TestDatasets:
    def test_real_graph_standins(self):
        for name in REAL_GRAPH_SPECS:
            graph = scaled_real_graph_standin(name, scale=2e-5)
            spec = REAL_GRAPH_SPECS[name]
            assert graph.num_vertices == max(100, int(spec["vertices"] * 2e-5))
            assert graph.average_degree() == pytest.approx(spec["degree"], rel=0.4)

    def test_unknown_standin(self):
        with pytest.raises(ValueError):
            scaled_real_graph_standin("orkut")

    def test_click_dataset_shape(self):
        ds = synthetic_click_dataset(100, 50, 4, rng=random.Random(0))
        assert len(ds.samples) == 100
        assert ds.num_features == 50
        for s in ds.samples:
            assert len(s.features) == 4
            assert s.label in (-1, 1)
            assert all(0 <= f < 50 for f in s.features)

    def test_click_labels_follow_planted_model(self):
        """Samples with a high planted score should mostly be positive."""
        ds = synthetic_click_dataset(2000, 30, 5, noise=0.0,
                                     rng=random.Random(7))
        agree = 0
        for s in ds.samples:
            z = sum(ds.true_weights[f] for f in s.features)
            predicted = 1 if z > 0 else -1
            agree += predicted == s.label
        assert agree / len(ds.samples) > 0.7


class TestBookstore:
    def test_serial_single_customer_no_violations(self):
        store = Bookstore(
            BookstoreConfig(num_books=30, customers=1, books_per_order=2,
                            initial_stock=5, seed=0),
        )
        counter = store.run(300)
        assert counter.violations == 0

    def test_concurrent_customers_violate(self):
        store = Bookstore(
            BookstoreConfig(num_books=10, customers=16, books_per_order=3,
                            initial_stock=3, think_time=50, seed=1),
            SimConfig(num_workers=16, seed=1, write_latency=300,
                      compute_jitter=50),
        )
        counter = store.run(1500)
        assert counter.violations > 0
        assert 0 < counter.violation_rate < 1

    def test_stock_never_negative_serially(self):
        store = Bookstore(
            BookstoreConfig(num_books=10, customers=1, books_per_order=1,
                            initial_stock=2, seed=2),
        )
        store.run(100)
        for key in store.items:
            assert store.simulator.store[key] >= 0

    def test_curator_resets(self):
        config = BookstoreConfig(num_books=5, customers=1, books_per_order=1,
                                 initial_stock=1, curator_interval=50, seed=3)
        store = Bookstore(config)
        store.run(200)
        # after the final curator sweep, every stock is positive
        assert all(store.simulator.store[k] > 0 for k in store.items)

    def test_violations_correlate_with_anomalies(self):
        """The Fig 11 relationship on two operating points."""
        from repro.core.config import RushMonConfig
        from repro.core.monitor import RushMon

        def run(latency):
            mon = RushMon(RushMonConfig(sampling_rate=1, mob=False))
            store = Bookstore(
                BookstoreConfig(num_books=10, customers=16, books_per_order=3,
                                initial_stock=3, seed=4),
                SimConfig(num_workers=16, seed=4, write_latency=latency,
                          compute_jitter=30),
            )
            store.simulator.subscribe(mon)
            counter = store.run(800)
            e2, e3 = mon.cumulative_estimates()
            return counter.violation_rate, e2 + e3

        calm_violations, calm_anomalies = run(0)
        wild_violations, wild_anomalies = run(500)
        assert wild_anomalies > calm_anomalies
        assert wild_violations >= calm_violations

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BookstoreConfig(num_books=0)
        with pytest.raises(ValueError):
            BookstoreConfig(num_books=5, books_per_order=6)
