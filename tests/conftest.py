"""Shared pytest configuration: hypothesis settings profiles.

Two profiles, selected with the ``HYPOTHESIS_PROFILE`` environment
variable (default ``fast``):

- ``fast`` — what CI tier-1 and the oracle job run: enough examples to
  exercise the strategies, cheap enough to keep wall time flat;
- ``thorough`` — the nightly setting: an order of magnitude more
  examples for the differential and checker property suites.

Tests that pin their own ``@settings(...)`` keep those values; the
profile governs everything else.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "fast",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "thorough",
    max_examples=300,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "fast"))
