"""Tests for the write-ahead log and the log-parser collector deployment."""

import io

import pytest

from repro.core.config import RushMonConfig
from repro.core.monitor import OfflineAnomalyMonitor, RushMon
from repro.sim import SimConfig, Simulator, read_modify_write
from repro.storage.wal import LogParser, WriteAheadLog


def _run_with_wal(buus=120, workers=8, latency=100, seed=3):
    handle = io.StringIO()
    wal = WriteAheadLog(handle)
    live = OfflineAnomalyMonitor()
    sim = Simulator(SimConfig(num_workers=workers, seed=seed,
                              write_latency=latency),
                    listeners=[wal, live])
    sim.run([read_modify_write([f"k{i % 6}"], lambda v: (v or 0) + 1)
             for i in range(buus)])
    return handle.getvalue(), live


class TestWriteAheadLog:
    def test_lsns_are_contiguous(self):
        log_text, _ = _run_with_wal()
        import json

        lsns = [json.loads(line)["lsn"] for line in log_text.splitlines()]
        assert lsns == list(range(1, len(lsns) + 1))

    def test_contains_lifecycle_and_ops(self):
        log_text, _ = _run_with_wal(buus=10)
        import json

        kinds = [json.loads(line)["kind"] for line in log_text.splitlines()]
        assert kinds.count("b") == 10
        assert kinds.count("c") == 10
        assert kinds.count("r") == 10
        assert kinds.count("w") == 10


class TestLogParser:
    def test_parsed_monitor_matches_live(self):
        """The paper's log-parser deployment: identical anomaly counts."""
        log_text, live = _run_with_wal()
        parsed = OfflineAnomalyMonitor()
        parser = LogParser([parsed])
        parser.feed(io.StringIO(log_text))
        assert parsed.exact_counts() == live.exact_counts()

    def test_parser_drives_rushmon_with_pruning(self):
        log_text, live = _run_with_wal()
        monitor = RushMon(RushMonConfig(sampling_rate=1, mob=False,
                                        pruning="both", prune_interval=30))
        LogParser([monitor]).feed(io.StringIO(log_text))
        exact = live.exact_counts()
        e2, e3 = monitor.cumulative_estimates()
        assert e2 == exact.two_cycles
        assert e3 == exact.three_cycles

    def test_incremental_tailing(self):
        log_text, live = _run_with_wal()
        lines = log_text.splitlines(keepends=True)
        parsed = OfflineAnomalyMonitor()
        parser = LogParser([parsed])
        cut = len(lines) // 2
        assert parser.feed(lines[:cut]) == cut
        assert parser.feed(lines[cut:]) == len(lines) - cut
        assert parsed.exact_counts() == live.exact_counts()
        assert parser.records_consumed == len(lines)

    def test_gap_detection(self):
        log_text, _ = _run_with_wal(buus=10)
        lines = log_text.splitlines(keepends=True)
        del lines[3]  # drop a record
        parser = LogParser([OfflineAnomalyMonitor()])
        with pytest.raises(ValueError, match="log gap"):
            parser.feed(lines)

    def test_unknown_kind_rejected(self):
        parser = LogParser([])
        with pytest.raises(ValueError):
            parser.feed(['{"lsn": 1, "kind": "z", "buu": 1, "seq": 1}'])

    def test_blank_lines_skipped(self):
        log_text, live = _run_with_wal(buus=20)
        noisy = log_text.replace("\n", "\n\n")
        parsed = OfflineAnomalyMonitor()
        LogParser([parsed]).feed(io.StringIO(noisy))
        assert parsed.exact_counts() == live.exact_counts()
