"""Tests for the RushMon facade and the offline baseline monitor."""

import pytest

from repro.core.config import RushMonConfig
from repro.core.monitor import OfflineAnomalyMonitor, RushMon
from repro.core.types import Operation, OpType
from repro.storage.history import (
    BuuProgram,
    interleaved_history,
    program,
    serial_history,
)
import random


def lost_update_ops():
    return [
        Operation(OpType.READ, 1, "x", 1),
        Operation(OpType.READ, 2, "x", 2),
        Operation(OpType.WRITE, 1, "x", 3),
        Operation(OpType.WRITE, 2, "x", 4),
    ]


class TestRushMon:
    def test_lost_update_detected(self):
        mon = RushMon(RushMonConfig(sampling_rate=1, mob=False))
        mon.begin_buu(1, 0)
        mon.begin_buu(2, 0)
        mon.on_operations(lost_update_ops())
        mon.commit_buu(1, 5)
        mon.commit_buu(2, 5)
        report = mon.close_window()
        assert report.estimated_2 == 1.0
        assert report.estimated_3 == 0.0
        assert report.operations == 4

    def test_window_resets(self):
        mon = RushMon(RushMonConfig(sampling_rate=1, mob=False))
        mon.begin_buu(1, 0)
        mon.begin_buu(2, 0)
        mon.on_operations(lost_update_ops())
        first = mon.close_window()
        second = mon.close_window()
        assert first.estimated_2 == 1.0
        assert second.estimated_2 == 0.0
        assert second.operations == 0
        assert second.window_start == first.window_end

    def test_cumulative_estimates_persist(self):
        mon = RushMon(RushMonConfig(sampling_rate=1, mob=False))
        mon.begin_buu(1, 0)
        mon.begin_buu(2, 0)
        mon.on_operations(lost_update_ops())
        mon.close_window()
        e2, e3 = mon.cumulative_estimates()
        assert e2 == 1.0 and e3 == 0.0

    def test_serial_history_zero_anomalies(self):
        programs = [
            program(i, ("r", "x"), ("r", "y"), ("w", "x"), ("w", "y"))
            for i in range(20)
        ]
        mon = RushMon(RushMonConfig(sampling_rate=1, mob=False))
        for op in serial_history(programs):
            mon.on_operation(op)
        report = mon.close_window()
        assert report.estimated_2 == 0.0
        assert report.estimated_3 == 0.0

    def test_reports_accumulate_in_history(self):
        mon = RushMon(RushMonConfig(sampling_rate=1, mob=False))
        mon.close_window()
        mon.close_window()
        assert len(mon.reports) == 2

    def test_edges_counted_per_window(self):
        mon = RushMon(RushMonConfig(sampling_rate=1, mob=False))
        mon.on_operations(lost_update_ops())
        report = mon.close_window()
        assert report.edges.total > 0

    def test_sampled_monitor_estimates_near_truth(self):
        """End to end: sampled monitor vs offline exact, averaged."""
        rng = random.Random(5)
        programs = []
        for buu in range(120):
            prog = BuuProgram(buu)
            for _ in range(4):
                key = rng.randrange(10)
                (prog.read if rng.random() < 0.5 else prog.write)(key)
            programs.append(prog)
        history = interleaved_history(programs, rng)

        offline = OfflineAnomalyMonitor()
        offline.on_operations(history)
        exact = offline.exact_counts()
        assert exact.two_cycles > 0

        trials = 200
        total = 0.0
        for seed in range(trials):
            mon = RushMon(RushMonConfig(sampling_rate=2, mob=False, seed=seed))
            mon.on_operations(history)
            e2, _ = mon.cumulative_estimates()
            total += e2
        assert total / trials == pytest.approx(exact.two_cycles, rel=0.15)

    def test_doctest_example(self):
        import doctest
        import repro.core.monitor as mod

        results = doctest.testmod(mod)
        assert results.failed == 0


class TestOfflineAnomalyMonitor:
    def test_exact_counts_on_lost_update(self):
        mon = OfflineAnomalyMonitor()
        mon.on_operations(lost_update_ops())
        counts = mon.exact_counts()
        assert counts.two_cycles == 1

    def test_serial_zero(self):
        programs = [program(i, ("r", "x"), ("w", "x")) for i in range(10)]
        mon = OfflineAnomalyMonitor()
        mon.on_operations(serial_history(programs))
        counts = mon.exact_counts()
        assert counts.two_cycles == 0 and counts.three_cycles == 0


class TestConfigValidation:
    def test_bad_sampling_rate(self):
        with pytest.raises(ValueError):
            RushMonConfig(sampling_rate=0)

    def test_bad_prune_interval(self):
        with pytest.raises(ValueError):
            RushMonConfig(prune_interval=0)

    def test_bad_resample_interval(self):
        with pytest.raises(ValueError):
            RushMonConfig(resample_interval=0)

    def test_defaults(self):
        config = RushMonConfig()
        assert config.sampling_rate == 20
        assert config.mob is True
        assert config.pruning == "both"
