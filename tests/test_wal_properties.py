"""Property tests for the durable checkpoint format (``repro.storage.wal``).

The crash-recovery story leans entirely on one promise: a checkpoint
either restores exactly what was saved or raises
:class:`~repro.storage.wal.CheckpointError` — never a silently wrong
monitor.  Hypothesis hammers that promise from both sides:

- round trip: ``load_checkpoint(save_checkpoint(p)) == p`` for arbitrary
  JSON-shaped payloads;
- truncation: cutting the file anywhere (a crashed writer, a partial
  copy) is *detected*;
- bit rot: flipping any single bit anywhere in the file either raises or
  restores a payload *equal to what was saved* (UTF-8 decode failure,
  JSON parse failure, format/version mismatch, or the payload CRC — one
  of the layers catches any flip that changes the decoded payload).
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st
import pytest

from repro.storage.wal import CheckpointError, load_checkpoint, save_checkpoint

# JSON-shaped payloads: what the service actually checkpoints (nested
# dicts/lists of strings and ints).  Floats are excluded on purpose —
# JSON round-trips them, but NaN/inf do not belong in a checkpoint.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.text(max_size=20),
)
_payloads = st.dictionaries(
    st.text(max_size=10),
    st.recursive(
        _scalars,
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(max_size=10), children, max_size=4),
        ),
        max_leaves=8,
    ),
    max_size=6,
)


@settings(max_examples=60, deadline=None)
@given(payload=_payloads)
def test_checkpoint_round_trips_arbitrary_payloads(tmp_path_factory, payload):
    path = tmp_path_factory.mktemp("ckpt") / "roundtrip.ckpt"
    save_checkpoint(path, payload)
    assert load_checkpoint(path) == payload


@settings(max_examples=60, deadline=None)
@given(payload=_payloads, data=st.data())
def test_any_truncation_is_detected(tmp_path_factory, payload, data):
    """A checkpoint cut short anywhere — crashed writer, torn copy —
    must raise, not restore a prefix."""
    path = tmp_path_factory.mktemp("ckpt") / "truncated.ckpt"
    save_checkpoint(path, payload)
    raw = path.read_bytes()
    cut = data.draw(st.integers(min_value=0, max_value=len(raw) - 1),
                    label="cut")
    path.write_bytes(raw[:cut])
    with pytest.raises(CheckpointError):
        load_checkpoint(path)


@settings(max_examples=120, deadline=None)
@given(payload=_payloads, data=st.data())
def test_any_single_bit_flip_never_restores_wrong_state(tmp_path_factory,
                                                        payload, data):
    """One flipped bit anywhere in the file — the classic bit-rot /
    torn-sector failure — must never restore a *different* payload.
    Either some layer raises (UTF-8 decode, JSON parse, format/version
    check, payload CRC), or the load succeeds with a payload equal to
    what was saved.  The success branch is real, not a loophole: JSON
    has representational slack (``\\u00B4`` vs ``\\u00b4``, say), so a
    flip can change bytes without changing the decoded document — and
    the CRC is over the canonical re-serialization precisely so that
    such flips don't brick an otherwise-intact checkpoint."""
    path = tmp_path_factory.mktemp("ckpt") / "bitrot.ckpt"
    save_checkpoint(path, payload)
    raw = bytearray(path.read_bytes())
    index = data.draw(st.integers(min_value=0, max_value=len(raw) - 1),
                      label="byte")
    bit = data.draw(st.integers(min_value=0, max_value=7), label="bit")
    raw[index] ^= 1 << bit
    path.write_bytes(bytes(raw))
    try:
        restored = load_checkpoint(path)
    except CheckpointError:
        return
    assert restored == payload


def test_bit_flip_inside_a_string_value_is_detected(tmp_path):
    """The sharpest case, pinned deterministically: a flip *inside a
    JSON string value* keeps the document parseable — only the payload
    CRC can catch it."""
    path = tmp_path / "string-flip.ckpt"
    save_checkpoint(path, {"session": "abcdef", "high": 7})
    raw = bytearray(path.read_bytes())
    at = bytes(raw).index(b"abcdef") + 2
    raw[at] ^= 0x01  # 'c' -> 'b': still printable ASCII, still JSON
    path.write_bytes(bytes(raw))
    assert b"abbdef" in bytes(raw)
    with pytest.raises(CheckpointError, match="CRC"):
        load_checkpoint(path)


def test_truncation_to_empty_and_garbage_are_detected(tmp_path):
    path = tmp_path / "empty.ckpt"
    path.write_bytes(b"")
    with pytest.raises(CheckpointError):
        load_checkpoint(path)
    path.write_bytes(b"\xff\xfe not a checkpoint")
    with pytest.raises(CheckpointError):
        load_checkpoint(path)
