"""Concurrency stress tests for the sharded collector + service.

The heavyweight test pushes 8 real threads x ~5k operations each through
:class:`~repro.core.concurrent.RushMonService` with the interleaving
recorder on, then checks the whole contract at once: no exceptions, no
deadlock (join timeout), clean shutdown, every submitted event
processed, and — the differential invariant — replaying the recorded
serialized trace through the offline baseline reproduces the service's
counts bit-exactly.  The interleaving itself is nondeterministic; the
invariant must hold for *any* interleaving, and the recorder makes each
run auditable after the fact.

Marked ``stress`` so CI can rerun the module back-to-back (3 consecutive
passes are required by the acceptance criteria).
"""

import random
import threading

import pytest

from repro.core.concurrent import RushMonService, ShardedCollector
from repro.core.config import RushMonConfig
from repro.core.monitor import OfflineAnomalyMonitor
from repro.core.types import Operation, OpType
from repro.sim.buu import read_modify_write
from repro.sim.scheduler import ThreadedWorkloadDriver

from tests.histgen import skewed_key

pytestmark = pytest.mark.stress


def _workload(num_buus, num_keys, touch, seed, skew=1.5):
    rng = random.Random(seed)
    return [
        read_modify_write(
            list({skewed_key(rng, num_keys, skew) for _ in range(touch)}),
            lambda v: (v or 0) + 1,
        )
        for _ in range(num_buus)
    ]


def _run_stress(num_threads, ops_per_thread, num_keys, seed):
    touch = 4  # 2 reads + 2 writes per key pair -> 8 ops per BUU
    num_buus = num_threads * ops_per_thread // (2 * touch)
    workload = _workload(num_buus, num_keys, touch, seed)
    service = RushMonService(
        RushMonConfig(sampling_rate=1, mob=False, pruning="both", seed=seed,
                      num_shards=8, detect_interval=0.005),
        record_trace=True,
    )
    driver = ThreadedWorkloadDriver(
        [service], num_threads=num_threads, seed=seed,
        yield_every=17, join_timeout=60.0,
    )
    with service:
        driver.run(workload)
    assert not service.running, "detection thread failed to stop"
    return service, driver


def _assert_differential(service, driver):
    # Every submitted event reached the detector: ops + one begin and one
    # commit per BUU.
    expected_events = driver.ops_emitted + 2 * driver.buus_completed
    assert service.processed_events == expected_events
    assert service.collector.ops_seen == driver.ops_emitted

    counts = service.counts()
    replayed = OfflineAnomalyMonitor()
    service.serialized_trace().replay([replayed])
    assert replayed.exact_counts() == counts

    # Window reports partition the cumulative counts exactly.
    assert sum(r.raw.two_cycles for r in service.reports) == counts.two_cycles
    assert sum(r.raw.three_cycles for r in service.reports) == counts.three_cycles
    assert sum(r.operations for r in service.reports) == driver.ops_emitted

    # The observability snapshot reconciles exactly with the service's
    # own counters: metrics are a second bookkeeping path over the same
    # events, so after drain any disagreement is a lost update.
    snap = service.metrics.snapshot()
    assert snap["rushmon_service_events_processed_total"] == \
        service.processed_events
    assert snap["rushmon_service_passes_total"] == service.passes
    assert snap["rushmon_service_reports_total"] == len(service.reports)
    assert snap["rushmon_service_pass_seconds"]["count"] == service.passes
    assert snap["rushmon_collector_ops_total"] == driver.ops_emitted
    assert snap["rushmon_collector_lifecycle_events_total"] == \
        2 * driver.buus_completed
    assert snap["rushmon_collector_edges_total"] == service.collector.stats.total


def test_stress_8_threads_5k_ops():
    """8 threads x ~5k ops with a hot key space: heavy shard contention,
    many real anomalies, exact differential match."""
    service, driver = _run_stress(num_threads=8, ops_per_thread=5000,
                                  num_keys=512, seed=101)
    _assert_differential(service, driver)
    # With 8 unsynchronized writers on a skewed key space the run must
    # actually produce anomalies — otherwise the stress is vacuous.
    assert service.counts().two_cycles > 0


def test_stress_small_shard_count():
    """num_shards=1 degenerates to a single global lock — the ordering
    invariants must not depend on shard granularity."""
    workload = _workload(400, 32, 3, seed=7)
    service = RushMonService(
        RushMonConfig(sampling_rate=1, mob=False, seed=7, num_shards=1,
                      detect_interval=0.005),
        record_trace=True,
    )
    driver = ThreadedWorkloadDriver([service], num_threads=4, seed=7,
                                    yield_every=5, join_timeout=60.0)
    with service:
        driver.run(workload)
    _assert_differential(service, driver)


def test_stress_sampled_and_mob():
    """sr>1 + MOB under threads: no crashes, clean drain, events conserved
    (counts are sampled, so no exactness claim — that is sr=1's job)."""
    workload = _workload(600, 64, 4, seed=13)
    service = RushMonService(
        RushMonConfig(sampling_rate=4, mob=True, seed=13, num_shards=8,
                      detect_interval=0.005),
    )
    driver = ThreadedWorkloadDriver([service], num_threads=8, seed=13,
                                    yield_every=11, join_timeout=60.0)
    with service:
        driver.run(workload)
    assert service.processed_events == (
        driver.ops_emitted + 2 * driver.buus_completed
    )
    e2, e3 = service.cumulative_estimates()
    assert e2 >= 0.0 and e3 >= 0.0


def test_raw_sharded_collector_hammer():
    """Bypass the service: many threads hammering ShardedCollector
    directly on overlapping keys must never corrupt shard state (edge
    and op conservation)."""
    collector = ShardedCollector(sampling_rate=1, mob=False, num_shards=4)
    num_threads, per_thread = 8, 2000
    errors = []

    def worker(tid):
        rng = random.Random(tid)
        try:
            for i in range(per_thread):
                buu = tid * 1_000_000 + i
                key = f"k{rng.randrange(64)}"
                op = OpType.READ if rng.random() < 0.5 else OpType.WRITE
                collector.handle(Operation(op, buu, key, i))
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(t,), daemon=True)
               for t in range(num_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60.0)
        assert not thread.is_alive(), "collector worker deadlocked"
    assert not errors
    assert collector.ops_seen == num_threads * per_thread
    assert collector.touches == num_threads * per_thread
    merged = collector.merged()
    assert merged.touches == collector.touches
    assert merged.num_items <= 64


def test_service_stop_is_idempotent_and_terminal():
    """stop() after stop() is safe; stop() is terminal — the final drain
    already ran, so late ingestion and window closes are refused loudly
    instead of silently post-dating the final counts."""
    service = RushMonService(RushMonConfig(sampling_rate=1, mob=False))
    service.start()
    service.on_operation(Operation(OpType.WRITE, 1, "x", 1))
    service.stop()
    first = service.processed_events
    assert first >= 1
    assert service.stop() is service.latest_report()  # idempotent
    with pytest.raises(RuntimeError, match="stopped"):
        service.on_operation(Operation(OpType.WRITE, 2, "x", 2))
    with pytest.raises(RuntimeError, match="stopped"):
        service.close_window()
    assert service.processed_events == first
