"""Unbiasedness tests for the Theorem 5.2 estimators."""

import random

import pytest

from repro.core.collector import BaselineCollector, DataCentricCollector
from repro.core.detector import CycleDetector
from repro.core.estimator import (
    estimate_edge_sampled_three_cycles,
    estimate_edge_sampled_two_cycles,
    estimate_three_cycles,
    estimate_two_cycles,
)
from repro.core.types import CycleCounts, Operation, OpType
from repro.graph.cycles import count_labelled_short_cycles
from repro.graph.dependency import DependencyGraph


def test_estimate_identity_at_rate_one():
    counts = CycleCounts(ss=3, dd=2, sss=1, ssd=4, ddd=5)
    assert estimate_two_cycles(counts, 1.0) == 5
    assert estimate_three_cycles(counts, 1.0) == 10


def test_example_5_3():
    """The paper's worked example: one dd 2-cycle at p=0.5 gives E2=4."""
    counts = CycleCounts(dd=1)
    assert estimate_two_cycles(counts, 0.5) == 4.0
    assert estimate_three_cycles(counts, 0.5) == 0.0


def test_label_class_weighting():
    # ss cycles need one coin (1/p); dd need two (1/p^2).
    assert estimate_two_cycles(CycleCounts(ss=1), 0.1) == pytest.approx(10)
    assert estimate_two_cycles(CycleCounts(dd=1), 0.1) == pytest.approx(100)
    assert estimate_three_cycles(CycleCounts(sss=1), 0.1) == pytest.approx(10)
    assert estimate_three_cycles(CycleCounts(ssd=1), 0.1) == pytest.approx(100)
    assert estimate_three_cycles(CycleCounts(ddd=1), 0.1) == pytest.approx(1000)


@pytest.mark.parametrize("probability", [0.0, -0.5, 1.5])
def test_invalid_probability(probability):
    with pytest.raises(ValueError):
        estimate_two_cycles(CycleCounts(), probability)
    with pytest.raises(ValueError):
        estimate_edge_sampled_two_cycles(CycleCounts(), probability)


def _conflict_history(seed, n_ops, n_buus, n_keys):
    rng = random.Random(seed)
    ops = []
    for seq in range(1, n_ops + 1):
        kind = OpType.READ if rng.random() < 0.5 else OpType.WRITE
        ops.append(Operation(kind, rng.randrange(n_buus), rng.randrange(n_keys), seq))
    return ops


class TestUnbiasednessOverItemSamples:
    """Average the DCS estimate over many independent item samples and
    compare with the exact count — the defining property of Theorem 5.2."""

    @pytest.mark.parametrize("sampling_rate", [2, 4])
    def test_two_and_three_cycles(self, sampling_rate):
        history = _conflict_history(seed=123, n_ops=600, n_buus=25, n_keys=10)
        baseline_edges = BaselineCollector().handle_all(history)
        offline = DependencyGraph()
        offline.add_edges(baseline_edges)
        exact = count_labelled_short_cycles(offline)
        assert exact.two_cycles > 0 and exact.three_cycles > 0

        trials = 400
        total_e2 = total_e3 = 0.0
        for trial in range(trials):
            dcs = DataCentricCollector(
                sampling_rate=sampling_rate, mob=False, seed=trial
            )
            det = CycleDetector()
            det.add_edges(dcs.handle_all(history))
            p = dcs.sampling_probability
            total_e2 += estimate_two_cycles(det.counts, p)
            total_e3 += estimate_three_cycles(det.counts, p)
        assert total_e2 / trials == pytest.approx(exact.two_cycles, rel=0.12)
        assert total_e3 / trials == pytest.approx(exact.three_cycles, rel=0.2)

    def test_materialized_sample_unbiased(self):
        """Same property with an exact-size materialized item sample."""
        history = _conflict_history(seed=9, n_ops=600, n_buus=25, n_keys=12)
        offline = DependencyGraph()
        offline.add_edges(BaselineCollector().handle_all(history))
        exact = count_labelled_short_cycles(offline)

        trials = 400
        total_e2 = 0.0
        for trial in range(trials):
            dcs = DataCentricCollector(
                sampling_rate=3, mob=False, seed=trial, items=range(12)
            )
            det = CycleDetector()
            det.add_edges(dcs.handle_all(history))
            total_e2 += estimate_two_cycles(det.counts, dcs.sampling_probability)
        assert total_e2 / trials == pytest.approx(exact.two_cycles, rel=0.15)


class TestEdgeSampledEstimator:
    def test_independent_weighting(self):
        counts = CycleCounts(ss=1, dd=1, sss=1, ssd=1, ddd=1)
        # every 2-cycle is 1/p^2 regardless of labels
        assert estimate_edge_sampled_two_cycles(counts, 0.5) == pytest.approx(8)
        assert estimate_edge_sampled_three_cycles(counts, 0.5) == pytest.approx(24)

    def test_unbiased_for_edge_sampling(self):
        from repro.core.collector import EdgeSamplingCollector

        history = _conflict_history(seed=77, n_ops=600, n_buus=25, n_keys=10)
        offline = DependencyGraph()
        offline.add_edges(BaselineCollector().handle_all(history))
        exact = count_labelled_short_cycles(offline)
        assert exact.two_cycles > 0

        trials = 500
        total = 0.0
        for trial in range(trials):
            es = EdgeSamplingCollector(sampling_rate=2, rng=random.Random(trial))
            det = CycleDetector()
            det.add_edges(es.handle_all(history))
            total += estimate_edge_sampled_two_cycles(
                det.counts, es.sampling_probability
            )
        assert total / trials == pytest.approx(exact.two_cycles, rel=0.12)
