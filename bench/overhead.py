#!/usr/bin/env python
"""Runner for the monitoring-overhead harness.

Usage:  python bench/overhead.py [--quick] [--buus N] [--threads N] ...

Equivalent to ``PYTHONPATH=src python -m repro.bench.overhead``; this
wrapper just makes the src layout importable when invoked from the repo
root.  Results land in ``benchmarks/results/overhead.txt``.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.overhead import main  # noqa: E402

if __name__ == "__main__":
    main()
