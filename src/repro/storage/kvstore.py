"""A minimal instrumented in-memory key-value store.

The shared storage of Fig 4: workers read and write named items; every
operation that becomes *visible* is forwarded, in visibility order, to
subscribed listeners — the paper's collector sits exactly at this point
("the col is an inner component of the storage").

Direct use of this class gives the zero-latency, immediately-visible
semantics; the simulator (:mod:`repro.sim.scheduler`) layers delayed
write visibility and staleness on top and drives the same listener
protocol itself.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.core.types import BuuId, Key, Operation, OpType

#: A listener receives every visible operation, in order.
OperationListener = Callable[[Operation], None]


class KVStore:
    """Dict-backed store that notifies listeners of every operation."""

    def __init__(self, initial: dict[Key, Any] | None = None) -> None:
        self._data: dict[Key, Any] = dict(initial or {})
        self._listeners: list[OperationListener] = []
        self._seq = 0

    def subscribe(self, listener: OperationListener) -> None:
        self._listeners.append(listener)

    def subscribe_monitor(self, monitor) -> None:
        """Subscribe anything exposing ``on_operation`` (e.g. RushMon)."""
        self.subscribe(monitor.on_operation)

    @property
    def seq(self) -> int:
        """The logical clock: one tick per visible operation."""
        return self._seq

    def read(self, buu: BuuId, key: Key) -> Any:
        self._seq += 1
        self._notify(Operation(OpType.READ, buu, key, self._seq))
        return self._data.get(key)

    def write(self, buu: BuuId, key: Key, value: Any) -> None:
        self._seq += 1
        self._data[key] = value
        self._notify(Operation(OpType.WRITE, buu, key, self._seq))

    def peek(self, key: Key) -> Any:
        """Read without generating an operation (for analysis code)."""
        return self._data.get(key)

    def snapshot(self) -> dict[Key, Any]:
        return dict(self._data)

    def keys(self) -> Iterable[Key]:
        return self._data.keys()

    def _notify(self, op: Operation) -> None:
        for listener in self._listeners:
            listener(op)
