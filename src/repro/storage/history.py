"""Operation histories: construction helpers and analysis.

A *history* is a list of :class:`~repro.core.types.Operation` in storage
visibility order — the exact input a collector consumes.  This module
provides builders used throughout the tests and benches (serial and
randomly interleaved executions of BUU programs) and the combinatorial
helper behind Theorem B.1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.types import BuuId, Key, Operation, OpType


@dataclass
class BuuProgram:
    """A BUU as a plain sequence of (op type, key) steps."""

    buu: BuuId
    steps: list[tuple[OpType, Key]] = field(default_factory=list)

    def read(self, key: Key) -> "BuuProgram":
        self.steps.append((OpType.READ, key))
        return self

    def write(self, key: Key) -> "BuuProgram":
        self.steps.append((OpType.WRITE, key))
        return self


def program(buu: BuuId, *steps: tuple[str, Key]) -> BuuProgram:
    """Shorthand: ``program(1, ("r", "x"), ("w", "x"))``."""
    prog = BuuProgram(buu)
    for kind, key in steps:
        if kind == "r":
            prog.read(key)
        elif kind == "w":
            prog.write(key)
        else:
            raise ValueError(f"unknown op kind {kind!r}")
    return prog


def serial_history(programs: Sequence[BuuProgram]) -> list[Operation]:
    """Execute programs one after another — a serializable history."""
    ops: list[Operation] = []
    seq = 0
    for prog in programs:
        for op_type, key in prog.steps:
            seq += 1
            ops.append(Operation(op_type, prog.buu, key, seq))
    return ops


def interleaved_history(
    programs: Sequence[BuuProgram], rng: random.Random | None = None
) -> list[Operation]:
    """Randomly interleave programs step by step (uniform over merges)."""
    rng = rng or random.Random(0)
    cursors = [0] * len(programs)
    remaining = [len(p.steps) for p in programs]
    ops: list[Operation] = []
    seq = 0
    total = sum(remaining)
    while len(ops) < total:
        # Choose a program weighted by remaining steps: uniform over merges.
        pick = rng.randrange(sum(remaining))
        for idx, count in enumerate(remaining):
            if pick < count:
                break
            pick -= count
        prog = programs[idx]
        op_type, key = prog.steps[cursors[idx]]
        cursors[idx] += 1
        remaining[idx] -= 1
        seq += 1
        ops.append(Operation(op_type, prog.buu, key, seq))
    return ops


def lifecycle_bounds(ops: Iterable[Operation]) -> dict[BuuId, tuple[int, int]]:
    """(start, commit) per BUU: first and last operation sequence numbers."""
    bounds: dict[BuuId, tuple[int, int]] = {}
    for op in ops:
        lo, hi = bounds.get(op.buu, (op.seq, op.seq))
        bounds[op.buu] = (min(lo, op.seq), max(hi, op.seq))
    return bounds


def count_consecutive_write_pairs(ops: Sequence[Operation]) -> int:
    """Number of adjacent (write, write) pairs in a history.

    Theorem B.1: for a uniformly random permutation of n reads and n
    writes, the expectation of this count is (n - 1) / 2 — the fact
    behind MOB's claim that few reads sit between consecutive writes.
    """
    return sum(
        1
        for first, second in zip(ops, ops[1:])
        if first.is_write() and second.is_write()
    )


def random_rw_permutation(
    num_reads: int, num_writes: int, rng: random.Random, key: Key = "d"
) -> list[Operation]:
    """A uniformly random single-item history of reads and writes."""
    kinds = [OpType.READ] * num_reads + [OpType.WRITE] * num_writes
    rng.shuffle(kinds)
    return [Operation(kind, buu=i, key=key, seq=i + 1) for i, kind in enumerate(kinds)]
