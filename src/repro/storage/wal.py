"""Write-ahead log, log-parser collector deployment (§4.1), and
monitor checkpoints.

The paper lists three ways to deploy the collector: "middle-ware, a
plug-in of the storage layer, or a log parser, which extracts read/write
information from the storage log".  The other modules implement the
plug-in style (listeners on the storage/simulator); this module
implements the log-parser style:

- :class:`WriteAheadLog` — an append-only binary-ish record log the
  storage writes every operation to (here: length-prefixed JSON lines,
  with an explicit LSN per record);
- :class:`LogParser` — tails a log and feeds the reconstructed
  operations to any monitor, possibly long after the fact and from a
  different process.

A log-parsed monitor sees exactly the stream a plug-in monitor sees, so
the two deployments produce identical anomaly counts — tested.

This module also owns the durable **checkpoint** format the concurrent
service uses for crash recovery (:func:`save_checkpoint` /
:func:`load_checkpoint` plus the detector/window/report codecs).  A
checkpoint is a single JSON document with an explicit format tag,
version and CRC, written atomically (temp file + ``os.replace``) so a
crash mid-write leaves the previous checkpoint intact, and a truncated
or corrupted file is *detected* (:class:`CheckpointError`) rather than
restored into a silently wrong monitor.
"""

from __future__ import annotations

import heapq
import json
import os
import zlib
from collections import Counter
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.core.patterns import AnomalyPattern, PatternCounts
from repro.core.types import (
    AnomalyReport,
    CycleCounts,
    EdgeStats,
    EdgeType,
    Operation,
    OpType,
)


class WriteAheadLog:
    """Append-only operation log with monotone LSNs.

    Records: ``{"lsn": 17, "kind": "r"|"w"|"b"|"c", "buu": 3,
    "key": "x", "seq": 12}`` — ``b``/``c`` are BUU begin/commit marks so
    a parser can also reconstruct lifecycle for the pruners.
    """

    def __init__(self, handle: IO[str]) -> None:
        self._handle = handle
        self.lsn = 0

    # -- simulator/storage listener protocol ---------------------------------

    def on_operation(self, op: Operation) -> None:
        self._append({"kind": op.op.value, "buu": op.buu, "key": op.key,
                      "seq": op.seq})

    def begin_buu(self, buu: int, time: int) -> None:
        self._append({"kind": "b", "buu": buu, "seq": time})

    def commit_buu(self, buu: int, time: int) -> None:
        self._append({"kind": "c", "buu": buu, "seq": time})

    def _append(self, record: dict) -> None:
        self.lsn += 1
        record["lsn"] = self.lsn
        self._handle.write(json.dumps(record) + "\n")

    def flush(self) -> None:
        self._handle.flush()


class LogRecord:
    """One parsed log record."""

    __slots__ = ("lsn", "kind", "buu", "key", "seq")

    def __init__(self, lsn: int, kind: str, buu: int, key, seq: int) -> None:
        self.lsn = lsn
        self.kind = kind
        self.buu = buu
        self.key = key
        self.seq = seq

    def to_operation(self) -> Operation:
        assert self.kind in ("r", "w")
        return Operation(OpType(self.kind), self.buu, self.key, self.seq)


class LogParser:
    """Reads a WAL and drives monitors with the reconstructed stream.

    ``feed`` can be called repeatedly as the log grows (tailing); the
    parser remembers the last LSN it consumed and rejects gaps, so a
    truncated or reordered log is detected rather than silently
    miscounted.
    """

    def __init__(self, listeners: Iterable) -> None:
        self.listeners = list(listeners)
        self.last_lsn = 0
        self.records_consumed = 0

    def parse(self, lines: Iterable[str]) -> Iterator[LogRecord]:
        for line in lines:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            record = LogRecord(raw["lsn"], raw["kind"], raw["buu"],
                               raw.get("key"), raw["seq"])
            if record.kind not in ("r", "w", "b", "c"):
                raise ValueError(f"unknown record kind {record.kind!r}")
            if record.lsn != self.last_lsn + 1:
                raise ValueError(
                    f"log gap: expected lsn {self.last_lsn + 1}, "
                    f"got {record.lsn}"
                )
            self.last_lsn = record.lsn
            yield record

    def feed(self, lines: Iterable[str]) -> int:
        """Consume log lines, forwarding to the listeners; returns the
        number of records processed."""
        count = 0
        for record in self.parse(lines):
            count += 1
            for listener in self.listeners:
                if record.kind in ("r", "w"):
                    handler = getattr(listener, "on_operation", None)
                    if handler is not None:
                        handler(record.to_operation())
                elif record.kind == "b":
                    handler = getattr(listener, "begin_buu", None)
                    if handler is not None:
                        handler(record.buu, record.seq)
                elif record.kind == "c":
                    handler = getattr(listener, "commit_buu", None)
                    if handler is not None:
                        handler(record.buu, record.seq)
        self.records_consumed += count
        return count

    def feed_file(self, path: str | Path) -> int:
        with open(path) as handle:
            return self.feed(handle)


# ---------------------------------------------------------------------------
# Checkpoints: durable snapshots of a running monitor's state.
# ---------------------------------------------------------------------------

#: Format tag stamped into every checkpoint file.
CHECKPOINT_FORMAT = "rushmon-checkpoint"
#: Bump on any incompatible payload change.
CHECKPOINT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint file is missing, corrupt, or incompatible."""


def save_checkpoint(path: str | Path, payload: dict) -> None:
    """Atomically persist ``payload`` (a JSON-serializable dict).

    The document carries a CRC over the canonical payload encoding; the
    write goes to a sibling temp file and is moved into place with
    ``os.replace``, so readers only ever see either the old complete
    checkpoint or the new complete checkpoint.
    """
    path = Path(path)
    body = json.dumps(payload, sort_keys=True)
    document = json.dumps(
        {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "crc": zlib.crc32(body.encode()),
            "payload": payload,
        },
        sort_keys=True,
    )
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as handle:
        handle.write(document)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def load_checkpoint(path: str | Path) -> dict:
    """Read and verify a checkpoint; returns its payload.

    Raises :class:`CheckpointError` on a missing file, non-checkpoint
    content, version mismatch, or CRC failure — a half-written or
    bit-rotted checkpoint must never be restored.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            raw_bytes = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    # Decode explicitly: a flipped bit can make the file invalid UTF-8,
    # and that is corruption (CheckpointError), not a caller bug.
    try:
        raw = raw_bytes.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {path} is not valid UTF-8 (bit rot?)"
        ) from exc
    try:
        document = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {path} is not valid JSON (truncated write?)"
        ) from exc
    if not isinstance(document, dict) or document.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(f"{path} is not a {CHECKPOINT_FORMAT} file")
    if document.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {document.get('version')}, "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    payload = document.get("payload")
    body = json.dumps(payload, sort_keys=True)
    if zlib.crc32(body.encode()) != document.get("crc"):
        raise CheckpointError(f"checkpoint {path} failed its CRC check")
    return payload


# -- shard snapshots: the same checkpoint discipline, shipped in memory -------

#: Format tag stamped into every cluster shard snapshot.
SHARD_SNAPSHOT_FORMAT = "rushmon-shard-snapshot"
#: Bump on any incompatible shard-snapshot payload change.
SHARD_SNAPSHOT_VERSION = 1


def encode_shard_snapshot(payload: dict) -> dict:
    """Wrap a cluster worker's shard state in the checkpoint envelope
    (format tag + version + CRC over the canonical payload encoding).

    Unlike :func:`save_checkpoint` the document never touches disk — it
    ships router-ward over the cluster control link — but the router
    applies the same trust rule: a snapshot that fails verification is
    *rejected*, never restored into a respawned worker.
    """
    body = json.dumps(payload, sort_keys=True)
    return {
        "format": SHARD_SNAPSHOT_FORMAT,
        "version": SHARD_SNAPSHOT_VERSION,
        "crc": zlib.crc32(body.encode()),
        "payload": payload,
    }


def decode_shard_snapshot(document: dict) -> dict:
    """Verify a shard-snapshot document and return its payload.

    Raises :class:`CheckpointError` on a foreign document, version
    mismatch, or CRC failure — a corrupted snapshot must never seed a
    respawned worker (the router falls back to its previous snapshot,
    or to a full journal replay).
    """
    if (
        not isinstance(document, dict)
        or document.get("format") != SHARD_SNAPSHOT_FORMAT
    ):
        raise CheckpointError(
            f"not a {SHARD_SNAPSHOT_FORMAT} document"
        )
    if document.get("version") != SHARD_SNAPSHOT_VERSION:
        raise CheckpointError(
            f"shard snapshot has version {document.get('version')}, "
            f"this build reads version {SHARD_SNAPSHOT_VERSION}"
        )
    payload = document.get("payload")
    body = json.dumps(payload, sort_keys=True)
    if zlib.crc32(body.encode()) != document.get("crc"):
        raise CheckpointError("shard snapshot failed its CRC check")
    return payload


# -- codecs: detector / window / report state <-> JSON-friendly dicts --------
#
# Duck-typed on the core objects (a checkpoint is storage's concern, so
# the codecs live here; repro.core never imports repro.storage).


def _encode_counts(counts: CycleCounts) -> list[int]:
    return [counts.ss, counts.dd, counts.sss, counts.ssd, counts.ddd]


def _decode_counts(record: list) -> CycleCounts:
    return CycleCounts(*record)


def _encode_edge_stats(stats: EdgeStats) -> list[int]:
    return [stats.wr, stats.ww, stats.rw]


def _decode_edge_stats(record: list) -> EdgeStats:
    return EdgeStats(*record)


def _encode_patterns(patterns: PatternCounts) -> list[list]:
    return [[p.value, n] for p, n in sorted(
        patterns.counts.items(), key=lambda item: item[0].value
    )]


def _decode_patterns(record: list) -> PatternCounts:
    return PatternCounts(
        Counter({AnomalyPattern(value): n for value, n in record})
    )


def encode_detector_state(detector) -> dict:
    """Snapshot a :class:`~repro.core.detector.CycleDetector`: the live
    graph (adjacency is rebuilt from the labelled edge table), lifetime
    cycle/pattern counts and pruning bookkeeping.  Labels and BUU ids
    must be JSON-serializable."""
    graph = detector.graph
    pruner = detector.pruner
    return {
        "labels": [
            [src, dst, [[label, kind.value] for label, kind in labels.items()]]
            for (src, dst), labels in graph.labels.items()
        ],
        "present": sorted(graph.present),
        "starts": [[buu, t] for buu, t in graph.starts.items()],
        "commits": [[buu, t] for buu, t in graph.commits.items()],
        "alive": sorted(graph.alive),
        "edge_count": graph.edge_count,
        "counts": _encode_counts(detector.counts),
        "patterns": _encode_patterns(detector.patterns),
        "edges_since_prune": detector._edges_since_prune,
        "prune_passes": detector.prune_passes,
        "pruner_removed_total": 0 if pruner is None else pruner.removed_total,
        "pruner_removed_by_strategy": (
            {} if pruner is None else pruner.removed_by_strategy()
        ),
    }


def decode_detector_state(detector, state: dict) -> None:
    """Load :func:`encode_detector_state` output into a freshly built,
    identically configured detector."""
    graph = detector.graph
    for src, dst, labels in state["labels"]:
        table = {label: EdgeType(kind) for label, kind in labels}
        graph.labels[(src, dst)] = table
        graph.out[src].add(dst)
        graph.inc[dst].add(src)
    graph.present = set(state["present"])
    graph.starts = {buu: t for buu, t in state["starts"]}
    graph.commits = {buu: t for buu, t in state["commits"]}
    graph.alive = set(state["alive"])
    # Rebuild the lazily-compacted active-time heap to match the restored
    # alive set (state was installed wholesale, bypassing begin()).
    graph._active_heap = [
        (graph.starts[b], b) for b in graph.alive if b in graph.starts
    ]
    heapq.heapify(graph._active_heap)
    graph.edge_count = state["edge_count"]
    detector.counts = _decode_counts(state["counts"])
    detector.patterns = _decode_patterns(state["patterns"])
    detector._edges_since_prune = state["edges_since_prune"]
    detector.prune_passes = state["prune_passes"]
    pruner = detector.pruner
    if pruner is not None:
        pruner.removed_total = state["pruner_removed_total"]
        by_strategy = state["pruner_removed_by_strategy"]
        for name in ("ect", "distance"):
            sub = getattr(pruner, name, None)
            if sub is not None and name in by_strategy:
                sub.removed_total = by_strategy[name]


def encode_window_state(window) -> dict:
    """Snapshot a :class:`~repro.core.monitor.WindowTracker`'s open
    window (raw counts, edge stats, op count, start, pattern baseline)."""
    return {
        "raw": _encode_counts(window.raw),
        "edges": _encode_edge_stats(window.edges),
        "ops": window.ops,
        "window_start": window.window_start,
        "pattern_snapshot": _encode_patterns(window._pattern_snapshot),
    }


def decode_window_state(window, state: dict) -> None:
    """Load an encode_window_state() dict back into a WindowTracker."""
    window.raw = _decode_counts(state["raw"])
    window.edges = _decode_edge_stats(state["edges"])
    window.ops = state["ops"]
    window.window_start = state["window_start"]
    window._pattern_snapshot = _decode_patterns(state["pattern_snapshot"])


def encode_report(report: AnomalyReport) -> dict:
    """Encode one AnomalyReport as a JSON-safe dict."""
    return {
        "window_start": report.window_start,
        "window_end": report.window_end,
        "estimated_2": report.estimated_2,
        "estimated_3": report.estimated_3,
        "raw": _encode_counts(report.raw),
        "edges": _encode_edge_stats(report.edges),
        "operations": report.operations,
        "patterns": report.patterns,
        "health": report.health,
        "degraded_shards": list(report.degraded_shards),
    }


def decode_report(state: dict) -> AnomalyReport:
    """Rebuild an AnomalyReport from its encode_report() dict."""
    return AnomalyReport(
        window_start=state["window_start"],
        window_end=state["window_end"],
        estimated_2=state["estimated_2"],
        estimated_3=state["estimated_3"],
        raw=_decode_counts(state["raw"]),
        edges=_decode_edge_stats(state["edges"]),
        operations=state["operations"],
        patterns=state["patterns"],
        health=state["health"],
        degraded_shards=tuple(state.get("degraded_shards", ())),
    )


def encode_trace(trace) -> dict:
    """Snapshot a :class:`~repro.sim.traces.Trace` (ops + lifecycle)."""
    return {
        "ops": [[op.op.value, op.buu, op.key, op.seq] for op in trace.ops],
        "begins": [list(pair) for pair in trace.begins],
        "commits": [list(pair) for pair in trace.commits],
    }


def decode_trace(trace, state: dict) -> None:
    """Load an encode_trace() dict back into a Trace recorder."""
    trace.ops = [
        Operation(OpType(kind), buu, key, seq)
        for kind, buu, key, seq in state["ops"]
    ]
    trace.begins = [tuple(pair) for pair in state["begins"]]
    trace.commits = [tuple(pair) for pair in state["commits"]]
