"""Write-ahead log and log-parser collector deployment (§4.1).

The paper lists three ways to deploy the collector: "middle-ware, a
plug-in of the storage layer, or a log parser, which extracts read/write
information from the storage log".  The other modules implement the
plug-in style (listeners on the storage/simulator); this module
implements the log-parser style:

- :class:`WriteAheadLog` — an append-only binary-ish record log the
  storage writes every operation to (here: length-prefixed JSON lines,
  with an explicit LSN per record);
- :class:`LogParser` — tails a log and feeds the reconstructed
  operations to any monitor, possibly long after the fact and from a
  different process.

A log-parsed monitor sees exactly the stream a plug-in monitor sees, so
the two deployments produce identical anomaly counts — tested.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.core.types import Operation, OpType


class WriteAheadLog:
    """Append-only operation log with monotone LSNs.

    Records: ``{"lsn": 17, "kind": "r"|"w"|"b"|"c", "buu": 3,
    "key": "x", "seq": 12}`` — ``b``/``c`` are BUU begin/commit marks so
    a parser can also reconstruct lifecycle for the pruners.
    """

    def __init__(self, handle: IO[str]) -> None:
        self._handle = handle
        self.lsn = 0

    # -- simulator/storage listener protocol ---------------------------------

    def on_operation(self, op: Operation) -> None:
        self._append({"kind": op.op.value, "buu": op.buu, "key": op.key,
                      "seq": op.seq})

    def begin_buu(self, buu: int, time: int) -> None:
        self._append({"kind": "b", "buu": buu, "seq": time})

    def commit_buu(self, buu: int, time: int) -> None:
        self._append({"kind": "c", "buu": buu, "seq": time})

    def _append(self, record: dict) -> None:
        self.lsn += 1
        record["lsn"] = self.lsn
        self._handle.write(json.dumps(record) + "\n")

    def flush(self) -> None:
        self._handle.flush()


class LogRecord:
    """One parsed log record."""

    __slots__ = ("lsn", "kind", "buu", "key", "seq")

    def __init__(self, lsn: int, kind: str, buu: int, key, seq: int) -> None:
        self.lsn = lsn
        self.kind = kind
        self.buu = buu
        self.key = key
        self.seq = seq

    def to_operation(self) -> Operation:
        assert self.kind in ("r", "w")
        return Operation(OpType(self.kind), self.buu, self.key, self.seq)


class LogParser:
    """Reads a WAL and drives monitors with the reconstructed stream.

    ``feed`` can be called repeatedly as the log grows (tailing); the
    parser remembers the last LSN it consumed and rejects gaps, so a
    truncated or reordered log is detected rather than silently
    miscounted.
    """

    def __init__(self, listeners: Iterable) -> None:
        self.listeners = list(listeners)
        self.last_lsn = 0
        self.records_consumed = 0

    def parse(self, lines: Iterable[str]) -> Iterator[LogRecord]:
        for line in lines:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            record = LogRecord(raw["lsn"], raw["kind"], raw["buu"],
                               raw.get("key"), raw["seq"])
            if record.kind not in ("r", "w", "b", "c"):
                raise ValueError(f"unknown record kind {record.kind!r}")
            if record.lsn != self.last_lsn + 1:
                raise ValueError(
                    f"log gap: expected lsn {self.last_lsn + 1}, "
                    f"got {record.lsn}"
                )
            self.last_lsn = record.lsn
            yield record

    def feed(self, lines: Iterable[str]) -> int:
        """Consume log lines, forwarding to the listeners; returns the
        number of records processed."""
        count = 0
        for record in self.parse(lines):
            count += 1
            for listener in self.listeners:
                if record.kind in ("r", "w"):
                    handler = getattr(listener, "on_operation", None)
                    if handler is not None:
                        handler(record.to_operation())
                elif record.kind == "b":
                    handler = getattr(listener, "begin_buu", None)
                    if handler is not None:
                        handler(record.buu, record.seq)
                elif record.kind == "c":
                    handler = getattr(listener, "commit_buu", None)
                    if handler is not None:
                        handler(record.buu, record.seq)
        self.records_consumed += count
        return count

    def feed_file(self, path: str | Path) -> int:
        with open(path) as handle:
            return self.feed(handle)
