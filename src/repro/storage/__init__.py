"""Shared-storage substrate: instrumented KV store and history builders."""

from repro.storage.history import (
    BuuProgram,
    count_consecutive_write_pairs,
    interleaved_history,
    lifecycle_bounds,
    program,
    random_rw_permutation,
    serial_history,
)
from repro.storage.kvstore import KVStore, OperationListener
from repro.storage.wal import LogParser, LogRecord, WriteAheadLog

__all__ = [
    "BuuProgram",
    "count_consecutive_write_pairs",
    "interleaved_history",
    "lifecycle_bounds",
    "program",
    "random_rw_permutation",
    "serial_history",
    "KVStore",
    "OperationListener",
    "LogParser",
    "LogRecord",
    "WriteAheadLog",
]
