"""Wiring helpers: register RushMon component readings on a registry.

Everything here is a zero-hot-path-cost callback gauge: the component's
existing counters and structural properties are read lazily when a
snapshot or scrape happens.  Components are duck-typed (this module must
not import ``repro.core`` — core imports ``repro.obs``, and the metrics
layer stays dependency-free).

Real counters and histograms (shard lock wait, detection-pass latency)
live inline where the measured code runs, in
:mod:`repro.core.concurrent` — they need to observe *during* execution,
not at snapshot time.
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "instrument_cluster_monitor",
    "instrument_detector",
    "instrument_net_client",
    "instrument_net_server",
    "instrument_serial_monitor",
]

#: Strategies the pruned-vertex breakdown is exported for.
_PRUNE_STRATEGIES = ("ect", "distance")


def instrument_detector(registry: MetricsRegistry, detector: Any) -> None:
    """Export a :class:`~repro.core.detector.CycleDetector`'s live-graph
    size, prune-pass count and per-strategy pruned-vertex totals."""
    registry.gauge_fn(
        "rushmon_detector_live_vertices",
        lambda: float(detector.num_vertices),
        help="vertices currently in the detector's live dependency graph",
    )
    registry.gauge_fn(
        "rushmon_detector_live_edges",
        lambda: float(detector.num_edges),
        help="edges currently in the detector's live dependency graph",
    )
    registry.gauge_fn(
        "rushmon_detector_prune_passes_total",
        lambda: float(detector.prune_passes),
        help="periodic pruning passes run by the detector",
    )
    registry.gauge_fn(
        "rushmon_detector_cycles_total",
        lambda: float(
            detector.counts.two_cycles + detector.counts.three_cycles
        ),
        help="sampled 2-/3-cycles counted since construction",
    )
    pruner = getattr(detector, "pruner", None)
    if pruner is None or not hasattr(pruner, "removed_by_strategy"):
        return
    for strategy in _PRUNE_STRATEGIES:
        registry.gauge_fn(
            f"rushmon_detector_pruned_{strategy}_total",
            lambda s=strategy: float(
                pruner.removed_by_strategy().get(s, 0)
            ),
            help=f"vertices removed by {strategy} pruning since construction",
        )


def instrument_serial_monitor(registry: MetricsRegistry, monitor: Any) -> None:
    """Export the serial :class:`~repro.core.monitor.RushMon` facade:
    collector throughput/hit-rate plus the detector readings.

    Everything is callback-backed, so attaching a registry adds *zero*
    work to the serial hot path — the paper's overhead story is the
    collector's, and the serial monitor keeps it untouched.
    """
    collector = monitor.collector

    def hit_rate() -> float:
        seen = collector.ops_seen
        return (collector.touches / seen) if seen else 0.0

    registry.gauge_fn(
        "rushmon_collector_ops_total",
        lambda: float(collector.ops_seen),
        help="operations the collector has observed",
    )
    registry.gauge_fn(
        "rushmon_collector_sampled_ops_total",
        lambda: float(collector.touches),
        help="operations that performed bookkeeping (sampled-item hits)",
    )
    registry.gauge_fn(
        "rushmon_collector_sampled_hit_rate",
        hit_rate,
        help="fraction of observed operations that hit a sampled item",
    )
    registry.gauge_fn(
        "rushmon_collector_edges_total",
        lambda: float(collector.stats.total),
        help="dependency edges emitted by the collector",
    )
    registry.gauge_fn(
        "rushmon_monitor_reports_total",
        lambda: float(len(monitor.reports)),
        help="monitoring windows closed so far",
    )
    instrument_detector(registry, monitor.detector)


def instrument_net_server(registry: MetricsRegistry, server: Any) -> None:
    """Export a :class:`~repro.net.server.RushMonServer`'s connection
    and delivery readings (the server registers its own frame/ack
    counters and ack-latency histogram inline — those must observe
    during execution; everything here is a lazy callback).
    """
    registry.gauge_fn(
        "rushmon_net_connections_current",
        lambda: float(server.connections_current),
        help="client connections currently open",
    )
    registry.gauge_fn(
        "rushmon_net_connections_total",
        lambda: float(server.connections_total),
        help="client connections accepted since start",
    )
    registry.gauge_fn(
        "rushmon_net_sessions_current",
        lambda: float(server.sessions_current),
        help="client sessions the server holds delivery state for",
    )
    registry.gauge_fn(
        "rushmon_net_sessions_evicted_total",
        lambda: float(server.sessions_evicted_total),
        help="idle session-table entries expired by the session TTL",
    )
    registry.gauge_fn(
        "rushmon_net_reconnect_hellos_total",
        lambda: float(server.reconnect_hellos_total),
        help="hello messages that resumed an existing session "
             "(client reconnects, as the server sees them)",
    )
    registry.gauge_fn(
        "rushmon_net_dedup_hits_total",
        lambda: float(server.stats["dedup_hits"]),
        help="replayed batches absorbed by per-session dedup "
             "(reconciles with client retransmits; survives restore)",
    )
    registry.gauge_fn(
        "rushmon_net_batches_accepted_total",
        lambda: float(server.stats["batches_accepted"]),
        help="distinct batches ingested into the collector "
             "(lifetime, survives restore)",
    )
    registry.gauge_fn(
        "rushmon_net_admission_refusals_total",
        lambda: float(server.admission_refusals_total),
        help="connections refused with a typed overloaded error "
             "(admission control at max_connections)",
    )
    registry.gauge_fn(
        "rushmon_net_idle_disconnects_total",
        lambda: float(server.idle_disconnects_total),
        help="connections dropped by the idle deadline",
    )
    registry.gauge_fn(
        "rushmon_net_partial_frame_disconnects_total",
        lambda: float(server.partial_frame_disconnects_total),
        help="connections dropped by the partial-frame (slowloris) "
             "deadline",
    )
    registry.gauge_fn(
        "rushmon_net_write_overflow_disconnects_total",
        lambda: float(server.write_overflow_disconnects_total),
        help="connections dropped at the write-buffer high-watermark "
             "(peer stopped reading its acks)",
    )
    registry.gauge_fn(
        "rushmon_net_drain_forced_total",
        lambda: float(server.drain_forced_total),
        help="connections force-closed at the drain deadline with "
             "work still unflushed",
    )


def instrument_net_client(registry: MetricsRegistry, client: Any) -> None:
    """Export a :class:`~repro.net.client.RushMonClient`'s delivery
    counters and queue state for embedders that host the producer."""
    for name, attr, help_text in (
        ("rushmon_net_client_batches_sent_total", "batches_sent_total",
         "batch frames sent (first sends + retransmits)"),
        ("rushmon_net_client_retransmits_total", "retransmits_total",
         "batch frames re-sent after a reconnect or typed error"),
        ("rushmon_net_client_reconnects_total", "reconnects_total",
         "successful connections after the first"),
        ("rushmon_net_client_acked_batches_total", "acked_batches_total",
         "batches acknowledged by the server"),
        ("rushmon_net_client_shed_events_total", "shed_events_total",
         "events dropped by the client's shed policies (honest loss)"),
        ("rushmon_net_client_refusals_total", "refusals_total",
         "typed overloaded admission refusals received from the server"),
    ):
        registry.gauge_fn(
            name,
            lambda a=attr: float(getattr(client, a)),
            help=help_text,
        )
    registry.gauge_fn(
        "rushmon_net_client_queue_depth",
        lambda: float(client.queue_depth),
        help="events waiting in the client's bounded queue",
    )
    registry.gauge_fn(
        "rushmon_net_client_unacked_batches",
        lambda: float(client.unacked_batches),
        help="batches sent but not yet acknowledged",
    )


def instrument_cluster_monitor(registry: MetricsRegistry,
                               cluster: Any) -> None:
    """Export a :class:`~repro.cluster.ClusterMonitor`'s router-side
    readings.  Worker-internal counters live in the worker processes
    and surface through the merged window reports instead; everything
    observable from the router is a lazy callback gauge, so the
    ingestion hot path pays nothing."""
    registry.gauge_fn(
        "rushmon_cluster_workers",
        lambda: float(cluster.num_workers),
        help="worker processes the cluster routes over",
    )
    registry.gauge_fn(
        "rushmon_cluster_ops_routed_total",
        lambda: float(cluster.ops_routed),
        help="operations key-hashed to a worker shard",
    )
    registry.gauge_fn(
        "rushmon_cluster_lifecycle_broadcasts_total",
        lambda: float(cluster.lifecycle_broadcasts),
        help="BUU begin/commit events broadcast to every worker",
    )
    registry.gauge_fn(
        "rushmon_cluster_router_flushes_total",
        lambda: float(cluster.router_flushes),
        help="route-frame flushes shipped to the worker set",
    )
    registry.gauge_fn(
        "rushmon_cluster_reports_total",
        lambda: float(len(cluster.reports)),
        help="cluster-wide monitoring windows closed so far",
    )
    registry.gauge_fn(
        "rushmon_cluster_degraded",
        lambda: float(len(cluster.degraded_shards)),
        help="shards whose restart circuit breaker has tripped "
             "(0 = healthy; reports carry health=degraded while nonzero)",
    )
    registry.gauge_fn(
        "rushmon_cluster_worker_restarts_total",
        lambda: float(cluster.worker_restarts_total),
        help="worker processes respawned by the supervisor",
    )
    registry.gauge_fn(
        "rushmon_cluster_snapshots_shipped_total",
        lambda: float(cluster.snapshots_shipped),
        help="shard snapshots shipped, CRC-verified and stored",
    )
    registry.gauge_fn(
        "rushmon_cluster_snapshots_rejected_total",
        lambda: float(cluster.snapshots_rejected),
        help="shard snapshots rejected (CRC/format/coverage failures)",
    )
    registry.gauge_fn(
        "rushmon_cluster_replay_frames_total",
        lambda: float(cluster.replay_frames_total),
        help="journaled frames replayed onto respawned workers",
    )
    registry.gauge_fn(
        "rushmon_cluster_frames_dropped_failed_total",
        lambda: float(cluster.frames_dropped_failed),
        help="route frames dropped because the destination shard's "
             "circuit breaker tripped (degraded-mode loss accounting)",
    )
