"""Opt-in HTTP exposition of a :class:`~repro.obs.metrics.MetricsRegistry`.

:class:`MetricsExporter` runs a tiny threaded HTTP server on a
background thread and serves two views of one registry:

- ``GET /metrics``       — Prometheus text exposition (scrape target)
- ``GET /metrics.json``  — the JSON snapshot (same payload the
  ``repro monitor`` CLI view prints)

The server binds ``127.0.0.1`` by default and picks an ephemeral port
when ``port=0``, so tests and side-by-side services never collide.  It
is strictly opt-in: nothing in the monitor constructs one.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import MetricsRegistry

__all__ = ["MetricsExporter"]


class _Handler(BaseHTTPRequestHandler):
    # The registry is attached to the server instance by MetricsExporter.

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        registry: MetricsRegistry = self.server.registry  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = registry.render_prometheus().encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif path in ("/metrics.json", "/json"):
            body = (json.dumps(registry.snapshot(), sort_keys=True) + "\n").encode()
            content_type = "application/json"
        else:
            self.send_error(404, "unknown path (try /metrics or /metrics.json)")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        # Scrapes must not spam the monitored application's stdout.
        pass


class MetricsExporter:
    """Serve a registry over HTTP from a daemon thread.

    >>> from repro.obs import MetricsRegistry, MetricsExporter
    >>> registry = MetricsRegistry()
    >>> _ = registry.counter("demo_total").inc()
    >>> exporter = MetricsExporter(registry)   # port=0: pick a free port
    >>> exporter.start().port > 0
    True
    >>> exporter.stop()
    """

    def __init__(self, registry: MetricsRegistry, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.registry = registry
        self.host = host
        self._requested_port = port
        self._bound_port: int | None = None
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "MetricsExporter":
        """Bind and start serving (idempotent).  Raises ``RuntimeError``
        with the offending address when the port is already bound, so a
        misconfigured deployment fails with an actionable message rather
        than a bare ``OSError``."""
        if self._server is not None:
            return self
        try:
            server = ThreadingHTTPServer(
                (self.host, self._requested_port), _Handler
            )
        except OSError as exc:
            raise RuntimeError(
                f"metrics exporter could not bind "
                f"{self.host}:{self._requested_port}: {exc.strerror or exc} "
                f"— is another exporter (or service) already listening "
                f"there?  Pass port=0 to pick a free ephemeral port."
            ) from exc
        server.daemon_threads = True
        server.registry = self.registry  # type: ignore[attr-defined]
        # Cache the resolved port: with port=0 the kernel assigns it at
        # bind time, and callers need it after stop() too (to report
        # where the exporter *was*), so it must not die with _server.
        self._bound_port = server.server_address[1]
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever, name="rushmon-metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        server, self._server = self._server, None
        thread, self._thread = self._thread, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join()

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def port(self) -> int:
        """The bound port (the ephemeral one the kernel picked when
        constructed with ``port=0``).  Stays readable after ``stop()``;
        raises only if the exporter never started."""
        if self._bound_port is None:
            raise RuntimeError("exporter is not running")
        return self._bound_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.stop()
