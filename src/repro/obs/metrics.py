"""Lightweight, thread-safe metrics primitives for RushMon's self-monitoring.

A monitor whose headline claim is "~1% overhead" must be able to account
for itself; this module is the substrate.  Three instrument kinds:

- :class:`Counter` — monotone accumulator with **per-thread cells**: each
  thread increments its own slot keyed by thread id, so the hot path is a
  single dict update with no lock (safe under the GIL: only the owning
  thread writes its cell).  ``value`` sums the cells.
- :class:`Gauge` — a point-in-time value.  Either *set* explicitly or
  backed by a zero-cost **callback** evaluated at snapshot time, which is
  how structural readings (live-graph size, journal depth, thread
  liveness) are exported without touching any hot path.
- :class:`Histogram` — bucketed latency distribution (detection-pass
  time).  Observations take a small lock; intended for low-frequency
  paths (one observation per detection pass, not per operation).

The :class:`MetricsRegistry` names and owns instruments, renders a
Prometheus text exposition (:meth:`~MetricsRegistry.render_prometheus`)
and a JSON-friendly :meth:`~MetricsRegistry.snapshot`.  Instruments are
get-or-create by name, so independent components can share a registry
without coordination.

Consistency note: snapshots taken while producer threads are running are
*per-instrument* consistent but not globally atomic (cells are summed
without stopping writers).  The reconciliation tests therefore snapshot
after drain; live views tolerate the skew.
"""

from __future__ import annotations

import json
import re
import threading
from typing import Callable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets, in seconds (detection passes are ms-scale).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    """Coerce a metric name into the Prometheus grammar."""
    cleaned = _NAME_RE.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


class Counter:
    """Monotone counter with lock-free per-thread accumulation."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        # thread id -> that thread's partial sum.  Only the owning thread
        # mutates its cell; dict insertion is atomic under the GIL.
        self._cells: dict[int, float] = {}

    def inc(self, amount: float = 1.0) -> None:
        tid = threading.get_ident()
        cells = self._cells
        try:
            cells[tid] += amount
        except KeyError:
            cells[tid] = amount

    @property
    def value(self) -> float:
        return sum(self._cells.values())


class Gauge:
    """Point-in-time value: set explicitly, or computed by a callback."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 fn: Callable[[], float] | None = None) -> None:
        self.name = name
        self.help = help
        self._fn = fn
        self._value = 0.0

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise RuntimeError(f"gauge {self.name} is callback-backed")
        self._value = float(value)

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if larger (high-water marks).

        Not atomic across threads; callers that race should keep their
        own per-shard high-water and export the max via a callback.
        """
        if value > self._value:
            self.set(value)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram:
    """Cumulative-bucket histogram (Prometheus ``le`` convention)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be non-empty and ascending")
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self.count = 0
        self.sum = 0.0
        self.max = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            if value > self.max:
                self.max = value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    @property
    def value(self) -> dict:
        """JSON-friendly summary (count / sum / mean / max / buckets)."""
        with self._lock:
            cumulative = 0
            by_bound: dict[str, int] = {}
            for bound, count in zip(self.buckets, self._counts):
                cumulative += count
                by_bound[repr(bound)] = cumulative
            by_bound["+Inf"] = cumulative + self._counts[-1]
            return {
                "count": self.count,
                "sum": self.sum,
                "mean": (self.sum / self.count) if self.count else 0.0,
                "max": self.max,
                "buckets": by_bound,
            }


class MetricsRegistry:
    """Central, named registry of instruments.

    Instruments are get-or-create: asking twice for the same name returns
    the same object (and raises if the kinds conflict), so loosely
    coupled components can share one registry safely.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    # -- registration --------------------------------------------------------

    def _get_or_create(self, name: str, factory: Callable[[str], object]):
        name = _sanitize(name)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is None:
                existing = factory(name)  # type: ignore[assignment]
                self._metrics[name] = existing  # type: ignore[assignment]
            return existing

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._get_or_create(name, lambda n: Counter(n, help))
        if not isinstance(metric, Counter):
            raise TypeError(f"{name} is already registered as {metric.kind}")
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._get_or_create(name, lambda n: Gauge(n, help))
        if not isinstance(metric, Gauge):
            raise TypeError(f"{name} is already registered as {metric.kind}")
        return metric

    def gauge_fn(self, name: str, fn: Callable[[], float],
                 help: str = "") -> Gauge:
        """Register (or replace the callback of) a callback-backed gauge."""
        metric = self._get_or_create(name, lambda n: Gauge(n, help, fn=fn))
        if not isinstance(metric, Gauge):
            raise TypeError(f"{name} is already registered as {metric.kind}")
        metric._fn = fn
        return metric

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        metric = self._get_or_create(
            name, lambda n: Histogram(n, help, buckets)
        )
        if not isinstance(metric, Histogram):
            raise TypeError(f"{name} is already registered as {metric.kind}")
        return metric

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(_sanitize(name))

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    # -- exposition ----------------------------------------------------------

    def snapshot(self) -> dict:
        """All instruments as a JSON-serializable ``{name: value}`` dict.

        Counters and gauges map to floats; histograms to a summary dict.
        Callback gauges are evaluated here, so a snapshot is also how
        structural readings get refreshed.
        """
        with self._lock:
            metrics = list(self._metrics.values())
        return {metric.name: metric.value for metric in metrics}

    def render_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True)

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        lines: list[str] = []
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                summary = metric.value
                buckets: Mapping[str, int] = summary["buckets"]
                for bound, cumulative in buckets.items():
                    lines.append(
                        f'{metric.name}_bucket{{le="{bound}"}} {cumulative}'
                    )
                lines.append(f"{metric.name}_sum {_fmt(summary['sum'])}")
                lines.append(f"{metric.name}_count {summary['count']}")
            else:
                lines.append(f"{metric.name} {_fmt(metric.value)}")
        return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    """Render a float without trailing noise (ints stay integral)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
