"""RushMon observability: metrics registry, instrumentation, exposition.

The paper's headline claim is real-time monitoring at ~1% overhead; this
package lets the reproduction *measure itself* making that claim —
counters/gauges/histograms (:mod:`repro.obs.metrics`), callback-based
component wiring (:mod:`repro.obs.instrument`) and an opt-in
Prometheus-style HTTP endpoint (:mod:`repro.obs.exporter`).  The
companion overhead harness lives in :mod:`repro.bench.overhead`.
"""

from repro.obs.exporter import MetricsExporter
from repro.obs.instrument import instrument_detector, instrument_serial_monitor
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsExporter",
    "DEFAULT_BUCKETS",
    "instrument_detector",
    "instrument_serial_monitor",
]
