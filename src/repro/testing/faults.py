"""Fault injection for the concurrent monitoring pipeline.

Production isolation checkers treat crash-tolerance as first-class:
Elle runs inside Jepsen's fault-injecting harness, and a monitor that
quietly stops monitoring is worse than none.  This module provides the
controlled-failure half of that story: a :class:`FaultInjector` holds a
set of armed :class:`Fault` descriptions keyed by *injection point*, and
the pipeline calls :meth:`FaultInjector.fire` at those points.  With no
injector attached the pipeline pays a single ``is None`` check.

Injection points wired into the pipeline
----------------------------------------

``collector.handle``
    Entry of :meth:`~repro.core.concurrent.sharded.ShardedCollector.handle`,
    *before* the shard lock — a fault here hits the producer thread.
``journal.drain``
    Entry of
    :meth:`~repro.core.concurrent.sharded.ShardedCollector.drain_journal`,
    before any journal buffer is swapped, so an ``exception`` fault
    loses nothing.  ``partial_drain`` truncates the drained batch and
    re-queues the tail (tickets stay ordered).
``detect.pass``
    Start of a :class:`~repro.core.concurrent.service.RushMonService`
    detection pass, before the drain — the supervised-restart path.
``detect.process``
    Before each journal event is applied to the detector, mid-pass —
    exercises the service's re-queue-on-failure crash safety.
``net.accept``
    In :class:`~repro.net.server.RushMonServer`'s accept loop, after a
    connection is accepted but before its reader thread starts — a
    ``disconnect`` fault drops the fresh connection on the floor
    (clients must retry with backoff).
``net.recv``
    Per received chunk in a server reader thread (or, under the event
    loop, per readable-socket wakeup).  ``disconnect`` tears the
    connection down mid-stream; ``corrupt`` flips one byte of the
    chunk before decoding (the framing layer must refuse it, never
    ingest garbage); ``slow-read`` caps the read at one byte, the
    pathological fragmentation the incremental frame reassembly must
    absorb.
``net.select``
    Once per event-loop iteration in :mod:`repro.net.eventloop`, before
    the selector wait.  ``stall`` (or ``delay``) freezes that loop
    thread for ``delay`` seconds — every connection it multiplexes
    stops making progress, which is how the drain-deadline and
    slow-loop tests simulate an overloaded loop; ``slow-read`` makes
    every read of that iteration one byte long.
``net.ack``
    Just before an acknowledgement frame is sent.  ``disconnect``
    closes the connection with the batch ingested but the ack lost —
    forcing the client's retransmit/server-dedup path; ``corrupt``
    flips a byte of the ack frame on the wire.
``cluster.route``
    In the cluster router, per route frame sent to a worker, *before*
    the frame hits the wire.  ``kill_worker`` SIGKILLs the destination
    worker process at that exact point — the deterministic crash the
    cluster chaos differential is built on (the supervisor must
    respawn-and-replay it bit-exactly).
``cluster.exchange``
    In a cluster worker, per edge-frontier broadcast to the peer mesh
    (armed via :attr:`~repro.cluster.ClusterMonitor.worker_fault_specs`
    because it fires inside the worker *process*).  ``exception`` turns
    the broadcast into a worker-fatal error (exercising the supervisor);
    ``delay`` simulates a slow exchange link.
``cluster.snapshot``
    In the cluster router, on receipt of a shard snapshot, before CRC
    verification.  ``corrupt`` flips one byte of the serialized payload
    — the router must *reject* it and keep its previous snapshot, never
    restore a bit-rotted shard.

Fault kinds
-----------

``exception``
    Raise :class:`InjectedFault` (or ``exc_factory()``) at the point.
``delay``
    Sleep ``delay`` seconds at the point (overload simulation).
``partial_drain``
    Only meaningful at ``journal.drain``: hand the caller the first
    ``fraction`` of the drained batch and re-queue the rest.
``disconnect``
    Only meaningful at ``net.*`` points: drop the TCP connection.
``corrupt``
    Only meaningful at ``net.recv`` / ``net.ack`` / ``cluster.snapshot``:
    flip one byte of the data in flight.
``kill_worker``
    Only meaningful at ``cluster.route``: SIGKILL the destination
    worker process.
``slow-read``
    Only meaningful at ``net.recv`` / ``net.select``: cap socket reads
    at one byte (slowloris-style trickle, server side).
``stall``
    Only meaningful at ``net.select``: freeze the event-loop thread for
    ``delay`` seconds (a stalled loop, as opposed to ``delay`` at
    ``net.recv`` which slows a single reader thread).

Scheduling: each fault skips its first ``after`` eligible calls, then
fires on every ``every``-th call, at most ``times`` times.  All
bookkeeping is under one lock — firing decisions are serialized, so a
multithreaded run fires exactly the configured number of times.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Fault", "FaultInjector", "InjectedFault", "POINTS"]

#: The injection points the pipeline is instrumented with.
POINTS = (
    "collector.handle",
    "journal.drain",
    "detect.pass",
    "detect.process",
    "net.accept",
    "net.recv",
    "net.ack",
    "net.select",
    "cluster.route",
    "cluster.exchange",
    "cluster.snapshot",
)

#: Fault kinds understood by the call sites.
KINDS = ("exception", "delay", "partial_drain", "disconnect", "corrupt",
         "kill_worker", "slow-read", "stall")


class InjectedFault(RuntimeError):
    """The default exception an ``exception`` fault raises."""


@dataclass
class Fault:
    """One armed fault at one injection point (see module docstring)."""

    point: str
    kind: str = "exception"
    #: Skip this many eligible calls before the fault can fire.
    after: int = 0
    #: Fire on every Nth eligible call (1 = every call).
    every: int = 1
    #: Maximum number of firings; ``None`` means unlimited.
    times: int | None = 1
    #: Seconds to sleep for ``kind="delay"``.
    delay: float = 0.01
    #: Fraction of the batch to keep for ``kind="partial_drain"``.
    fraction: float = 0.5
    #: Factory for the exception ``kind="exception"`` raises.
    exc_factory: Callable[[], BaseException] = field(
        default_factory=lambda: (lambda: InjectedFault("injected fault"))
    )

    def __post_init__(self) -> None:
        if self.point not in POINTS:
            raise ValueError(
                f"unknown injection point {self.point!r}; options: {POINTS}"
            )
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; options: {KINDS}"
            )
        if self.kind == "partial_drain" and self.point != "journal.drain":
            raise ValueError("partial_drain only applies to journal.drain")
        if self.kind == "disconnect" and not self.point.startswith("net."):
            raise ValueError("disconnect only applies to net.* points")
        if self.kind == "corrupt" and self.point not in (
                "net.recv", "net.ack", "cluster.snapshot"):
            raise ValueError(
                "corrupt only applies to net.recv / net.ack / "
                "cluster.snapshot")
        if self.kind == "kill_worker" and self.point != "cluster.route":
            raise ValueError("kill_worker only applies to cluster.route")
        if self.kind == "slow-read" and self.point not in (
                "net.recv", "net.select"):
            raise ValueError("slow-read only applies to net.recv / "
                             "net.select")
        if self.kind == "stall" and self.point != "net.select":
            raise ValueError("stall only applies to net.select")
        if self.after < 0 or self.every < 1:
            raise ValueError("after must be >= 0 and every >= 1")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1 or None")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")


class _Armed:
    """Mutable firing state for one armed fault."""

    __slots__ = ("fault", "calls", "fired")

    def __init__(self, fault: Fault) -> None:
        self.fault = fault
        self.calls = 0
        self.fired = 0

    def should_fire(self) -> bool:
        fault = self.fault
        if fault.times is not None and self.fired >= fault.times:
            return False
        self.calls += 1
        eligible = self.calls - fault.after
        if eligible < 1 or eligible % fault.every != 0:
            return False
        self.fired += 1
        return True


class FaultInjector:
    """Thread-safe registry of armed faults, consulted by the pipeline.

    >>> faults = FaultInjector()
    >>> _ = faults.inject(Fault("detect.pass", kind="exception", times=2))
    >>> faults.fire("detect.pass").kind
    'exception'
    """

    def __init__(self) -> None:
        self._armed: dict[str, list[_Armed]] = {}
        self._lock = threading.Lock()
        self.fired_by_point: dict[str, int] = {}

    def inject(self, fault: Fault) -> "FaultInjector":
        """Arm one fault; returns self for chaining."""
        with self._lock:
            self._armed.setdefault(fault.point, []).append(_Armed(fault))
        return self

    def fire(self, point: str) -> Fault | None:
        """Called by the pipeline at ``point``; returns the fault to
        apply this call, or ``None``.  At most one fault fires per call
        (the first armed one whose schedule matches)."""
        with self._lock:
            armed = self._armed.get(point)
            if not armed:
                return None
            for entry in armed:
                if entry.should_fire():
                    self.fired_by_point[point] = (
                        self.fired_by_point.get(point, 0) + 1
                    )
                    return entry.fault
        return None

    @property
    def fired_total(self) -> int:
        with self._lock:
            return sum(self.fired_by_point.values())

    def reset(self) -> None:
        """Disarm everything and zero the firing counters."""
        with self._lock:
            self._armed.clear()
            self.fired_by_point.clear()
