"""Test-support machinery that ships with the library.

:mod:`repro.testing.faults` is the fault-injection harness used by the
chaos suite (and usable by operators to rehearse failure modes): named
injection points inside the concurrent monitoring pipeline can be armed
to raise, delay, or truncate work, deterministically.
"""

from repro.testing.faults import Fault, FaultInjector, InjectedFault

__all__ = ["Fault", "FaultInjector", "InjectedFault"]
