"""Exact, offline isolation-anomaly checking over recorded histories.

This is the repo's independent ground truth — an Elle-style checker
(Kingsbury & Alvaro) that rebuilds the *full* dependency graph of a
history with no sampling, counts every 2-/3-cycle exactly, and names each
cycle per the G-class taxonomy (:mod:`repro.checkers.taxonomy`).

Independence is the point: every correctness claim about the sampled
monitor previously rested on differentials against
:class:`~repro.core.monitor.OfflineAnomalyMonitor`, which shares the
collector (`BaselineCollector`) and the counting code
(:func:`~repro.graph.cycles.count_labelled_short_cycles`) with the code
under test.  This module re-implements both halves from the Section 2.1
*specification* instead of the existing code:

- edge derivation is a per-item scan (group the history by key, walk each
  key's operations in visibility order) rather than the collectors'
  streaming pass — same semantics, different shape;
- cycle counting is deliberately brute force: enumerate label
  combinations edge by edge instead of the inclusion-exclusion algebra
  the production counters use.  Slow and obviously correct, which is
  exactly what an oracle should be.

A disagreement between this checker and the monitor therefore implicates
one implementation, not a shared helper.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.checkers.taxonomy import (
    CYCLE_CLASSES,
    GClass,
    READ_CLASSES,
    classify_cycle,
)
from repro.core.types import (
    BuuId,
    CycleCounts,
    EdgeStats,
    EdgeType,
    Key,
    Operation,
)


@dataclass(frozen=True)
class CheckerEdge:
    """One labelled dependency edge as the checker derived it."""

    src: BuuId
    dst: BuuId
    kind: EdgeType
    label: Key

    def pretty(self) -> str:
        return f"{self.src} -{self.kind.value}[{self.label}]-> {self.dst}"


@dataclass(frozen=True)
class CycleWitness:
    """A concrete dependency cycle: the labelled edges walking around it."""

    gclass: GClass
    edges: tuple[CheckerEdge, ...]

    def __len__(self) -> int:
        return len(self.edges)

    def pretty(self) -> str:
        out = str(self.edges[0].src)
        for edge in self.edges:
            out += f" -{edge.kind.value}[{edge.label}]-> {edge.dst}"
        return out


@dataclass(frozen=True)
class ReadWitness:
    """One G1a/G1b occurrence: a read that observed a bad write."""

    gclass: GClass
    writer: BuuId
    reader: BuuId
    key: Key
    write_seq: int
    read_seq: int

    def pretty(self) -> str:
        what = ("aborted" if self.gclass is GClass.G1A else "intermediate")
        return (f"read by {self.reader} @{self.read_seq} of {self.key!r} "
                f"observed {what} write by {self.writer} @{self.write_seq}")


@dataclass(frozen=True)
class _Observation:
    """Internal: one read event and the write version it observed."""

    key: Key
    writer: BuuId
    reader: BuuId
    write_seq: int
    read_seq: int


@dataclass
class CheckReport:
    """Everything the exact checker learned about one history.

    ``cycles`` carries the exact 2-/3-cycle counts in the estimator's
    label classes (ss/dd/sss/ssd/ddd) — the numbers the sampled monitor
    must reproduce at ``sr=1`` and estimate unbiasedly at ``sr>1``.
    ``counts`` maps each :class:`~repro.checkers.taxonomy.GClass` to the
    number of occurrences (cycle instances for the cycle-shaped classes,
    read events for G1a/G1b); classes with zero occurrences are absent.
    ``witnesses`` holds up to ``max_witnesses`` minimal (shortest-first)
    concrete witnesses per class.
    """

    operations: int
    buus: int
    aborted: tuple[BuuId, ...]
    edges: EdgeStats
    distinct_edges: int
    cycles: CycleCounts
    counts: dict[GClass, int]
    witnesses: dict[GClass, tuple]
    max_cycle_length: int
    serializable: bool
    serial_order: tuple[BuuId, ...] = ()
    #: True when the graph is cyclic but every cycle is longer than
    #: ``max_cycle_length`` — counts are then a lower bound.
    cycles_beyond_bound: bool = False

    @property
    def cycle_anomalies(self) -> int:
        """Total classified cycle instances (all lengths <= the bound)."""
        return sum(self.counts.get(c, 0) for c in CYCLE_CLASSES)

    @property
    def read_anomalies(self) -> int:
        """Total G1a + G1b read occurrences."""
        return sum(self.counts.get(c, 0) for c in READ_CLASSES)

    @property
    def anomaly_free(self) -> bool:
        """No cycles (of any length) and no aborted/intermediate reads."""
        return self.serializable and not self.counts

    def detected_classes(self) -> tuple[GClass, ...]:
        return tuple(c for c in GClass if self.counts.get(c, 0) > 0)


def derive_dependency_edges(
    ops: Sequence[Operation],
) -> tuple[list[CheckerEdge], EdgeStats, list[_Observation]]:
    """Derive every wr/ww/rw conflict edge of a history, per item.

    Implements the Section 2.1 rules by scanning each data item's
    operations in visibility (``seq``) order: a read depends on the item's
    latest write (``wr``); a write overwriting a read version
    anti-depends on all its readers (``rw``); a write directly
    overwriting a write with no intervening reads is a write dependency
    (``ww``).  Matches the collectors' Algorithm 1 semantics while
    sharing none of their code.

    Returns the derived edges (duplicates included, as collectors emit
    them), aggregate per-kind stats, and the read observations the
    G1a/G1b analysis needs.

    Grouping and visibility-sorting the history is the only part that
    costs on a large trace, and it is pure data movement — no Section
    2.1 semantics — so with numpy installed it routes through the
    columnar builder (:class:`~repro.core.columnar.OpBatch` + one
    ``lexsort``) instead of per-key python lists.  The per-item rule
    scan itself (:func:`_scan_item`) is shared by both layouts, and the
    result is identical element for element: key ids are dense in
    first-appearance order, so the stable ``(key, seq)`` sort visits
    keys and operations exactly as the dict-of-lists walk does.
    Histories the fixed-width columns can't hold (non-integer BUUs,
    out-of-range sequence numbers) keep the pure-python layout.
    """
    edges: list[CheckerEdge] = []
    stats = EdgeStats()
    observations: list[_Observation] = []
    groups = _columnar_key_groups(ops) if ops else None
    if groups is None:
        by_key: dict[Key, list[Operation]] = {}
        for op in ops:
            by_key.setdefault(op.key, []).append(op)
        groups = (
            (key, [(o.is_read(), o.buu, o.seq)
                   for o in sorted(key_ops, key=lambda o: o.seq)])
            for key, key_ops in by_key.items()
        )
    for key, rows in groups:
        _scan_item(key, rows, edges, stats, observations)
    return edges, stats, observations


def _scan_item(
    key: Key,
    rows: Iterable[tuple[bool, BuuId, int]],
    edges: list[CheckerEdge],
    stats: EdgeStats,
    observations: list["_Observation"],
) -> None:
    """The Section 2.1 per-item rules over one key's ``(is_read, buu,
    seq)`` rows in visibility order (the layout-independent core both
    grouping strategies feed)."""
    last_writer: BuuId | None = None
    last_write_seq = 0
    readers: dict[BuuId, None] = {}  # insertion-ordered set
    for is_read, buu, seq in rows:
        if is_read:
            if last_writer is not None:
                if last_writer != buu:
                    stats.record(EdgeType.WR)
                    edges.append(
                        CheckerEdge(last_writer, buu, EdgeType.WR, key)
                    )
                observations.append(_Observation(
                    key, last_writer, buu, last_write_seq, seq
                ))
            readers[buu] = None
        else:
            if readers:
                for reader in readers:
                    if reader != buu:
                        stats.record(EdgeType.RW)
                        edges.append(
                            CheckerEdge(reader, buu, EdgeType.RW, key)
                        )
            elif last_writer is not None and last_writer != buu:
                stats.record(EdgeType.WW)
                edges.append(
                    CheckerEdge(last_writer, buu, EdgeType.WW, key)
                )
            readers.clear()
            last_writer = buu
            last_write_seq = seq


def _columnar_key_groups(ops: Sequence[Operation]):
    """Key-grouped, seq-sorted ``(key, rows)`` pairs via the columnar
    builder, or ``None`` when numpy is absent or the history doesn't
    fit int64 columns (the caller then groups in pure python)."""
    from repro.core.columnar import HAVE_NUMPY, OP_READ, OpBatch

    if not HAVE_NUMPY:
        return None
    import numpy as np

    try:
        batch = OpBatch.from_ops(ops)
    except (TypeError, ValueError, OverflowError):
        return None
    # Stable, so ties (and key groups, via dense first-seen kids) land
    # in exactly the dict-of-lists walk's order.
    order = np.lexsort((batch.seq, batch.kid))
    kid_s = batch.kid[order]
    is_read = (batch.op[order] == OP_READ).tolist()
    buu = batch.buu[order].tolist()
    seq = batch.seq[order].tolist()
    starts = np.flatnonzero(
        np.r_[True, kid_s[1:] != kid_s[:-1]]).tolist()
    starts.append(len(kid_s))
    key_of = batch.interner.key_of
    group_kids = kid_s[starts[:-1]].tolist()

    def generate():
        for g, kid in enumerate(group_kids):
            lo, hi = starts[g], starts[g + 1]
            yield key_of(kid), zip(is_read[lo:hi], buu[lo:hi], seq[lo:hi])

    return generate()


class _CheckerGraph:
    """The checker's own labelled multigraph (no shared graph code).

    ``labels[(u, v)]`` maps each parallel edge's item label to its kind;
    a duplicate (src, dst, label) keeps the first kind seen, mirroring
    the live detector's dedup rule so classifications line up.
    """

    def __init__(self, edges: Iterable[CheckerEdge]) -> None:
        self.labels: dict[tuple[BuuId, BuuId], dict[Key, EdgeType]] = {}
        self.out: dict[BuuId, set[BuuId]] = {}
        self.vertices: set[BuuId] = set()
        self.distinct_edges = 0
        for edge in edges:
            self.vertices.add(edge.src)
            self.vertices.add(edge.dst)
            pair = (edge.src, edge.dst)
            labels = self.labels.setdefault(pair, {})
            if edge.label in labels:
                continue
            labels[edge.label] = edge.kind
            self.out.setdefault(edge.src, set()).add(edge.dst)
            self.distinct_edges += 1

    def successors(self, v: BuuId) -> set[BuuId]:
        return self.out.get(v, set())

    def hop(self, u: BuuId, v: BuuId) -> dict[Key, EdgeType]:
        return self.labels.get((u, v), {})


def _count_short_cycles(graph: _CheckerGraph) -> CycleCounts:
    """Exact 2-/3-cycle counts by label class, the brute-force way.

    Every cycle is a choice of one labelled edge per hop; this iterates
    those choices literally (no inclusion-exclusion shortcuts), counting
    ss/dd for 2-cycles and sss/ssd/ddd for 3-cycles.  Each vertex cycle
    is visited once by rooting at its smallest vertex.
    """
    counts = CycleCounts()
    for u in graph.vertices:
        for v in graph.successors(u):
            if v <= u:
                continue
            # 2-cycles u <-> v, rooted at u < v.
            back = graph.hop(v, u)
            if back:
                for la in graph.hop(u, v):
                    for lb in back:
                        if la == lb:
                            counts.ss += 1
                        else:
                            counts.dd += 1
            # 3-cycles u -> v -> w -> u, rooted at the smallest vertex u.
            for w in graph.successors(v):
                if w <= u or w == v:
                    continue
                closing = graph.hop(w, u)
                if not closing:
                    continue
                for la in graph.hop(u, v):
                    for lb in graph.hop(v, w):
                        for lc in closing:
                            distinct = len({la, lb, lc})
                            if distinct == 1:
                                counts.sss += 1
                            elif distinct == 2:
                                counts.ssd += 1
                            else:
                                counts.ddd += 1
    return counts


def _serial_order(graph: _CheckerGraph,
                  all_buus: Iterable[BuuId]) -> tuple[BuuId, ...] | None:
    """A witness equivalent serial order (None when the graph is cyclic)."""
    in_degree: dict[BuuId, int] = {v: 0 for v in all_buus}
    for v in graph.vertices:
        in_degree.setdefault(v, 0)
    for (_, dst), labels in graph.labels.items():
        if labels:
            in_degree[dst] += 1
    ready = [v for v, deg in in_degree.items() if deg == 0]
    heapq.heapify(ready)
    order: list[BuuId] = []
    while ready:
        v = heapq.heappop(ready)
        order.append(v)
        for succ in graph.successors(v):
            in_degree[succ] -= 1
            if in_degree[succ] == 0:
                heapq.heappush(ready, succ)
    if len(order) != len(in_degree):
        return None
    return tuple(order)


def _enumerate_vertex_cycles(
    graph: _CheckerGraph, max_length: int
) -> Iterable[tuple[BuuId, ...]]:
    """Yield each vertex-simple directed cycle of length <= max_length
    once (from its smallest vertex), shortest lengths first."""
    by_length: dict[int, list[tuple[BuuId, ...]]] = {
        n: [] for n in range(2, max_length + 1)
    }
    for root in sorted(graph.vertices):
        stack: list[tuple[BuuId, tuple[BuuId, ...]]] = [(root, (root,))]
        while stack:
            current, path = stack.pop()
            for nxt in graph.successors(current):
                if nxt == root:
                    if len(path) >= 2:
                        by_length[len(path)].append(path)
                    continue
                if nxt < root or nxt in path:
                    continue
                if len(path) < max_length:
                    stack.append((nxt, path + (nxt,)))
    for length in range(2, max_length + 1):
        yield from by_length[length]


def _classify_cycles(
    graph: _CheckerGraph,
    max_length: int,
    max_witnesses: int,
    counts: dict[GClass, int],
    witnesses: dict[GClass, list],
) -> None:
    """Count and witness every cycle instance of length <= max_length.

    A vertex cycle with parallel labelled edges yields one instance per
    label choice; each instance is classified independently (a triangle
    can be G1c through its wr labels and G2 through an rw one).
    """
    for path in _enumerate_vertex_cycles(graph, max_length):
        hops = []
        closed = path + (path[0],)
        for a, b in zip(closed, closed[1:]):
            hops.append([
                CheckerEdge(a, b, kind, label)
                for label, kind in graph.hop(a, b).items()
            ])
        for combo in itertools.product(*hops):
            gclass = classify_cycle([edge.kind for edge in combo])
            counts[gclass] = counts.get(gclass, 0) + 1
            bucket = witnesses.setdefault(gclass, [])
            if len(bucket) < max_witnesses:
                bucket.append(CycleWitness(gclass, tuple(combo)))


def check_operations(
    ops: Sequence[Operation],
    *,
    commits: Iterable[BuuId] | Mapping[BuuId, int] | None = None,
    aborted: Iterable[BuuId] | None = None,
    max_cycle_length: int = 4,
    max_witnesses: int = 3,
) -> CheckReport:
    """Exactly check a history for isolation anomalies.

    Parameters
    ----------
    ops:
        The history in visibility order (any order works; operations are
        keyed by ``seq``).
    commits:
        BUUs known to have committed.  When given, BUUs that issued
        operations but never committed are treated as aborted (their
        observed writes are G1a); when omitted entirely, every BUU is
        assumed committed.
    aborted:
        Explicitly aborted BUUs — overrides the commit-set inference.
    max_cycle_length:
        Classify and witness cycles up to this many edges (>= 2).  The
        2-/3-cycle counts in ``report.cycles`` and the ``serializable``
        verdict are exact regardless of this bound.
    max_witnesses:
        Concrete witnesses retained per anomaly class.
    """
    if max_cycle_length < 2:
        raise ValueError("max_cycle_length must be >= 2 (cycles have >= 2 "
                         "edges)")
    if max_witnesses < 0:
        raise ValueError("max_witnesses must be >= 0")
    ops = list(ops)
    touched = {op.buu for op in ops}
    if aborted is not None:
        aborted_set = set(aborted)
    elif commits is not None:
        committed = set(commits)
        aborted_set = touched - committed if committed else set()
    else:
        aborted_set = set()

    edges, stats, observations = derive_dependency_edges(ops)
    graph = _CheckerGraph(edges)
    cycles = _count_short_cycles(graph)
    order = _serial_order(graph, touched)

    counts: dict[GClass, int] = {}
    witnesses: dict[GClass, list] = {}
    _classify_cycles(graph, max_cycle_length, max_witnesses, counts,
                     witnesses)

    # G1a / G1b: read-shaped phenomena, straight from the observations.
    final_write: dict[tuple[Key, BuuId], int] = {}
    for edge_key, seq in _final_writes(ops).items():
        final_write[edge_key] = seq
    for obs in observations:
        if obs.writer == obs.reader:
            continue
        if obs.writer in aborted_set:
            gclass = GClass.G1A
        elif final_write.get((obs.key, obs.writer), obs.write_seq) \
                > obs.write_seq:
            gclass = GClass.G1B
        else:
            continue
        counts[gclass] = counts.get(gclass, 0) + 1
        bucket = witnesses.setdefault(gclass, [])
        if len(bucket) < max_witnesses:
            bucket.append(ReadWitness(gclass, obs.writer, obs.reader,
                                      obs.key, obs.write_seq, obs.read_seq))

    classified = sum(counts.get(c, 0) for c in CYCLE_CLASSES)
    return CheckReport(
        operations=len(ops),
        buus=len(touched),
        aborted=tuple(sorted(aborted_set)),
        edges=stats,
        distinct_edges=graph.distinct_edges,
        cycles=cycles,
        counts=counts,
        witnesses={g: tuple(w) for g, w in witnesses.items()},
        max_cycle_length=max_cycle_length,
        serializable=order is not None,
        serial_order=order or (),
        cycles_beyond_bound=(order is None and classified == 0),
    )


def _final_writes(ops: Sequence[Operation]) -> dict[tuple[Key, BuuId], int]:
    """The seq of each BUU's last write per item (for G1b)."""
    final: dict[tuple[Key, BuuId], int] = {}
    for op in ops:
        if op.is_write():
            key = (op.key, op.buu)
            if op.seq > final.get(key, -1):
                final[key] = op.seq
    return final


def check_trace(trace, *, max_cycle_length: int = 4,
                max_witnesses: int = 3) -> CheckReport:
    """Check a recorded :class:`~repro.sim.traces.Trace`.

    The trace's commit records drive the aborted-BUU inference: a BUU
    with operations but no commit record is treated as aborted (its
    writes were never final — any read of them is a G1a).  Traces
    recorded without lifecycle events check all BUUs as committed.
    """
    commits = [buu for buu, _ in trace.commits]
    return check_operations(
        trace.ops,
        commits=commits if commits else None,
        max_cycle_length=max_cycle_length,
        max_witnesses=max_witnesses,
    )


def exact_cycle_counts(ops: Sequence[Operation]) -> CycleCounts:
    """Just the exact 2-/3-cycle label-class counts of a history — the
    cheap entry point for differential tests against the monitor."""
    edges, _, _ = derive_dependency_edges(ops)
    return _count_short_cycles(_CheckerGraph(edges))
