"""Exact offline isolation checkers — the independent oracle layer.

``repro.checkers`` rebuilds a history's full dependency graph with no
sampling, counts every 2-/3-cycle exactly, and classifies anomalies into
the G-class taxonomy (G0, G1a, G1b, G1c, G-SI, G2).  It shares *no*
collection or counting code with the real-time monitor, so differential
disagreements implicate exactly one implementation.

Entry points:

- :func:`check_operations` / :func:`check_trace` — full
  :class:`CheckReport` with per-class counts and minimal witnesses;
- :func:`exact_cycle_counts` — just the 2-/3-cycle label-class counts,
  for differentials against the monitor's estimator.
"""

from repro.checkers.checker import (
    CheckReport,
    CheckerEdge,
    CycleWitness,
    ReadWitness,
    check_operations,
    check_trace,
    derive_dependency_edges,
    exact_cycle_counts,
)
from repro.checkers.taxonomy import (
    CYCLE_CLASSES,
    GClass,
    READ_CLASSES,
    classify_cycle,
)

__all__ = [
    "CYCLE_CLASSES",
    "CheckReport",
    "CheckerEdge",
    "CycleWitness",
    "GClass",
    "READ_CLASSES",
    "ReadWitness",
    "check_operations",
    "check_trace",
    "classify_cycle",
    "derive_dependency_edges",
    "exact_cycle_counts",
]
