"""The isolation-anomaly taxonomy the exact checker classifies into.

RushMon's real-time detector reports *how many* short dependency cycles
exist; it cannot say *what kind of violation* each cycle is.  This module
provides the naming layer: the G-class hierarchy of Adya's portable
isolation definitions ("Generalized Isolation Level Definitions", ICDE
2000), as systematised by Li et al. ("A Systematic Definition and
Classification of Data Anomalies") and implemented by offline checkers in
the Elle family (Kingsbury & Alvaro, VLDB 2020).

Two groups of phenomena:

**Cycle-shaped** — classified from the multiset (and cyclic arrangement)
of edge kinds around a dependency cycle:

- **G0 (dirty write / write cycle)** — a cycle of ``ww`` edges only.
  Proscribed at every ANSI level including read uncommitted.
- **G1c (circular information flow)** — a cycle of ``ww``/``wr`` edges
  with at least one ``wr``.  Proscribed at read committed and above.
- **G-SI (write-skew family)** — a cycle containing two *cyclically
  consecutive* ``rw`` anti-dependency edges.  Fekete et al. ("Making
  Snapshot Isolation Serializable", TODS 2005) prove these are exactly
  the cycles snapshot isolation admits; the classic two-item write skew
  (``rw`` + ``rw``) is the minimal instance.
- **G2 (anti-dependency cycle)** — a cycle with at least one ``rw`` edge
  but *no* two consecutive ``rw`` edges.  Impossible under snapshot
  isolation, so its presence certifies isolation below SI (lost update
  — ``rw`` + ``ww`` on one item — is the canonical example).

**Read-shaped** — detected directly from the history, no cycle needed:

- **G1a (aborted read)** — a read observed a write by a transaction that
  never committed.
- **G1b (intermediate read)** — a read observed a write that was not the
  writer's *final* write to that item (the writer overwrote it later).

Every dependency cycle maps to exactly one of {G0, G1c, G-SI, G2}; the
four are mutually exclusive and collectively exhaustive over cycles, so
per-class counts sum to the total cycle count.
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.core.types import EdgeType


class GClass(enum.Enum):
    """Anomaly classes reported by :mod:`repro.checkers`."""

    G0 = "G0"          # dirty write: all-ww cycle
    G1A = "G1a"        # aborted read
    G1B = "G1b"        # intermediate read
    G1C = "G1c"        # circular information flow: ww/wr cycle, >= 1 wr
    G_SI = "G-SI"      # write-skew family: two consecutive rw edges
    G2 = "G2"          # anti-dependency cycle not admissible under SI

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Classes that are shapes of dependency cycles (vs. read phenomena).
CYCLE_CLASSES = (GClass.G0, GClass.G1C, GClass.G_SI, GClass.G2)

#: Classes detected directly from reads, without any cycle.
READ_CLASSES = (GClass.G1A, GClass.G1B)


def classify_cycle(kinds: Sequence[EdgeType]) -> GClass:
    """Classify one dependency cycle from its edge kinds in cyclic order.

    ``kinds[i]`` is the kind of the i-th edge walking around the cycle;
    the edge after the last is the first again (the arrangement matters:
    G-SI needs two *adjacent* anti-dependencies).
    """
    if not kinds:
        raise ValueError("a cycle has at least two edges")
    rw_positions = [i for i, kind in enumerate(kinds) if kind is EdgeType.RW]
    if not rw_positions:
        if all(kind is EdgeType.WW for kind in kinds):
            return GClass.G0
        return GClass.G1C
    n = len(kinds)
    for i in rw_positions:
        if kinds[(i + 1) % n] is EdgeType.RW:
            return GClass.G_SI
    return GClass.G2
