"""Recovering intermediate results after anomaly storms (§8 future work).

The paper's second future direction: for non-convex models, "when the
system goes wrong (e.g. excessive number of anomalies 'ruin' the model)
the model is not able to recover itself", so the intermediate result
should be restored.  :class:`RecoveringTrainer` implements the natural
design over this repository's stack:

- after every round it inspects the monitor's windowed anomaly rate and
  the loss;
- while the run is healthy, it checkpoints the shared model;
- when the loss blows past the best checkpoint by ``blowup_factor`` —
  or the anomaly rate exceeds ``anomaly_threshold`` — it *rolls the
  shared store back* to the last good checkpoint and tightens the
  staleness bound one rung, so the restored model is not immediately
  ruined again.

The checkpoint/rollback acts on the simulator's store between rounds
(a quiesced point: ``Simulator.run`` drains all pending writes), so no
in-flight write can resurrect the ruined state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.controller import DEFAULT_LADDER
from repro.ml.async_sgd import AsyncTrainer


@dataclass
class RecoveryEvent:
    """One rollback: when, why, and what it restored."""

    round_index: int
    reason: str  # "loss_blowup" | "anomaly_spike"
    loss_before: float
    loss_restored: float
    new_bound: int | None


@dataclass
class RecoveryResult:
    """Outcome of a recovering training run."""

    final_loss: float
    best_loss: float
    rounds: int
    events: list[RecoveryEvent] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)

    @property
    def rollbacks(self) -> int:
        return len(self.events)


class RecoveringTrainer:
    """Checkpoint/rollback + staleness tightening around an AsyncTrainer.

    Parameters
    ----------
    trainer:
        The underlying :class:`~repro.ml.async_sgd.AsyncTrainer`.
    blowup_factor:
        Roll back when the loss exceeds ``blowup_factor *`` the best
        checkpointed loss.
    anomaly_threshold:
        Roll back when the windowed anomaly rate (anomalies per
        simulated step) exceeds this, regardless of the loss — the
        monitor acting *before* the damage is measurable, which is the
        paper's pitch.  ``None`` disables the anomaly trigger.
    ladder:
        Staleness bounds, tightest first; each rollback steps one rung
        tighter from the current position.
    """

    def __init__(self, trainer: AsyncTrainer, blowup_factor: float = 1.5,
                 anomaly_threshold: float | None = None,
                 ladder: tuple[int | None, ...] = DEFAULT_LADDER) -> None:
        if blowup_factor <= 1.0:
            raise ValueError("blowup_factor must be > 1")
        self.trainer = trainer
        self.blowup_factor = blowup_factor
        self.anomaly_threshold = anomaly_threshold
        self.ladder = ladder
        current = trainer.simulator.config.staleness_bound
        self._position = (
            ladder.index(current) if current in ladder else len(ladder) - 1
        )
        self._checkpoint: dict = dict(trainer.simulator.store)
        self._checkpoint_loss = trainer.current_loss()

    @property
    def bound(self) -> int | None:
        return self.ladder[self._position]

    def _tighten(self) -> None:
        if self._position > 0:
            self._position -= 1

    def train(self, rounds: int) -> RecoveryResult:
        """Run ``rounds`` monitored rounds with rollback protection."""
        trainer = self.trainer
        result = RecoveryResult(final_loss=self._checkpoint_loss,
                                best_loss=self._checkpoint_loss, rounds=0)
        for round_index in range(rounds):
            trainer.simulator.config.staleness_bound = self.bound
            start_time = trainer.simulator.now
            trainer.simulator.run(trainer._round_buus())
            report = trainer.monitor.close_window(trainer.simulator.now)
            window = max(1, trainer.simulator.now - start_time)
            rate = report.anomalies / window
            loss = trainer.current_loss()
            result.rounds = round_index + 1

            blowup = (loss != loss  # NaN
                      or loss > self.blowup_factor * self._checkpoint_loss)
            spike = (self.anomaly_threshold is not None
                     and rate > self.anomaly_threshold)
            if blowup or spike:
                reason = "loss_blowup" if blowup else "anomaly_spike"
                self._tighten()
                trainer.simulator.store.clear()
                trainer.simulator.store.update(self._checkpoint)
                restored = trainer.current_loss()
                result.events.append(RecoveryEvent(
                    round_index=round_index,
                    reason=reason,
                    loss_before=loss,
                    loss_restored=restored,
                    new_bound=self.bound,
                ))
                result.losses.append(restored)
                continue

            result.losses.append(loss)
            if loss < self._checkpoint_loss:
                self._checkpoint = dict(trainer.simulator.store)
                self._checkpoint_loss = loss
                result.best_loss = loss
        result.final_loss = trainer.current_loss()
        return result
