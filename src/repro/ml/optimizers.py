"""Optimizer update rules compiled into BUUs (§7.1's three algorithms).

Each optimizer turns a (sample, learning rate) pair into a
:class:`~repro.sim.buu.Buu` whose reads cover the weights (and any
optimizer state) it needs and whose writes are parameter-server-style
*deltas* (additive).  Optimizer state (momentum velocity, RMSprop cache)
lives in the shared store under prefixed keys, so it is itself subject to
weak-isolation chaos — matching shared-state ML systems.

- ``asgd``   — plain asynchronous SGD.
- ``asgdm``  — ASGD with momentum [Qian 1999].
- ``rmsprop``— RMSprop [Tieleman & Hinton 2012].

The paper's point (Fig 9) is that ASGDM and RMSprop smooth the descent,
so out-of-order execution harms them less.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.ml.logistic import sample_gradient, sigmoid
from repro.sim.buu import Buu
from repro.workloads.datasets import ClickDataset, ClickSample

#: An optimizer factory: (dataset, sample, learning rate) -> Buu
OptimizerFn = Callable[[ClickDataset, ClickSample, float], Buu]


def asgd_buu(dataset: ClickDataset, sample: ClickSample, lr: float) -> Buu:
    """Plain ASGD: read the active weights, push -lr * gradient."""
    keys = [dataset.weight_key(f) for f in sample.features]

    def compute(values: dict) -> dict:
        grad = sample_gradient(values, sample, dataset)
        return {k: -lr * g for k, g in grad.items()}

    return Buu(reads=keys, compute=compute, additive=True)


def asgdm_buu(dataset: ClickDataset, sample: ClickSample, lr: float,
              momentum: float = 0.9) -> Buu:
    """ASGD with momentum: velocity state shared under ``m:`` keys.

    v' = mu * v + g ; w -= lr * v'.  Both the velocity update and the
    weight update are expressed as additive deltas computed from the
    (possibly stale) values read.
    """
    weight_keys = [dataset.weight_key(f) for f in sample.features]
    velocity_keys = [f"m:{k}" for k in weight_keys]

    def compute(values: dict) -> dict:
        grad = sample_gradient(values, sample, dataset)
        deltas: dict[str, float] = {}
        for k in weight_keys:
            v_old = values.get(f"m:{k}") or 0.0
            v_new = momentum * v_old + grad[k]
            deltas[f"m:{k}"] = v_new - v_old
            deltas[k] = -lr * v_new
        return deltas

    return Buu(reads=weight_keys + velocity_keys, compute=compute, additive=True)


def rmsprop_buu(dataset: ClickDataset, sample: ClickSample, lr: float,
                decay: float = 0.9, epsilon: float = 1e-6) -> Buu:
    """RMSprop: per-weight squared-gradient cache under ``v:`` keys.

    c' = rho * c + (1 - rho) * g^2 ; w -= lr * g / sqrt(c' + eps).
    """
    weight_keys = [dataset.weight_key(f) for f in sample.features]
    cache_keys = [f"v:{k}" for k in weight_keys]

    def compute(values: dict) -> dict:
        grad = sample_gradient(values, sample, dataset)
        deltas: dict[str, float] = {}
        for k in weight_keys:
            g = grad[k]
            c_old = values.get(f"v:{k}") or 0.0
            c_new = decay * c_old + (1.0 - decay) * g * g
            deltas[f"v:{k}"] = c_new - c_old
            deltas[k] = -lr * g / math.sqrt(c_new + epsilon)
        return deltas

    return Buu(reads=weight_keys + cache_keys, compute=compute, additive=True)


def minibatch_asgd_buu(dataset: ClickDataset, samples: list[ClickSample],
                       lr: float) -> Buu:
    """ASGD over a mini-batch: one BUU reads the union of the batch's
    active weights and pushes the averaged gradient (Fig 3a's batch-size
    knob — larger batches mean bigger BUUs and fewer updates)."""
    keys = sorted({dataset.weight_key(f) for s in samples for f in s.features})

    def compute(values: dict) -> dict:
        deltas: dict[str, float] = {}
        for sample in samples:
            grad = sample_gradient(values, sample, dataset)
            for k, g in grad.items():
                deltas[k] = deltas.get(k, 0.0) - lr * g / len(samples)
        return deltas

    return Buu(reads=keys, compute=compute, additive=True)


OPTIMIZERS: dict[str, OptimizerFn] = {
    "asgd": asgd_buu,
    "asgdm": asgdm_buu,
    "rmsprop": rmsprop_buu,
}


def make_optimizer(name: str) -> OptimizerFn:
    """Look up an optimizer factory by name."""
    if name not in OPTIMIZERS:
        raise ValueError(f"unknown optimizer {name!r}; options: {sorted(OPTIMIZERS)}")
    return OPTIMIZERS[name]


def sequential_sgd(dataset: ClickDataset, lr: float, epochs: int,
                   seed: int = 0) -> dict[str, float]:
    """Reference sequential SGD — the isolated gold standard."""
    import random

    rng = random.Random(seed)
    weights: dict[str, float] = {}
    for _ in range(epochs):
        order = list(dataset.samples)
        rng.shuffle(order)
        for sample in order:
            grad = sample_gradient(weights, sample, dataset)
            for k, g in grad.items():
                weights[k] = (weights.get(k) or 0.0) - lr * g
    return weights


__all__ = [
    "OPTIMIZERS",
    "OptimizerFn",
    "asgd_buu",
    "asgdm_buu",
    "make_optimizer",
    "rmsprop_buu",
    "sequential_sgd",
    "sigmoid",
]
