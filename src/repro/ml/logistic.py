"""Sparse logistic regression: loss and gradient (Appendix A workload).

The model is a weight per one-hot feature; a sample's score is the sum of
its active features' weights; the label is ±1.  Losses and gradients are
written against plain ``dict`` parameter snapshots so they can evaluate
both the shared store (possibly mid-training and inconsistent) and
locally-read stale values inside a BUU.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from repro.workloads.datasets import ClickDataset, ClickSample


def sigmoid(z: float) -> float:
    """Numerically stable logistic function."""
    if z >= 0:
        return 1.0 / (1.0 + math.exp(-z))
    e = math.exp(z)
    return e / (1.0 + e)


def sample_score(weights: Mapping[str, float], sample: ClickSample,
                 dataset: ClickDataset) -> float:
    """Linear score of a sample: sum of its active features' weights."""
    return sum((weights.get(dataset.weight_key(f)) or 0.0)
               for f in sample.features)


def sample_loss(weights: Mapping[str, float], sample: ClickSample,
                dataset: ClickDataset) -> float:
    """Logistic loss -log sigmoid(y * z), numerically stable."""
    margin = sample.label * sample_score(weights, sample, dataset)
    # log(1 + exp(-m)) without overflow
    if margin > 0:
        return math.log1p(math.exp(-margin))
    return -margin + math.log1p(math.exp(margin))


def dataset_loss(weights: Mapping[str, float], dataset: ClickDataset,
                 samples: Iterable[ClickSample] | None = None) -> float:
    """Mean logistic loss over the dataset (or a subset)."""
    samples = list(samples) if samples is not None else dataset.samples
    if not samples:
        return 0.0
    return sum(sample_loss(weights, s, dataset) for s in samples) / len(samples)


def sample_gradient(weights: Mapping[str, float], sample: ClickSample,
                    dataset: ClickDataset) -> dict[str, float]:
    """Gradient of the logistic loss w.r.t. the sample's active weights.

    d/dw_f of -log sigmoid(y z) = -(y)(1 - sigmoid(y z)) for active f.
    """
    z = sample_score(weights, sample, dataset)
    coeff = -sample.label * (1.0 - sigmoid(sample.label * z))
    return {dataset.weight_key(f): coeff for f in sample.features}


def optimum_loss(dataset: ClickDataset) -> float:
    """Loss of the planted generating model — the convergence target."""
    weights = {dataset.weight_key(i): w for i, w in enumerate(dataset.true_weights)}
    return dataset_loss(weights, dataset)


def initial_loss(dataset: ClickDataset) -> float:
    """Loss of the all-zero model (training starting point)."""
    return dataset_loss({}, dataset)
