"""Asynchronous training loop over the simulator, with live monitoring.

:class:`AsyncTrainer` drives an optimizer's BUUs through the concurrency
simulator in rounds, evaluating the shared model's loss between rounds
and collecting the monitor's anomaly reports alongside — the setup behind
Figures 3, 7, 8 and 9.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.config import RushMonConfig
from repro.core.monitor import RushMon
from repro.ml.logistic import dataset_loss, initial_loss, optimum_loss
from repro.ml.optimizers import make_optimizer
from repro.sim.buu import Buu
from repro.sim.scheduler import SimConfig, Simulator
from repro.workloads.datasets import ClickDataset


@dataclass
class RoundRecord:
    """Per-round training telemetry."""

    round_index: int
    buus_total: int
    loss: float
    estimated_2: float
    estimated_3: float
    sim_time: int

    @property
    def anomaly_rate_2(self) -> float:
        """2-cycles per unit of simulated time (the paper reports
        cycles per second)."""
        return self.estimated_2 / max(1, self.sim_time)

    @property
    def anomaly_rate_3(self) -> float:
        return self.estimated_3 / max(1, self.sim_time)


@dataclass
class TrainingResult:
    """Outcome of an :class:`AsyncTrainer` run."""

    rounds: list[RoundRecord] = field(default_factory=list)
    buus_to_converge: int | None = None
    converged: bool = False
    final_loss: float = float("inf")

    @property
    def total_2_cycles(self) -> float:
        return sum(r.estimated_2 for r in self.rounds)

    @property
    def total_3_cycles(self) -> float:
        return sum(r.estimated_3 for r in self.rounds)

    def cycles_per_time(self) -> tuple[float, float]:
        """(2-cycle, 3-cycle) counts per unit simulated time."""
        if not self.rounds:
            return (0.0, 0.0)
        total_time = max(1, self.rounds[-1].sim_time)
        return (self.total_2_cycles / total_time, self.total_3_cycles / total_time)


class AsyncTrainer:
    """Asynchronous optimization with a RushMon monitor attached.

    Parameters
    ----------
    dataset:
        A :func:`~repro.workloads.datasets.synthetic_click_dataset`.
    optimizer:
        ``"asgd"``, ``"asgdm"`` or ``"rmsprop"``.
    sim_config:
        Concurrency environment (workers, latency, staleness bound...).
    monitor_config:
        RushMon configuration; ``None`` attaches an unsampled monitor.
    learning_rate, batch_per_round:
        SGD step size and BUUs executed between loss evaluations.
    """

    def __init__(
        self,
        dataset: ClickDataset,
        optimizer: str = "asgd",
        sim_config: SimConfig | None = None,
        monitor_config: RushMonConfig | None = None,
        learning_rate: float = 0.05,
        batch_per_round: int = 200,
        seed: int = 0,
    ) -> None:
        self.dataset = dataset
        self.optimizer_name = optimizer
        self._make_buu = make_optimizer(optimizer)
        self.learning_rate = learning_rate
        self.batch_per_round = batch_per_round
        self._rng = random.Random(seed)
        self.monitor = RushMon(
            monitor_config or RushMonConfig(sampling_rate=1, mob=False,
                                            pruning="both"),
        )
        self.simulator = Simulator(
            sim_config or SimConfig(num_workers=8, seed=seed),
            listeners=[self.monitor],
        )
        self.optimum = optimum_loss(dataset)
        self.start_loss = initial_loss(dataset)

    def _round_buus(self) -> list[Buu]:
        samples = [
            self.dataset.samples[self._rng.randrange(len(self.dataset.samples))]
            for _ in range(self.batch_per_round)
        ]
        return [self._make_buu(self.dataset, s, self.learning_rate)
                for s in samples]

    def current_loss(self) -> float:
        return dataset_loss(self.simulator.store, self.dataset)

    def train(
        self,
        rounds: int,
        convergence_margin: float = 0.05,
        divergence_factor: float = 4.0,
        staleness_schedule: dict[int, int | None] | None = None,
        stop_at_convergence: bool = False,
    ) -> TrainingResult:
        """Run training rounds; stop early on convergence or divergence.

        ``staleness_schedule`` maps round index -> new staleness bound,
        reproducing the Fig 8 mid-run reinforcement experiment.
        """
        result = TrainingResult()
        target = self.optimum + convergence_margin
        blowup = self.start_loss * divergence_factor
        buus_total = 0
        for round_index in range(rounds):
            if staleness_schedule and round_index in staleness_schedule:
                self.simulator.config.staleness_bound = (
                    staleness_schedule[round_index]
                )
            self.simulator.run(self._round_buus())
            buus_total += self.batch_per_round
            loss = self.current_loss()
            report = self.monitor.close_window(self.simulator.now)
            result.rounds.append(
                RoundRecord(
                    round_index=round_index,
                    buus_total=buus_total,
                    loss=loss,
                    estimated_2=report.estimated_2,
                    estimated_3=report.estimated_3,
                    sim_time=self.simulator.now,
                )
            )
            if loss <= target and result.buus_to_converge is None:
                result.buus_to_converge = buus_total
                result.converged = True
                if stop_at_convergence:
                    break
            if loss != loss or loss > blowup:  # NaN or blow-up: diverged
                break
        result.final_loss = result.rounds[-1].loss if result.rounds else float("inf")
        return result
