"""Optimization substrate: logistic regression, optimizers, async training."""

from repro.ml.async_sgd import AsyncTrainer, RoundRecord, TrainingResult
from repro.ml.recovery import RecoveringTrainer, RecoveryEvent, RecoveryResult
from repro.ml.coordinate import (
    AsyncCoordinateDescent,
    RidgeProblem,
    random_ridge_problem,
)
from repro.ml.logistic import (
    dataset_loss,
    initial_loss,
    optimum_loss,
    sample_gradient,
    sample_loss,
    sigmoid,
)
from repro.ml.optimizers import (
    OPTIMIZERS,
    asgd_buu,
    asgdm_buu,
    make_optimizer,
    rmsprop_buu,
    sequential_sgd,
)

__all__ = [
    "AsyncTrainer",
    "RoundRecord",
    "TrainingResult",
    "RecoveringTrainer",
    "RecoveryEvent",
    "RecoveryResult",
    "AsyncCoordinateDescent",
    "RidgeProblem",
    "random_ridge_problem",
    "dataset_loss",
    "initial_loss",
    "optimum_loss",
    "sample_gradient",
    "sample_loss",
    "sigmoid",
    "OPTIMIZERS",
    "asgd_buu",
    "asgdm_buu",
    "make_optimizer",
    "rmsprop_buu",
    "sequential_sgd",
]
