"""Asynchronous stochastic coordinate descent (§2.2's "coordinate update").

Minimises a ridge-regularised least-squares objective

    f(w) = 1/(2m) * sum_i (x_i . w - y_i)^2 + (lam/2) * |w|^2

by exact coordinate minimisation: a BUU picks coordinate j, reads the
residual-relevant weights, and writes the optimal w_j given the others.
The closed-form solution makes the isolated algorithm monotone; stale
reads break the monotonicity, so chaos shows up as slower or stalled
convergence — the PASSCoDe-style workload the related work cites.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.sim.buu import Buu
from repro.sim.scheduler import SimConfig, Simulator
from repro.core.config import RushMonConfig
from repro.core.monitor import RushMon


def weight_key(j: int) -> str:
    """Store key holding coordinate j's weight."""
    return f"cd{j}"


@dataclass
class RidgeProblem:
    """A dense ridge-regression instance with a known exact solution."""

    features: np.ndarray  # (m, d)
    targets: np.ndarray   # (m,)
    lam: float = 0.1
    solution: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        m, d = self.features.shape
        gram = self.features.T @ self.features / m + self.lam * np.eye(d)
        rhs = self.features.T @ self.targets / m
        self.solution = np.linalg.solve(gram, rhs)

    @property
    def dimension(self) -> int:
        return self.features.shape[1]

    def loss(self, weights: np.ndarray) -> float:
        m = self.features.shape[0]
        residual = self.features @ weights - self.targets
        return float(
            residual @ residual / (2 * m)
            + self.lam / 2 * (weights @ weights)
        )

    def optimal_loss(self) -> float:
        return self.loss(self.solution)


def random_ridge_problem(num_samples: int = 120, dimension: int = 12,
                         lam: float = 0.1, seed: int = 0) -> RidgeProblem:
    """Generate a random dense ridge instance with a planted linear model."""
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(num_samples, dimension))
    true_weights = rng.normal(size=dimension)
    targets = features @ true_weights + 0.05 * rng.normal(size=num_samples)
    return RidgeProblem(features, targets, lam)


class AsyncCoordinateDescent:
    """Drives asynchronous exact coordinate descent on the simulator."""

    def __init__(self, problem: RidgeProblem,
                 sim_config: SimConfig | None = None,
                 monitor_config: RushMonConfig | None = None,
                 seed: int = 0) -> None:
        self.problem = problem
        self._rng = random.Random(seed)
        self.monitor = RushMon(
            monitor_config or RushMonConfig(sampling_rate=1, mob=False)
        )
        store = {weight_key(j): 0.0 for j in range(problem.dimension)}
        self.simulator = Simulator(
            sim_config or SimConfig(num_workers=4, seed=seed),
            store=store,
            listeners=[self.monitor],
        )
        m = problem.features.shape[0]
        # Precompute the quadratic coefficients: for coordinate j,
        # f is minimised at (b_j - sum_{k != j} G_jk w_k) / G_jj with
        # G = X^T X / m + lam I and b = X^T y / m.
        self._gram = (problem.features.T @ problem.features / m
                      + problem.lam * np.eye(problem.dimension))
        self._rhs = problem.features.T @ problem.targets / m

    def coordinate_buu(self, j: int) -> Buu:
        d = self.problem.dimension
        keys = [weight_key(k) for k in range(d)]
        gram_row = self._gram[j]
        rhs_j = self._rhs[j]

        def compute(values: dict) -> dict:
            cross = sum(
                gram_row[k] * (values.get(weight_key(k)) or 0.0)
                for k in range(d) if k != j
            )
            return {weight_key(j): (rhs_j - cross) / gram_row[j]}

        return Buu(reads=keys, compute=compute, additive=False)

    def weights(self) -> np.ndarray:
        store = self.simulator.store
        return np.array(
            [store.get(weight_key(j)) or 0.0
             for j in range(self.problem.dimension)]
        )

    def loss(self) -> float:
        return self.problem.loss(self.weights())

    def run(self, rounds: int, tolerance: float = 1e-4):
        """Random coordinate sweeps; returns (buus, loss) checkpoints."""
        trajectory = []
        buus_total = 0
        for _ in range(rounds):
            order = list(range(self.problem.dimension))
            self._rng.shuffle(order)
            self.simulator.run(self.coordinate_buu(j) for j in order)
            buus_total += len(order)
            loss = self.loss()
            trajectory.append((buus_total, loss))
            if loss <= self.problem.optimal_loss() + tolerance:
                break
        return trajectory
