"""The networked RushMon ingestion client.

:class:`RushMonClient` is a monitor-listener facade (the same
``on_operation`` / ``begin_buu`` / ``commit_buu`` surface the in-process
monitors expose) that ships events to a :class:`~repro.net.server.
RushMonServer` from a background sender thread:

- producers enqueue into a **bounded queue** (``overflow="block"`` with
  a timeout raising :class:`ClientBackpressure`, or ``"shed"`` with
  honest drop counters);
- the sender frames the queue into numbered batches, keeps everything
  unacknowledged in sequence order, and **replays it all after a
  reconnect** — the server's per-session dedup turns replays into
  effectively-once delivery;
- an **ack deadline** on the oldest unacknowledged batch forces a
  reconnect when the server goes silent, which funnels every
  retransmission through the single replay path;
- reconnects use **exponential backoff with full jitter**; idle
  connections exchange **heartbeats** so a dead peer is noticed before
  the next batch;
- typed server errors are obeyed: ``backpressure`` pauses-and-resends
  (or sheds, per policy) the same sequence number, ``degraded`` follows
  the ``on_degraded`` policy, ``draining`` triggers a reconnect so the
  stream resumes against the restarted server, and an ``overloaded``
  admission refusal is honored by sleeping the server's ``retry_after``
  hint (capped at ``backoff_max``, jittered) before the next connect
  instead of hammering the exponential-backoff path — refusals are
  counted in :attr:`refusals_total`.
"""

from __future__ import annotations

import itertools
import random
import socket
import threading
import time
import uuid

from repro.core.types import Operation
from repro.net import protocol
from repro.net.protocol import FrameReader, ProtocolError, encode_frame

__all__ = ["ClientBackpressure", "RushMonClient"]

#: Wake-up granularity of the sender loop, seconds.
_TICK = 0.02


class ClientBackpressure(RuntimeError):
    """The client's bounded queue stayed full past ``block_timeout``."""


class _Batch:
    __slots__ = ("seq", "events", "sends", "last_sent")

    def __init__(self, seq: int, events: list) -> None:
        self.seq = seq
        self.events = events
        self.sends = 0
        self.last_sent = 0.0


class RushMonClient:
    """Stream BUU events to a RushMon server (see module docstring).

    Parameters
    ----------
    host / port:
        The server address.
    session:
        Session id; defaults to a fresh UUID.  Reusing an id across
        client restarts resumes its sequence space **only** if the new
        client also replays from the old one's state — normally let it
        default.
    batch_size / flush_interval:
        A batch ships when ``batch_size`` events are waiting or the
        oldest queued event is ``flush_interval`` seconds old.
    queue_capacity / overflow / block_timeout:
        Producer-side bounded queue.  ``overflow="block"`` makes
        producers wait up to ``block_timeout`` seconds (then raises
        :class:`ClientBackpressure`); ``"shed"`` drops the newest event
        and counts it in :attr:`shed_events_total`.
    ack_timeout:
        Deadline on the oldest unacknowledged batch; when it lapses the
        connection is presumed bad and torn down for a replaying
        reconnect.
    backoff_base / backoff_max:
        Reconnect backoff: sleep ``uniform(0, min(backoff_max,
        backoff_base * 2**attempt))`` (full jitter).
    heartbeat_interval:
        Idle time before a ping is sent; a peer silent for
        ``heartbeat_interval + ack_timeout`` is torn down.
    on_degraded:
        Reaction to a ``degraded`` server error: ``"block"`` (pause and
        resend the batch until the breaker clears) or ``"shed"`` (drop
        the batch's events, advance the sequence, count the loss).
    on_backpressure:
        Reaction to a ``backpressure`` server error: ``"block"``
        (pause, then resend the same sequence — the server resumes from
        its recorded partial offset) or ``"shed"`` (as above).
    codec:
        ``protocol.CODEC_JSON`` (default, always available),
        ``protocol.CODEC_MSGPACK`` (requires the optional dependency)
        or ``protocol.CODEC_COLUMNAR`` (packed column batches the
        server can decode without per-event object construction;
        always available, vectorized when numpy is installed).
    seed:
        Seeds the jitter RNG — lets chaos tests make backoff
        deterministic.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        session: str | None = None,
        batch_size: int = 64,
        flush_interval: float = 0.05,
        queue_capacity: int = 8192,
        overflow: str = "block",
        block_timeout: float = 5.0,
        ack_timeout: float = 2.0,
        connect_timeout: float = 1.0,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        heartbeat_interval: float = 1.0,
        on_degraded: str = "block",
        on_backpressure: str = "block",
        codec: int = protocol.CODEC_JSON,
        seed: int | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if overflow not in ("block", "shed"):
            raise ValueError("overflow must be 'block' or 'shed', "
                             f"got {overflow!r}")
        for name, policy in (("on_degraded", on_degraded),
                             ("on_backpressure", on_backpressure)):
            if policy not in ("block", "shed"):
                raise ValueError(f"{name} must be 'block' or 'shed', "
                                 f"got {policy!r}")
        for name, value in (("flush_interval", flush_interval),
                            ("block_timeout", block_timeout),
                            ("ack_timeout", ack_timeout),
                            ("connect_timeout", connect_timeout),
                            ("backoff_base", backoff_base),
                            ("backoff_max", backoff_max),
                            ("heartbeat_interval", heartbeat_interval)):
            if value <= 0:
                raise ValueError(f"{name} must be > 0, got {value!r}")
        self.host = host
        self.port = port
        self.session = session or uuid.uuid4().hex
        self.batch_size = batch_size
        self.flush_interval = flush_interval
        self.queue_capacity = queue_capacity
        self.overflow = overflow
        self.block_timeout = block_timeout
        self.ack_timeout = ack_timeout
        self.connect_timeout = connect_timeout
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.heartbeat_interval = heartbeat_interval
        self.on_degraded = on_degraded
        self.on_backpressure = on_backpressure
        self.codec = codec
        self._rng = random.Random(seed)
        # Producer -> sender queue of wire event records.
        self._lock = threading.Lock()
        self._space = threading.Condition(self._lock)
        self._settled = threading.Condition(self._lock)
        self._queue: list = []
        self._queue_oldest = 0.0
        # Sequence state (sender thread only, read under _lock for
        # flush/metrics).
        self._next_seq = itertools.count(1)
        self._pending: list[_Batch] = []
        self.acked_high = 0
        self._closing = False
        self._stop = threading.Event()
        self._fatal: str | None = None
        # Counters (ints under _lock or sender-thread-only; reconciled
        # against server-side dedup stats by the chaos suite).
        self.batches_sent_total = 0
        self.retransmits_total = 0
        self.reconnects_total = 0
        self.acked_batches_total = 0
        self.events_enqueued_total = 0
        self.shed_events_total = 0
        self.shed_batches_total = 0
        self.backpressure_errors_total = 0
        self.degraded_errors_total = 0
        self.heartbeats_total = 0
        self.refusals_total = 0
        #: The server's retry_after hint from the last ``overloaded``
        #: refusal; consumed (and cleared) by the next connect's sleep.
        self._retry_after_hint: float | None = None
        self._thread: threading.Thread | None = None
        self._sock: socket.socket | None = None
        self._ever_connected = False
        self._reader = FrameReader()

    # -- producer surface (monitor-listener protocol) --------------------------

    def start(self) -> "RushMonClient":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="rushmon-net-sender", daemon=True,
            )
            self._thread.start()
        return self

    def on_operation(self, op: Operation) -> None:
        self._enqueue(protocol.wire_op(op))

    def on_operations(self, ops) -> None:
        for op in ops:
            self._enqueue(protocol.wire_op(op))

    def begin_buu(self, buu: int, start_time: int = 0) -> None:
        self._enqueue(protocol.wire_begin(buu, start_time))

    def commit_buu(self, buu: int, commit_time: int = 0) -> None:
        self._enqueue(protocol.wire_commit(buu, commit_time))

    def _enqueue(self, record: list) -> None:
        if self._thread is None:
            self.start()
        with self._space:
            if self._closing:
                raise RuntimeError("RushMonClient is closed")
            if self._fatal is not None:
                raise RuntimeError(f"RushMonClient failed: {self._fatal}")
            if len(self._queue) >= self.queue_capacity:
                if self.overflow == "shed":
                    self.shed_events_total += 1
                    return
                deadline = time.monotonic() + self.block_timeout
                while len(self._queue) >= self.queue_capacity:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or self._closing:
                        raise ClientBackpressure(
                            f"client queue stayed at capacity "
                            f"({self.queue_capacity}) for "
                            f"{self.block_timeout:.3f}s; the server is not "
                            f"keeping up — slow the producer, raise "
                            f"queue_capacity, or use overflow='shed'"
                        )
                    self._space.wait(remaining)
                    if self._fatal is not None:
                        raise RuntimeError(
                            f"RushMonClient failed: {self._fatal}")
            if not self._queue:
                self._queue_oldest = time.monotonic()
            self._queue.append(record)
            self.events_enqueued_total += 1

    # -- introspection ---------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    @property
    def unacked_batches(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def counters(self) -> dict[str, int]:
        """A snapshot of the delivery counters, for logs and tests."""
        with self._lock:
            return {
                "batches_sent": self.batches_sent_total,
                "retransmits": self.retransmits_total,
                "reconnects": self.reconnects_total,
                "acked_batches": self.acked_batches_total,
                "events_enqueued": self.events_enqueued_total,
                "shed_events": self.shed_events_total,
                "shed_batches": self.shed_batches_total,
                "backpressure_errors": self.backpressure_errors_total,
                "degraded_errors": self.degraded_errors_total,
                "heartbeats": self.heartbeats_total,
                "refusals": self.refusals_total,
            }

    # -- completion ------------------------------------------------------------

    def flush(self, timeout: float = 10.0) -> bool:
        """Block until every enqueued event is acknowledged (or shed).

        Returns True on success, False on timeout.  Raises if the
        client hit a fatal protocol error.
        """
        deadline = time.monotonic() + timeout
        with self._settled:
            while self._queue or self._pending:
                if self._fatal is not None:
                    raise RuntimeError(f"RushMonClient failed: {self._fatal}")
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._settled.wait(remaining)
        return self._fatal is None

    def close(self, timeout: float = 10.0) -> bool:
        """Flush, say goodbye, and stop the sender thread.

        Returns True if everything was acknowledged before ``timeout``.
        """
        thread = self._thread
        if thread is None:
            with self._lock:
                self._closing = True
            return not self._queue
        try:
            clean = self.flush(timeout)
        except RuntimeError:
            clean = False
        with self._space:
            self._closing = True
            self._space.notify_all()
        self._stop.set()
        thread.join(timeout)
        return clean and not thread.is_alive()

    def __enter__(self) -> "RushMonClient":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- sender thread ---------------------------------------------------------

    def _run(self) -> None:
        attempt = 0
        last_recv = last_sent = time.monotonic()
        while not self._stop.is_set():
            if self._fatal is not None:
                self._drop_socket()
                with self._settled:
                    self._settled.notify_all()
                    self._space.notify_all()
                self._stop.wait(_TICK)
                continue
            if self._sock is None:
                if not self._connect(attempt):
                    attempt += 1
                    continue
                attempt = 0
                last_recv = last_sent = time.monotonic()
            now = time.monotonic()
            try:
                for _ in range(8):  # drain several due batches per tick
                    if not self._send_ready(now):
                        break
                    last_sent = now
                advanced = self._receive()
                if advanced:
                    last_recv = time.monotonic()
                now = time.monotonic()
                # Ack deadline: the server has our batch but we have no
                # acknowledgement — presume the connection bad and take
                # the replay path.
                with self._lock:
                    oldest = self._pending[0] if self._pending else None
                if oldest is not None and oldest.sends > 0 \
                        and now - oldest.last_sent > self.ack_timeout:
                    self._reconnect("ack deadline lapsed")
                    continue
                if oldest is None and now - last_recv > \
                        self.heartbeat_interval + self.ack_timeout:
                    self._reconnect("heartbeat deadline lapsed")
                    continue
                if now - last_sent > self.heartbeat_interval \
                        and now - last_recv > self.heartbeat_interval:
                    self._send_frame(protocol.ping(int(now * 1000)))
                    self.heartbeats_total += 1
                    last_sent = now
            except (OSError, ProtocolError) as exc:
                self._reconnect(f"transport error: {exc!r}")
                continue
            if self._closing_and_settled():
                break
        # Orderly goodbye (best effort).
        if self._sock is not None:
            try:
                self._sock.sendall(encode_frame(protocol.bye(), self.codec))
            except OSError:
                pass
        self._drop_socket()

    def _closing_and_settled(self) -> bool:
        with self._settled:
            if self._closing and not self._queue and not self._pending:
                self._settled.notify_all()
                return True
            # Wake flush() opportunistically; acks notify too, but a
            # notify here costs nothing and covers the shed paths.
            if not self._queue and not self._pending:
                self._settled.notify_all()
            return False

    # -- connection management -------------------------------------------------

    def _connect(self, attempt: int) -> bool:
        if attempt > 0:
            hint, self._retry_after_hint = self._retry_after_hint, None
            if hint is not None:
                # An admission refusal told us when capacity may be
                # back: honor it (capped, jittered) instead of the
                # generic exponential backoff.
                delay = min(self.backoff_max, hint) \
                    * self._rng.uniform(0.75, 1.25)
            else:
                delay = self._rng.uniform(
                    0.0,
                    min(self.backoff_max, self.backoff_base * 2 ** attempt))
            if self._stop.wait(delay):
                return False
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout)
        except OSError:
            return False
        sock.settimeout(_TICK)
        self._reader = FrameReader()
        try:
            sock.sendall(encode_frame(
                protocol.hello(self.session, self.acked_high), self.codec))
            welcome = self._await_welcome(sock)
        except (OSError, ProtocolError):
            sock.close()
            return False
        if welcome is None:
            sock.close()
            return False
        if welcome.get("type") == "error":
            sock.close()
            if welcome.get("code") == "overloaded":
                self.refusals_total += 1
                hint = welcome.get("retry_after")
                self._retry_after_hint = float(hint) if hint else None
            return False
        self._sock = sock
        if self._ever_connected:
            self.reconnects_total += 1
        self._ever_connected = True
        # Replay everything unacknowledged, oldest first.  The server's
        # welcome `high` may exceed acked_high (ingested but the ack was
        # lost) — we still resend those batches rather than trusting
        # `high` as an ack: the server dedups them, and the counters
        # (client retransmits vs server dedup hits) stay reconcilable.
        with self._lock:
            pending = list(self._pending)
        try:
            for batch in pending:
                self._send_batch(batch)
        except (OSError, ProtocolError):
            # A replay into a dead/saturated connection must not escape
            # and kill the sender thread — drop the socket and report
            # failure so the normal backoff path retries the connect
            # (and with it the whole replay).
            self._drop_socket()
            return False
        return True

    def _await_welcome(self, sock: socket.socket) -> dict | None:
        """The server's first message: a welcome, or a typed error
        (e.g. an ``overloaded`` admission refusal) for the caller to
        inspect.  ``None`` on timeout/EOF."""
        deadline = time.monotonic() + self.connect_timeout
        while time.monotonic() < deadline:
            if self._stop.is_set():
                return None
            try:
                data = sock.recv(65536)
            except socket.timeout:
                continue
            except OSError:
                return None
            if not data:
                return None
            for message in self._reader.feed(data):
                if message.get("type") in ("welcome", "error"):
                    return message
        return None

    def _reconnect(self, reason: str) -> None:
        self._drop_socket()

    def _drop_socket(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    # -- sending ---------------------------------------------------------------

    def _send_frame(self, message: dict) -> None:
        sock = self._sock
        if sock is None:
            raise OSError("not connected")
        sock.sendall(encode_frame(message, self.codec))

    def _send_batch(self, batch: _Batch) -> None:
        if batch.sends > 0:
            self.retransmits_total += 1
        self._send_frame(protocol.batch(self.session, batch.seq,
                                        batch.events))
        batch.sends += 1
        batch.last_sent = time.monotonic()
        self.batches_sent_total += 1

    def _send_ready(self, now: float) -> bool:
        """Form and send at most one batch from the queue."""
        with self._lock:
            if not self._queue:
                return False
            due = (len(self._queue) >= self.batch_size
                   or self._closing
                   or now - self._queue_oldest >= self.flush_interval)
            if not due:
                return False
            events = self._queue[:self.batch_size]
            del self._queue[:self.batch_size]
            if self._queue:
                self._queue_oldest = now
            batch = _Batch(next(self._next_seq), events)
            self._pending.append(batch)
            self._space.notify_all()
        self._send_batch(batch)
        return True

    # -- receiving -------------------------------------------------------------

    def _receive(self) -> bool:
        sock = self._sock
        if sock is None:
            return False
        try:
            data = sock.recv(65536)
        except socket.timeout:
            return False
        if not data:
            raise OSError("server closed the connection")
        got = False
        for message in self._reader.feed(data):
            got = True
            self._handle(message)
        return got

    def _handle(self, message: dict) -> None:
        kind = message.get("type")
        if kind == "ack":
            self._handle_ack(int(message.get("seq", 0)))
        elif kind == "error":
            self._handle_error(message)
        elif kind in ("pong", "welcome"):
            pass
        elif kind == "bye":
            raise OSError("server said bye")

    def _handle_ack(self, seq: int) -> None:
        with self._settled:
            if seq > self.acked_high:
                self.acked_high = seq
            while self._pending and self._pending[0].seq <= seq:
                self._pending.pop(0)
                self.acked_batches_total += 1
            if not self._pending and not self._queue:
                self._settled.notify_all()

    def _handle_error(self, message: dict) -> None:
        code = message.get("code")
        seq = message.get("seq")
        consumed = message.get("consumed", 0)
        if code == "backpressure":
            self.backpressure_errors_total += 1
            self._shed_or_pause(seq, self.on_backpressure, consumed)
        elif code == "degraded":
            self.degraded_errors_total += 1
            self._shed_or_pause(seq, self.on_degraded, consumed)
        elif code == "draining":
            # The server is shutting down; reconnect (with backoff)
            # until its replacement appears, then replay.
            raise OSError("server draining")
        elif code == "overloaded":
            # Admission control refused us; remember the hint so the
            # reconnect sleeps what the server asked for.
            self.refusals_total += 1
            hint = message.get("retry_after")
            self._retry_after_hint = float(hint) if hint else None
            raise OSError("server overloaded")
        elif code == "bad-frame":
            if message.get("retriable", False):
                raise OSError("server reported a bad frame")
            self._set_fatal(message)
        else:  # bad-session or unknown: unrecoverable protocol state
            self._set_fatal(message)

    def _set_fatal(self, message: dict) -> None:
        with self._settled:
            self._fatal = (f"server error [{message.get('code')}] "
                           f"{message.get('message')}")
            self._settled.notify_all()
            self._space.notify_all()

    def _shed_or_pause(self, seq, policy: str, consumed: int = 0) -> None:
        """React to a server refusal of batch ``seq``.

        ``block``: wait a jittered beat, then resend the same sequence
        number (the server resumes a partially-ingested batch from its
        recorded offset).  ``shed``: drop the batch's remaining events
        but still resend the (now empty) sequence number so the session
        stays gap-free; the loss is counted, never silent.  ``consumed``
        is the server-reported ingested prefix of the refused batch —
        those events are *not* lost and must not count as shed.
        """
        with self._lock:
            batch = next((b for b in self._pending if b.seq == seq), None)
        if batch is None:
            return
        if policy == "shed":
            with self._lock:
                if batch.events:
                    self.shed_batches_total += 1
                    self.shed_events_total += max(
                        0, len(batch.events) - consumed
                    )
                batch.events = []
        else:
            delay = self._rng.uniform(self.backoff_base,
                                      2 * self.backoff_base)
            if self._stop.wait(delay):
                return
        self._send_batch(batch)
