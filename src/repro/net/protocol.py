"""Wire protocol for networked BUU ingestion.

Frames
------

Every message travels as one frame::

    4 bytes  big-endian payload length N (codec byte + crc + body)
    1 byte   codec id (0 = JSON, 1 = msgpack)
    4 bytes  big-endian CRC-32 of the body
    N-5 bytes encoded message body

The CRC matters: TCP's own checksum is weak and a fault-injected (or
genuinely broken) middlebox can flip a byte *inside* a string value,
which still parses as valid JSON — without the CRC such a frame would
ingest silently wrong data.  A CRC mismatch is a :class:`ProtocolError`
like any other framing violation.

The codec is chosen per frame, so a JSON client and a msgpack client
can share a server; msgpack is used only when the ``msgpack`` package
is importable (it is optional — the JSON codec is always available and
is the default).

Messages
--------

Messages are flat dicts with a ``"type"`` key:

``hello``
    ``{type, session, resume}`` — opens (or resumes) a client session.
    ``resume`` is the highest sequence number the client knows was
    acknowledged; purely informational.
``welcome``
    ``{type, session, high, health}`` — the server's reply: ``high`` is
    its in-memory high-water sequence for the session (events up to
    ``high`` are ingested, though not necessarily durable yet), and
    ``health`` is the service health (``"ok"`` / ``"degraded"``).
``batch``
    ``{type, session, seq, events}`` — one batch of events.  ``seq``
    starts at 1 and increases by exactly 1 per batch within a session;
    the server ingests ``seq == high+1``, re-acks ``seq <= high`` as a
    dedup hit, and rejects gaps.
``ack``
    ``{type, session, seq}`` — **cumulative**: acknowledges every batch
    of the session with sequence number ``<= seq``.  Sent only after
    the batch's effects are durable (when the server checkpoints) or
    ingested (when it runs without a checkpoint path).
``error``
    ``{type, code, message, retriable, seq?, consumed?}`` — typed
    failure.  ``consumed`` (refusals only) is how many events of the
    refused batch the server *did* ingest before refusing: a blocking
    client resends the full batch (the server resumes at its recorded
    offset), while a shedding client must not count the ingested prefix
    as lost.  Codes:
    ``backpressure`` (journal full, batch not fully ingested — resend
    after a backoff), ``degraded`` (detection circuit breaker tripped),
    ``draining`` (server is shutting down gracefully), ``bad-frame``
    (undecodable frame — the connection is no longer trustworthy),
    ``bad-session`` (sequence gap — protocol violation).
``ping`` / ``pong``
    ``{type, nonce}`` — liveness heartbeats.
``bye``
    ``{type}`` — orderly close.

Events
------

Batch events are compact lists, mirroring the WAL record vocabulary:

- operation: ``["r"|"w", buu, key, seq]``
- lifecycle: ``["b"|"c", buu, time]`` (BUU begin / commit)
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Iterable, Iterator

from repro.core.types import Operation, OpType

try:  # optional accelerator; the JSON codec is always available
    import msgpack  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - depends on the environment
    msgpack = None

try:  # optional accelerator: same JSON wire format, ~10x faster codec
    import orjson  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - depends on the environment
    orjson = None

__all__ = [
    "CODEC_JSON",
    "CODEC_MSGPACK",
    "ERROR_CODES",
    "FrameReader",
    "MAX_FRAME",
    "ProtocolError",
    "decode_events",
    "encode_events",
    "encode_frame",
]

#: Codec ids carried in the frame header.
CODEC_JSON = 0
CODEC_MSGPACK = 1

#: Refuse frames larger than this (a corrupt length prefix must not
#: make a reader try to buffer gigabytes).
MAX_FRAME = 16 * 1024 * 1024

#: Typed error codes an ``error`` message may carry.
ERROR_CODES = (
    "backpressure", "degraded", "draining", "bad-frame", "bad-session",
)

_LEN = struct.Struct("!I")
_CRC = struct.Struct("!I")
#: codec byte + CRC word — the per-frame overhead inside the length.
_OVERHEAD = 1 + _CRC.size


class ProtocolError(RuntimeError):
    """A frame or message violates the wire protocol (corrupt length,
    undecodable body, unknown codec, oversized frame)."""


def encode_frame(message: dict, codec: int = CODEC_JSON) -> bytes:
    """Serialize one message dict into a length-prefixed frame."""
    if codec == CODEC_JSON:
        if orjson is not None:
            try:
                body = orjson.dumps(message)
            except TypeError:
                # orjson is stricter than the stdlib (tuples, >64-bit
                # ints); fall back rather than change what encodes.
                body = json.dumps(message, separators=(",", ":")).encode()
        else:
            body = json.dumps(message, separators=(",", ":")).encode()
    elif codec == CODEC_MSGPACK:
        if msgpack is None:
            raise ProtocolError(
                "msgpack codec requested but the msgpack package is not "
                "installed; use CODEC_JSON"
            )
        body = msgpack.packb(message)
    else:
        raise ProtocolError(f"unknown codec id {codec!r}")
    return (_LEN.pack(len(body) + _OVERHEAD) + bytes([codec])
            + _CRC.pack(zlib.crc32(body)) + body)


def _decode_body(codec: int, body: bytes) -> dict:
    try:
        if codec == CODEC_JSON:
            if orjson is not None:
                try:
                    message = orjson.loads(body)
                except Exception:
                    # Accept anything the stdlib would (e.g. >64-bit
                    # ints a non-orjson peer encoded); true corruption
                    # fails both and raises below.
                    message = json.loads(body.decode())
            else:
                message = json.loads(body.decode())
        elif codec == CODEC_MSGPACK:
            if msgpack is None:
                raise ProtocolError(
                    "peer sent a msgpack frame but msgpack is not installed"
                )
            message = msgpack.unpackb(body)
        else:
            raise ProtocolError(f"unknown codec id {codec}")
    except ProtocolError:
        raise
    except Exception as exc:  # corrupt body: any decode failure counts
        raise ProtocolError(f"undecodable frame body: {exc!r}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("frame body is not a message dict")
    return message


class FrameReader:
    """Incremental frame decoder: feed raw socket bytes, get messages.

    Keeps a byte buffer across :meth:`feed` calls so partial reads (TCP
    delivers arbitrary chunks) reassemble correctly.  Raises
    :class:`ProtocolError` on a corrupt length prefix or body; after
    that the stream's framing can no longer be trusted and the
    connection should be dropped.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.frames_decoded = 0

    def feed(self, data: bytes) -> Iterator[dict]:
        """Consume ``data``, yielding every complete message in it."""
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < _LEN.size:
                return
            (length,) = _LEN.unpack_from(self._buffer)
            if length < _OVERHEAD or length > MAX_FRAME:
                raise ProtocolError(
                    f"frame length {length} outside [{_OVERHEAD}, "
                    f"{MAX_FRAME}] — corrupt length prefix?"
                )
            if len(self._buffer) < _LEN.size + length:
                return
            codec = self._buffer[_LEN.size]
            (crc,) = _CRC.unpack_from(self._buffer, _LEN.size + 1)
            body = bytes(
                self._buffer[_LEN.size + _OVERHEAD:_LEN.size + length]
            )
            if zlib.crc32(body) != crc:
                raise ProtocolError(
                    "frame body failed its CRC check — corruption in flight"
                )
            del self._buffer[:_LEN.size + length]
            self.frames_decoded += 1
            yield _decode_body(codec, body)


# -- message constructors ------------------------------------------------------


def hello(session: str, resume: int = 0) -> dict:
    """An opening handshake: start or resume ``session``."""
    return {"type": "hello", "session": session, "resume": resume}


def welcome(session: str, high: int, health: str) -> dict:
    """The server's handshake reply with its high-water mark."""
    return {"type": "welcome", "session": session, "high": high,
            "health": health}


def batch(session: str, seq: int, events: list) -> dict:
    """One at-least-once batch of events at sequence ``seq``."""
    return {"type": "batch", "session": session, "seq": seq,
            "events": events}


def ack(session: str, seq: int) -> dict:
    """Cumulative acknowledgement of every batch ``<= seq``."""
    return {"type": "ack", "session": session, "seq": seq}


def error(code: str, message: str, *, retriable: bool,
          seq: int | None = None, consumed: int = 0) -> dict:
    """A typed failure; see the module docstring for the codes."""
    payload = {"type": "error", "code": code, "message": message,
               "retriable": retriable}
    if seq is not None:
        payload["seq"] = seq
    if consumed:
        payload["consumed"] = consumed
    return payload


def ping(nonce: int) -> dict:
    """A liveness probe; the peer echoes ``nonce`` in a pong."""
    return {"type": "ping", "nonce": nonce}


def pong(nonce: int) -> dict:
    """The reply to a :func:`ping` carrying the same nonce."""
    return {"type": "pong", "nonce": nonce}


def bye() -> dict:
    """An orderly end-of-stream marker."""
    return {"type": "bye"}


# -- event records -------------------------------------------------------------


def wire_op(op: Operation) -> list:
    """Encode one operation as a compact wire event record."""
    return [op.op.value, op.buu, op.key, op.seq]


def wire_begin(buu: int, time: int) -> list:
    """Encode a BUU-begin lifecycle wire event record."""
    return ["b", buu, time]


def wire_commit(buu: int, time: int) -> list:
    """Encode a BUU-commit lifecycle wire event record."""
    return ["c", buu, time]


def encode_events(ops: Iterable[Operation]) -> list[list]:
    """Encode a sequence of operations as wire event records."""
    return [wire_op(op) for op in ops]


def decode_events(records: list) -> list[tuple]:
    """Decode wire event records into ``("op", Operation)`` /
    ``("b"|"c", buu, time)`` tuples, validating as it goes."""
    out: list[tuple] = []
    for record in records:
        try:
            kind = record[0]
            if kind in ("r", "w"):
                out.append(("op", Operation(OpType(kind), record[1],
                                            record[2], record[3])))
            elif kind in ("b", "c"):
                out.append((kind, record[1], record[2]))
            else:
                raise ProtocolError(f"unknown event kind {kind!r}")
        except ProtocolError:
            raise
        except Exception as exc:
            raise ProtocolError(f"malformed event record {record!r}") from exc
    return out
