"""Wire protocol for networked BUU ingestion.

Frames
------

Every message travels as one frame::

    4 bytes  big-endian payload length N (codec byte + crc + body)
    1 byte   codec id (0 = JSON, 1 = msgpack, 2 = columnar)
    4 bytes  big-endian CRC-32 of the body
    N-5 bytes encoded message body

The CRC matters: TCP's own checksum is weak and a fault-injected (or
genuinely broken) middlebox can flip a byte *inside* a string value,
which still parses as valid JSON — without the CRC such a frame would
ingest silently wrong data.  A CRC mismatch is a :class:`ProtocolError`
like any other framing violation.

The codec is chosen per frame, so a JSON client and a msgpack client
can share a server; msgpack is used only when the ``msgpack`` package
is importable (it is optional — the JSON codec is always available and
is the default).

Messages
--------

Messages are flat dicts with a ``"type"`` key:

``hello``
    ``{type, session, resume}`` — opens (or resumes) a client session.
    ``resume`` is the highest sequence number the client knows was
    acknowledged; purely informational.
``welcome``
    ``{type, session, high, health}`` — the server's reply: ``high`` is
    its in-memory high-water sequence for the session (events up to
    ``high`` are ingested, though not necessarily durable yet), and
    ``health`` is the service health (``"ok"`` / ``"degraded"``).
``batch``
    ``{type, session, seq, events}`` — one batch of events.  ``seq``
    starts at 1 and increases by exactly 1 per batch within a session;
    the server ingests ``seq == high+1``, re-acks ``seq <= high`` as a
    dedup hit, and rejects gaps.
``ack``
    ``{type, session, seq}`` — **cumulative**: acknowledges every batch
    of the session with sequence number ``<= seq``.  Sent only after
    the batch's effects are durable (when the server checkpoints) or
    ingested (when it runs without a checkpoint path).
``error``
    ``{type, code, message, retriable, seq?, consumed?, retry_after?}``
    — typed failure.  ``consumed`` (refusals only) is how many events of
    the refused batch the server *did* ingest before refusing: a
    blocking client resends the full batch (the server resumes at its
    recorded offset), while a shedding client must not count the
    ingested prefix as lost.  ``retry_after`` (admission refusals) is
    the server's hint, in seconds, for when capacity may be back.
    Codes:
    ``backpressure`` (journal full, batch not fully ingested — resend
    after a backoff), ``degraded`` (detection circuit breaker tripped),
    ``draining`` (server is shutting down gracefully), ``overloaded``
    (admission control refused the *connection* — too many clients;
    reconnect after ``retry_after`` seconds), ``bad-frame``
    (undecodable frame — the connection is no longer trustworthy),
    ``bad-session`` (sequence gap — protocol violation).
``ping`` / ``pong``
    ``{type, nonce}`` — liveness heartbeats.
``bye``
    ``{type}`` — orderly close.

Events
------

Batch events are compact lists, mirroring the WAL record vocabulary:

- operation: ``["r"|"w", buu, key, seq]``
- lifecycle: ``["b"|"c", buu, time]`` (BUU begin / commit)

The columnar codec (id 2)
-------------------------

Codec 2 carries ``batch`` messages as a packed fixed-width column
layout instead of a per-record JSON/msgpack tree, so a receiver can
decode a whole batch with a handful of buffer slices (``numpy.
frombuffer`` when available) and hand the columns straight to the
vectorized collector (:mod:`repro.core.columnar`) — no per-operation
object construction on the hot ingest path.  The body is::

    1 byte   tag (0 = JSON fallback, 1 = packed batch)

Tag 0 wraps an ordinary JSON message body — codec-2 connections use it
for every non-batch message (hello, ack, ping, …) and for batches whose
keys are not ``str``/``int`` (wire keys are JSON values, so exotic
keys already implied the JSON representation).  Tag 1 is::

    2 bytes  LE session id length, then that many UTF-8 bytes
    8 bytes  LE unsigned batch sequence number
    4 bytes  LE unsigned event count n
    4 bytes  LE unsigned key-table size k
    key table: k entries, each ``1 byte tag`` then
               tag 0: 2 bytes LE length + UTF-8 string key
               tag 1: 8 bytes LE signed int key
    n bytes  op codes  (0 = r, 1 = w, 2 = begin, 3 = commit)
    8n bytes LE signed BUU ids
    4n bytes LE signed key-table indices (-1 for lifecycle rows)
    8n bytes LE signed per-op sequence numbers / lifecycle times

Integers are fixed-width: a batch whose BUU/seq values do not fit the
column falls back to tag 0 rather than truncate.  Decoding yields the
same message dict as the other codecs except ``"events"`` is a
:class:`ColumnarEvents` column struct; :func:`decode_events` accepts it
transparently, so codec-2 and JSON clients interoperate on one server.
"""

from __future__ import annotations

import json
import re
import struct
import zlib
from typing import Iterable, Iterator

from repro.core.types import Operation, OpType

try:  # optional accelerator; the JSON codec is always available
    import msgpack  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - depends on the environment
    msgpack = None

try:  # optional accelerator: same JSON wire format, ~10x faster codec
    import orjson  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - depends on the environment
    orjson = None

try:  # optional accelerator: vectorized codec-2 column packing
    import numpy as _np
except ImportError:  # pragma: no cover - depends on the environment
    _np = None

__all__ = [
    "CODEC_COLUMNAR",
    "CODEC_JSON",
    "CODEC_MSGPACK",
    "ColumnarEvents",
    "ERROR_CODES",
    "FrameReader",
    "MAX_FRAME",
    "ProtocolError",
    "decode_events",
    "encode_events",
    "encode_frame",
]

#: Codec ids carried in the frame header.
CODEC_JSON = 0
CODEC_MSGPACK = 1
CODEC_COLUMNAR = 2

#: Refuse frames larger than this (a corrupt length prefix must not
#: make a reader try to buffer gigabytes).
MAX_FRAME = 16 * 1024 * 1024

#: Typed error codes an ``error`` message may carry.
ERROR_CODES = (
    "backpressure", "degraded", "draining", "overloaded", "bad-frame",
    "bad-session",
)

_LEN = struct.Struct("!I")
_CRC = struct.Struct("!I")
#: codec byte + CRC word — the per-frame overhead inside the length.
_OVERHEAD = 1 + _CRC.size


class ProtocolError(RuntimeError):
    """A frame or message violates the wire protocol (corrupt length,
    undecodable body, unknown codec, oversized frame)."""


def _json_body(message: dict) -> bytes:
    if orjson is not None:
        try:
            return orjson.dumps(message)
        except TypeError:
            # orjson is stricter than the stdlib (tuples, >64-bit
            # ints); fall back rather than change what encodes.
            pass
    return json.dumps(message, separators=(",", ":")).encode()


#: Any JSON integer that can overflow an i64 has >= 19 digits; orjson
#: (some versions) *lossily* parses such integers as floats instead of
#: raising, so bodies that might contain one take the exact stdlib
#: parser.  Shorter digit runs can never overflow, and a false positive
#: (a long digit run inside a string or float) only costs speed.
_MAYBE_BIG_INT = re.compile(rb"\d{19}")


def _loads_json(body: bytes) -> dict:
    if orjson is not None and _MAYBE_BIG_INT.search(body) is None:
        try:
            return orjson.loads(body)
        except Exception:
            # Accept anything the stdlib would; true corruption fails
            # both parsers and raises below.
            pass
    return json.loads(body.decode())


def encode_frame(message: dict, codec: int = CODEC_JSON) -> bytes:
    """Serialize one message dict into a length-prefixed frame."""
    if codec == CODEC_JSON:
        body = _json_body(message)
    elif codec == CODEC_COLUMNAR:
        packed = (_pack_batch_columnar(message)
                  if message.get("type") == "batch" else None)
        body = packed if packed is not None else b"\x00" + _json_body(message)
    elif codec == CODEC_MSGPACK:
        if msgpack is None:
            raise ProtocolError(
                "msgpack codec requested but the msgpack package is not "
                "installed; use CODEC_JSON"
            )
        body = msgpack.packb(message)
    else:
        raise ProtocolError(f"unknown codec id {codec!r}")
    return (_LEN.pack(len(body) + _OVERHEAD) + bytes([codec])
            + _CRC.pack(zlib.crc32(body)) + body)


def _decode_body(codec: int, body: bytes) -> dict:
    try:
        if codec == CODEC_JSON:
            message = _loads_json(body)
        elif codec == CODEC_MSGPACK:
            if msgpack is None:
                raise ProtocolError(
                    "peer sent a msgpack frame but msgpack is not installed"
                )
            message = msgpack.unpackb(body)
        elif codec == CODEC_COLUMNAR:
            message = _decode_columnar_body(body)
        else:
            raise ProtocolError(f"unknown codec id {codec}")
    except ProtocolError:
        raise
    except Exception as exc:  # corrupt body: any decode failure counts
        raise ProtocolError(f"undecodable frame body: {exc!r}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("frame body is not a message dict")
    return message


# -- codec 2: packed column batches --------------------------------------------

_COL_U16 = struct.Struct("<H")
_COL_I64 = struct.Struct("<q")
_COL_HEAD = struct.Struct("<QII")  # seq, n_events, n_keys
_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1

#: Codec-2 op-code column values (0/1 match repro.core.columnar).
_COL_OPS = {"r": 0, "w": 1, "b": 2, "c": 3}
_COL_KINDS = ("r", "w", "b", "c")


class ColumnarEvents:
    """The decoded payload of a packed codec-2 batch: four parallel
    event columns plus the frame's key table.

    Columns are numpy views over the frame body when numpy is
    installed (plain lists otherwise): ``op`` (uint8 codes per
    ``_COL_OPS``), ``buu`` (int64), ``kidx`` (int32 key-table index,
    ``-1`` on lifecycle rows) and ``seq`` (int64 op sequence /
    lifecycle time).  ``keys`` is the per-frame key table the indices
    point into.  :func:`decode_events` materializes per-op tuples from
    it for the classic ingest path; the columnar fast path hands the
    arrays to :mod:`repro.core.columnar` without building any
    per-event object.
    """

    __slots__ = ("op", "buu", "kidx", "seq", "keys")

    def __init__(self, op, buu, kidx, seq, keys: list) -> None:
        self.op = op
        self.buu = buu
        self.kidx = kidx
        self.seq = seq
        self.keys = keys

    def __len__(self) -> int:
        return len(self.op)

    def to_records(self) -> list[list]:
        """The equivalent JSON-codec event records (wire vocabulary)."""
        out: list[list] = []
        keys = self.keys
        kinds = _COL_KINDS
        for code, buu, kidx, seq in zip(
                _tolist(self.op), _tolist(self.buu),
                _tolist(self.kidx), _tolist(self.seq)):
            if code < 2:
                out.append([kinds[code], buu, keys[kidx], seq])
            else:
                out.append([kinds[code], buu, seq])
        return out

    def to_tuples(self) -> list[tuple]:
        """Decoded event tuples in :func:`decode_events`' shape:
        ``("op", Operation)`` / ``("b"|"c", buu, time)``."""
        out: list[tuple] = []
        append = out.append
        keys = self.keys
        new = tuple.__new__
        read, write = OpType.READ, OpType.WRITE
        try:
            for code, buu, kidx, seq in zip(
                    _tolist(self.op), _tolist(self.buu),
                    _tolist(self.kidx), _tolist(self.seq)):
                if code < 2:
                    append(("op", new(Operation, (
                        read if code == 0 else write, buu, keys[kidx], seq))))
                elif code == 2:
                    append(("b", buu, seq))
                elif code == 3:
                    append(("c", buu, seq))
                else:
                    raise ProtocolError(f"unknown op code {code}")
        except IndexError as exc:
            raise ProtocolError(
                "columnar key index outside the frame's key table") from exc
        return out


def _tolist(column):
    return column if isinstance(column, list) else column.tolist()


def _fits_i64(value) -> bool:
    return (type(value) is int and not isinstance(value, bool)
            and _I64_MIN <= value <= _I64_MAX)


def _pack_batch_columnar(message: dict) -> bytes | None:
    """Pack one batch message into a tag-1 codec-2 body.

    Returns ``None`` when the payload doesn't fit the fixed-width
    columns (non-``str``/``int`` keys, out-of-range integers, oversized
    session/key strings) — the caller then ships the batch as a tag-0
    JSON body instead of truncating anything.
    """
    if message.keys() != {"type", "session", "seq", "events"}:
        # Only the canonical batch shape has packed slots; anything
        # else (extra fields, missing fields a decoder would default)
        # ships as JSON rather than coming back changed.
        return None
    events = message.get("events") or []
    if isinstance(events, ColumnarEvents):
        events = events.to_records()
    session = message.get("session", "")
    seq = message.get("seq", 0)
    if not isinstance(session, str) or not _fits_i64(seq) or seq < 0:
        return None
    session_b = session.encode()
    n = len(events)
    if len(session_b) > 0xFFFF or n > 0xFFFFFFFF:
        return None
    key_ids: dict = {}
    key_parts: list[bytes] = []
    op = bytearray(n)
    buus: list[int] = []
    kidxs: list[int] = []
    seqs: list[int] = []
    try:
        for i, record in enumerate(events):
            kind = record[0]
            code = _COL_OPS.get(kind)
            if code is None:
                return None
            op[i] = code
            buu = record[1]
            when = record[3] if code < 2 else record[2]
            if not _fits_i64(buu) or not _fits_i64(when):
                return None
            if code < 2:
                key = record[2]
                kid = key_ids.get(key)
                if kid is None:
                    if type(key) is str:
                        raw = key.encode()
                        if len(raw) > 0xFFFF:
                            return None
                        key_parts.append(
                            b"\x00" + _COL_U16.pack(len(raw)) + raw)
                    elif _fits_i64(key):
                        key_parts.append(b"\x01" + _COL_I64.pack(key))
                    else:
                        return None
                    kid = len(key_ids)
                    key_ids[key] = kid
                kidxs.append(kid)
            else:
                kidxs.append(-1)
            buus.append(buu)
            seqs.append(when)
    except (IndexError, TypeError):
        return None
    if len(key_ids) > 0xFFFFFFFF:  # pragma: no cover - 2**32 keys
        return None
    parts = [b"\x01", _COL_U16.pack(len(session_b)), session_b,
             _COL_HEAD.pack(seq, n, len(key_ids))]
    parts.extend(key_parts)
    if _np is not None:
        parts.append(bytes(op))
        parts.append(_np.asarray(buus, _np.int64).tobytes())
        parts.append(_np.asarray(kidxs, _np.int32).tobytes())
        parts.append(_np.asarray(seqs, _np.int64).tobytes())
    else:
        parts.append(bytes(op))
        parts.append(struct.pack(f"<{n}q", *buus))
        parts.append(struct.pack(f"<{n}i", *kidxs))
        parts.append(struct.pack(f"<{n}q", *seqs))
    return b"".join(parts)


def _decode_columnar_body(body: bytes) -> dict:
    """Decode a codec-2 body (either tag) into a message dict."""
    if not body:
        raise ProtocolError("empty codec-2 body")
    tag = body[0]
    if tag == 0:
        return _loads_json(body[1:])
    if tag != 1:
        raise ProtocolError(f"unknown codec-2 body tag {tag}")
    try:
        offset = 1
        (session_len,) = _COL_U16.unpack_from(body, offset)
        offset += _COL_U16.size
        session = body[offset:offset + session_len].decode()
        offset += session_len
        seq, n, n_keys = _COL_HEAD.unpack_from(body, offset)
        offset += _COL_HEAD.size
        keys: list = []
        for _ in range(n_keys):
            key_tag = body[offset]
            offset += 1
            if key_tag == 0:
                (raw_len,) = _COL_U16.unpack_from(body, offset)
                offset += _COL_U16.size
                keys.append(body[offset:offset + raw_len].decode())
                offset += raw_len
            elif key_tag == 1:
                (key,) = _COL_I64.unpack_from(body, offset)
                offset += _COL_I64.size
                keys.append(key)
            else:
                raise ProtocolError(f"unknown key-table tag {key_tag}")
        if len(body) - offset != n * 21:  # 1 + 8 + 4 + 8 bytes per event
            raise ProtocolError(
                f"columnar column block is {len(body) - offset} bytes "
                f"for {n} events (expected {n * 21})"
            )
        if _np is not None:
            op = _np.frombuffer(body, _np.uint8, n, offset)
            offset += n
            buu = _np.frombuffer(body, "<i8", n, offset).astype(
                _np.int64, copy=False)
            offset += 8 * n
            kidx = _np.frombuffer(body, "<i4", n, offset).astype(
                _np.int32, copy=False)
            offset += 4 * n
            when = _np.frombuffer(body, "<i8", n, offset).astype(
                _np.int64, copy=False)
        else:
            op = list(body[offset:offset + n])
            offset += n
            buu = list(struct.unpack_from(f"<{n}q", body, offset))
            offset += 8 * n
            kidx = list(struct.unpack_from(f"<{n}i", body, offset))
            offset += 4 * n
            when = list(struct.unpack_from(f"<{n}q", body, offset))
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(f"malformed columnar batch body: {exc!r}") from exc
    return {"type": "batch", "session": session, "seq": seq,
            "events": ColumnarEvents(op, buu, kidx, when, keys)}


class FrameReader:
    """Incremental frame decoder: feed raw socket bytes, get messages.

    Keeps a byte buffer across :meth:`feed` calls so partial reads (TCP
    delivers arbitrary chunks) reassemble correctly.  Raises
    :class:`ProtocolError` on a corrupt length prefix or body; after
    that the stream's framing can no longer be trusted and the
    connection should be dropped.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.frames_decoded = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame.  Nonzero means the
        peer has started a frame and not finished it — the signal the
        event loop's partial-frame (slowloris) deadline watches."""
        return len(self._buffer)

    def feed(self, data: bytes) -> Iterator[dict]:
        """Consume ``data``, yielding every complete message in it."""
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < _LEN.size:
                return
            (length,) = _LEN.unpack_from(self._buffer)
            if length < _OVERHEAD or length > MAX_FRAME:
                raise ProtocolError(
                    f"frame length {length} outside [{_OVERHEAD}, "
                    f"{MAX_FRAME}] — corrupt length prefix?"
                )
            if len(self._buffer) < _LEN.size + length:
                return
            codec = self._buffer[_LEN.size]
            (crc,) = _CRC.unpack_from(self._buffer, _LEN.size + 1)
            body = bytes(
                self._buffer[_LEN.size + _OVERHEAD:_LEN.size + length]
            )
            if zlib.crc32(body) != crc:
                raise ProtocolError(
                    "frame body failed its CRC check — corruption in flight"
                )
            del self._buffer[:_LEN.size + length]
            self.frames_decoded += 1
            yield _decode_body(codec, body)


# -- message constructors ------------------------------------------------------


def hello(session: str, resume: int = 0) -> dict:
    """An opening handshake: start or resume ``session``."""
    return {"type": "hello", "session": session, "resume": resume}


def welcome(session: str, high: int, health: str) -> dict:
    """The server's handshake reply with its high-water mark."""
    return {"type": "welcome", "session": session, "high": high,
            "health": health}


def batch(session: str, seq: int, events: list) -> dict:
    """One at-least-once batch of events at sequence ``seq``."""
    return {"type": "batch", "session": session, "seq": seq,
            "events": events}


def ack(session: str, seq: int) -> dict:
    """Cumulative acknowledgement of every batch ``<= seq``."""
    return {"type": "ack", "session": session, "seq": seq}


def error(code: str, message: str, *, retriable: bool,
          seq: int | None = None, consumed: int = 0,
          retry_after: float | None = None) -> dict:
    """A typed failure; see the module docstring for the codes."""
    payload = {"type": "error", "code": code, "message": message,
               "retriable": retriable}
    if seq is not None:
        payload["seq"] = seq
    if consumed:
        payload["consumed"] = consumed
    if retry_after is not None:
        payload["retry_after"] = retry_after
    return payload


def ping(nonce: int) -> dict:
    """A liveness probe; the peer echoes ``nonce`` in a pong."""
    return {"type": "ping", "nonce": nonce}


def pong(nonce: int) -> dict:
    """The reply to a :func:`ping` carrying the same nonce."""
    return {"type": "pong", "nonce": nonce}


def bye() -> dict:
    """An orderly end-of-stream marker."""
    return {"type": "bye"}


# -- event records -------------------------------------------------------------


def wire_op(op: Operation) -> list:
    """Encode one operation as a compact wire event record."""
    return [op.op.value, op.buu, op.key, op.seq]


def wire_begin(buu: int, time: int) -> list:
    """Encode a BUU-begin lifecycle wire event record."""
    return ["b", buu, time]


def wire_commit(buu: int, time: int) -> list:
    """Encode a BUU-commit lifecycle wire event record."""
    return ["c", buu, time]


def encode_events(ops: Iterable[Operation]) -> list[list]:
    """Encode a sequence of operations as wire event records."""
    return [wire_op(op) for op in ops]


def decode_events(records) -> list[tuple]:
    """Decode wire event records into ``("op", Operation)`` /
    ``("b"|"c", buu, time)`` tuples, validating as it goes.

    Accepts either the list-of-records shape the JSON/msgpack codecs
    produce or a codec-2 :class:`ColumnarEvents` column struct."""
    if isinstance(records, ColumnarEvents):
        return records.to_tuples()
    out: list[tuple] = []
    for record in records:
        try:
            kind = record[0]
            if kind in ("r", "w"):
                out.append(("op", Operation(OpType(kind), record[1],
                                            record[2], record[3])))
            elif kind in ("b", "c"):
                out.append((kind, record[1], record[2]))
            else:
                raise ProtocolError(f"unknown event kind {kind!r}")
        except ProtocolError:
            raise
        except Exception as exc:
            raise ProtocolError(f"malformed event record {record!r}") from exc
    return out
