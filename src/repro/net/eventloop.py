"""A ``selectors``-based event-loop transport for the RushMon server.

The thread-per-connection transport in :mod:`repro.net.server` is simple
and correct, but its capacity ceiling is the OS thread count and its
overload behaviour is implicit (blocking ``sendall`` under a slow peer,
one stack per idle connection).  This module multiplexes every
connection onto a small fixed pool of :class:`EventLoop` threads
instead: non-blocking sockets, per-connection bounded read/write
buffers, and incremental frame reassembly via
:class:`~repro.net.protocol.FrameReader`.  The *delivery contract* —
sessions, sequencing, dedup, durable acks — is untouched: loops call
straight into the same ``RushMonServer._handle`` core the reader
threads use, so the two transports are bit-compatible by construction
(and pinned so by the sr=1 differential in ``tests/test_serving.py``).

What the loop adds on top of the threaded transport:

Admission control
    ``max_connections`` caps concurrent connections.  The connection
    that tips over the cap is told so with a typed ``overloaded`` wire
    error carrying a ``retry_after`` hint, then closed — and the
    listener is *deregistered* (accept-pause) until a slot frees, so an
    overloaded server stops doing accept work entirely instead of
    refusing in a hot loop.

Per-client fairness
    Decoded messages land in a per-connection ``pending`` queue and are
    dispatched round-robin, one message per connection per turn, under
    a per-iteration budget.  A connection with ``inflight_cap`` pending
    messages has its read interest paused until the dispatcher drains
    it — a firehose client is throttled by its own backlog and cannot
    starve a trickle client sharing the loop.

Slow-client defenses
    A connection that starts a frame must finish it within
    ``partial_frame_timeout`` (slowloris defense: the deadline runs
    from the frame's *first* byte, so trickling one byte per second
    does not reset it).  A connection silent past ``idle_timeout`` is
    dropped (clients heartbeat every second, so only dead peers trip
    it).  A peer that stops reading until ``write_high_watermark``
    bytes of acks/errors pile up is disconnected rather than allowed
    to pin server memory — it reconnects and replays, which dedups.

Graceful close
    A server-initiated close (bad-frame, bad-session, bye) first
    flushes the connection's pending write buffer — the typed error
    the handler just queued must reach the peer — then closes, with a
    short deadline so an unreachable peer cannot hold the slot.

Fault injection: the ``net.select`` point fires once per loop
iteration (``stall``/``delay`` freeze the loop thread, ``slow-read``
caps every read of that iteration at one byte); the existing
``net.recv`` / ``net.accept`` / ``net.ack`` points fire exactly as
they do on the threaded transport, so the chaos suite runs unchanged.
"""

from __future__ import annotations

import collections
import logging
import selectors
import socket
import threading
import time

from repro.net import protocol
from repro.net.protocol import FrameReader, ProtocolError, encode_frame

_log = logging.getLogger(__name__)

__all__ = ["EventLoop", "EventLoopConnection", "EventLoopGroup"]

#: Selector data tags for the two non-connection registrations.
_WAKE = object()
_ACCEPT = object()

#: Seconds a server-initiated close may spend flushing its final
#: frames (the typed error the peer is owed) before a hard close.
CLOSE_FLUSH_TIMEOUT = 1.0

#: Messages dispatched per loop iteration, across all connections —
#: bounds how long one iteration can starve the selector.
DISPATCH_BUDGET = 128

#: Bytes per ``recv`` (1 under a ``slow-read`` fault).
_RECV_SIZE = 65536

#: Seconds between deadline sweeps (idle / partial-frame / closing).
_SWEEP_INTERVAL = 0.1


class EventLoopConnection:
    """One multiplexed client connection (non-blocking socket).

    Duck-compatible with the threaded transport's ``_Connection`` —
    the shared ``RushMonServer`` handling core only touches ``send``,
    ``close``, ``session``, ``codec``, ``alive`` and ``refused_high``.
    The difference is hidden in :meth:`send`: instead of a blocking
    ``sendall``, frames are appended to a bounded write buffer that
    the owning loop flushes when the socket accepts them.
    """

    __slots__ = (
        "sock", "loop", "wlock", "reader", "session", "codec", "alive",
        "refused_high", "wbuf", "pending", "last_activity",
        "partial_since", "closing", "close_deadline", "reads_paused",
        "queued", "want_write", "registered",
    )

    def __init__(self, sock: socket.socket, loop: "EventLoop") -> None:
        self.sock = sock
        self.loop = loop
        self.wlock = threading.Lock()
        self.reader = FrameReader()
        self.session: str | None = None
        self.codec = protocol.CODEC_JSON
        self.alive = True
        # Same meaning as on the threaded transport: highest sequence
        # this connection has refused, so pipelined followers get
        # retriable refusals instead of a fatal bad-session.
        self.refused_high = 0
        self.wbuf = bytearray()
        self.pending: collections.deque = collections.deque()
        self.last_activity = time.monotonic()
        #: When the current partial frame started (0.0 = no partial).
        self.partial_since = 0.0
        self.closing = False
        self.close_deadline = 0.0
        self.reads_paused = False
        #: True while sitting in the loop's round-robin ready queue.
        self.queued = False
        self.want_write = False
        self.registered = False

    def send(self, message: dict, *, corrupt: bool = False) -> None:
        """Queue one frame for the owning loop to flush (thread-safe;
        the committer's acks and loop-side replies share the buffer).
        Never blocks and never raises — write failures surface as a
        disconnect at flush time, which the client handles by
        reconnecting and replaying."""
        frame = encode_frame(message, self.codec)
        if corrupt:
            index = len(frame) // 2
            frame = frame[:index] + bytes([frame[index] ^ 0x40]) \
                + frame[index + 1:]
        self.loop.enqueue_write(self, frame)

    def close(self) -> None:
        self.alive = False
        self.loop.schedule_destroy(self)


class EventLoop(threading.Thread):
    """One loop thread: a selector multiplexing its share of the
    connections, plus a wake pipe and a cross-thread op queue (selector
    registration happens only on the owning thread)."""

    def __init__(self, server, group: "EventLoopGroup", index: int) -> None:
        super().__init__(name=f"rushmon-net-loop-{index}", daemon=True)
        self._server = server
        self._group = group
        self._selector = selectors.DefaultSelector()
        rsock, wsock = socket.socketpair()
        rsock.setblocking(False)
        wsock.setblocking(False)
        self._rsock, self._wsock = rsock, wsock
        self._selector.register(rsock, selectors.EVENT_READ, _WAKE)
        self._conns: set[EventLoopConnection] = set()
        #: Round-robin dispatch queue: connections with pending
        #: messages, one message served per turn.
        self._ready: collections.deque = collections.deque()
        self._ops: collections.deque = collections.deque()
        self._pending_total = 0
        self._listener: socket.socket | None = None
        self._stop_requested = False
        self._stop_deadline = 0.0
        self._next_sweep = 0.0
        #: Connections this loop closed at shutdown with unflushed
        #: writes — summed into ``drain_forced_total`` by the group.
        self.forced_closes = 0

    # -- cross-thread entry points --------------------------------------------

    def _wake(self) -> None:
        try:
            self._wsock.send(b"\x00")
        except OSError:
            pass

    def _post(self, fn) -> None:
        self._ops.append(fn)
        self._wake()
        if self._stop_requested and not self.is_alive():
            # The loop is gone; run inline so sockets still get closed.
            self._run_ops()

    def add_acceptor(self, listener: socket.socket) -> None:
        """Register the (non-blocking) listener on this loop."""
        self._listener = listener

        def _register() -> None:
            try:
                self._selector.register(
                    listener, selectors.EVENT_READ, _ACCEPT)
            except (KeyError, ValueError, OSError):
                pass

        self._post(_register)

    def remove_acceptor(self) -> None:
        """Deregister the listener (accept-pause); loop thread only."""
        listener = self._listener
        if listener is None:
            return
        try:
            self._selector.unregister(listener)
        except (KeyError, ValueError, OSError):
            pass

    def adopt(self, conn: EventLoopConnection) -> None:
        """Take ownership of a freshly accepted connection."""

        def _register() -> None:
            if not conn.alive:
                return
            try:
                self._selector.register(
                    conn.sock, selectors.EVENT_READ, conn)
            except (KeyError, ValueError, OSError):
                conn.alive = False
                return
            conn.registered = True
            self._conns.add(conn)

        self._post(_register)

    def enqueue_write(self, conn: EventLoopConnection, frame: bytes) -> None:
        if not conn.alive:
            return
        server = self._server
        with conn.wlock:
            conn.wbuf.extend(frame)
            overflow = len(conn.wbuf) > server.write_high_watermark
        if overflow and not conn.closing:
            # The peer stopped reading and let our replies pile up:
            # drop it rather than pin server memory.  It reconnects
            # and replays, which dedups.
            with server._count_lock:
                server.write_overflow_disconnects_total += 1
            conn.alive = False
            self.schedule_destroy(conn)
            return
        if threading.current_thread() is self:
            self._flush(conn)
        else:
            self._post(lambda: self._flush(conn))

    def schedule_destroy(self, conn: EventLoopConnection) -> None:
        if threading.current_thread() is self:
            self._destroy(conn)
        else:
            self._post(lambda: self._destroy(conn))

    def request_stop(self, deadline: float) -> None:
        self._stop_deadline = deadline
        self._stop_requested = True
        self._wake()

    # -- the loop --------------------------------------------------------------

    def run(self) -> None:
        server = self._server
        while not self._stop_requested:
            slow = False
            try:
                fault = server._fire("net.select")
            except Exception:
                # An `exception` fault must not kill the loop thread —
                # every connection it multiplexes would go dark.
                fault = None
            if fault is not None and fault.kind == "slow-read":
                slow = True
            timeout = 0.0 if (self._pending_total or self._ops) else 0.05
            try:
                events = self._selector.select(timeout)
            except OSError:
                events = []
            for key, mask in events:
                tag = key.data
                if tag is _WAKE:
                    try:
                        while self._rsock.recv(4096):
                            pass
                    except OSError:
                        pass
                elif tag is _ACCEPT:
                    self._group._on_accept()
                else:
                    if mask & selectors.EVENT_WRITE:
                        self._flush(tag)
                    if mask & selectors.EVENT_READ and tag.alive \
                            and not tag.closing:
                        self._on_readable(tag, slow)
            self._run_ops()
            self._dispatch()
            self._sweep()
        self._shutdown()

    def _run_ops(self) -> None:
        ops = self._ops
        while ops:
            try:
                fn = ops.popleft()
            except IndexError:
                break
            try:
                fn()
            except Exception:
                _log.exception("event-loop op failed")

    # -- read / dispatch / write ----------------------------------------------

    def _on_readable(self, conn: EventLoopConnection, slow: bool) -> None:
        server = self._server
        try:
            data = conn.sock.recv(1 if slow else _RECV_SIZE)
        except BlockingIOError:
            return
        except OSError:
            self._destroy(conn)
            return
        if not data:
            self._destroy(conn)
            return
        now = time.monotonic()
        conn.last_activity = now
        trickle = False
        try:
            fault = server._fire("net.recv")
        except Exception:
            self._destroy(conn)
            return
        if fault is not None:
            if fault.kind == "disconnect":
                self._destroy(conn)
                return
            if fault.kind == "corrupt":
                index = len(data) // 2
                data = data[:index] + bytes([data[index] ^ 0x40]) \
                    + data[index + 1:]
            elif fault.kind == "slow-read":
                trickle = True
        try:
            if trickle:
                # Pathological fragmentation: feed the chunk one byte
                # at a time through the incremental reassembly.
                messages: list = []
                for i in range(len(data)):
                    messages.extend(conn.reader.feed(data[i:i + 1]))
            else:
                messages = list(conn.reader.feed(data))
        except ProtocolError as exc:
            server._send_error(conn, protocol.error(
                "bad-frame", f"undecodable frame: {exc}", retriable=True,
            ))
            self._start_close(conn)
            return
        for message in messages:
            server._m_frames.inc()
            conn.pending.append(message)
            self._pending_total += 1
        if conn.pending and not conn.queued:
            conn.queued = True
            self._ready.append(conn)
        # Slowloris deadline: runs from the partial frame's FIRST byte
        # — more trickled bytes must not push it out.
        if conn.reader.pending_bytes:
            if not conn.partial_since:
                conn.partial_since = now
        else:
            conn.partial_since = 0.0
        if len(conn.pending) >= server.inflight_cap \
                and not conn.reads_paused:
            conn.reads_paused = True
            self._set_interest(conn)

    def _dispatch(self) -> None:
        """Round-robin: one pending message per connection per turn,
        bounded by ``DISPATCH_BUDGET`` per loop iteration."""
        server = self._server
        ready = self._ready
        budget = DISPATCH_BUDGET
        while ready and budget > 0:
            conn = ready.popleft()
            if not conn.alive or conn.closing or not conn.pending:
                conn.queued = False
                continue
            message = conn.pending.popleft()
            self._pending_total -= 1
            budget -= 1
            try:
                keep = server._handle(conn, message)
            except Exception:
                _log.exception("handler failed; dropping connection")
                keep = False
            if not keep:
                conn.queued = False
                self._start_close(conn)
                continue
            if conn.pending:
                ready.append(conn)
            else:
                conn.queued = False
            if conn.reads_paused and conn.alive and not conn.closing \
                    and len(conn.pending) < server.inflight_cap:
                conn.reads_paused = False
                self._set_interest(conn)

    def _flush(self, conn: EventLoopConnection) -> None:
        if not conn.alive:
            return
        with conn.wlock:
            buf = conn.wbuf
            while buf:
                try:
                    sent = conn.sock.send(buf)
                except BlockingIOError:
                    break
                except OSError:
                    del buf[:]
                    conn.want_write = False
                    self._destroy(conn)
                    return
                del buf[:sent]
            conn.want_write = bool(buf)
        self._set_interest(conn)
        if conn.closing and not conn.want_write:
            self._destroy(conn)

    def _set_interest(self, conn: EventLoopConnection) -> None:
        """Recompute this connection's selector mask from its state
        (loop thread only — selectors are not thread-safe)."""
        if not conn.alive:
            return
        mask = 0
        if not conn.closing and not conn.reads_paused:
            mask |= selectors.EVENT_READ
        if conn.want_write:
            mask |= selectors.EVENT_WRITE
        try:
            if mask and conn.registered:
                self._selector.modify(conn.sock, mask, conn)
            elif mask:
                self._selector.register(conn.sock, mask, conn)
                conn.registered = True
            elif conn.registered:
                self._selector.unregister(conn.sock)
                conn.registered = False
        except (KeyError, ValueError, OSError):
            pass

    # -- close paths -----------------------------------------------------------

    def _start_close(self, conn: EventLoopConnection) -> None:
        """Server-initiated close: stop reading, flush the write buffer
        (the typed error the handler just queued), then close — with a
        deadline so an unreachable peer cannot hold the slot."""
        if not conn.alive or conn.closing:
            return
        conn.closing = True
        conn.close_deadline = time.monotonic() + CLOSE_FLUSH_TIMEOUT
        if conn.pending:
            self._pending_total -= len(conn.pending)
            conn.pending.clear()
        self._flush(conn)  # destroys immediately when already empty

    def _destroy(self, conn: EventLoopConnection) -> None:
        conn.alive = False
        if conn.registered:
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError, OSError):
                pass
            conn.registered = False
        try:
            conn.sock.close()
        except OSError:
            pass
        if conn in self._conns:
            self._conns.discard(conn)
            self._pending_total -= len(conn.pending)
            conn.pending.clear()
            server = self._server
            with server._conn_lock:
                server._connections.discard(conn)
            self._group._maybe_resume_accepts()

    def _sweep(self) -> None:
        """Deadline pass: closing flushes, partial frames, idle peers."""
        now = time.monotonic()
        if now < self._next_sweep:
            return
        self._next_sweep = now + _SWEEP_INTERVAL
        server = self._server
        for conn in list(self._conns):
            if not conn.alive:
                self._destroy(conn)
                continue
            if conn.closing:
                if now >= conn.close_deadline:
                    self._destroy(conn)
                continue
            if conn.partial_since and now - conn.partial_since \
                    >= server.partial_frame_timeout:
                with server._count_lock:
                    server.partial_frame_disconnects_total += 1
                self._destroy(conn)
                continue
            if server.idle_timeout is not None \
                    and now - conn.last_activity >= server.idle_timeout:
                with server._count_lock:
                    server.idle_disconnects_total += 1
                self._destroy(conn)

    def _shutdown(self) -> None:
        """Flush-only drain: no more reads or dispatch, just push out
        buffered acks/byes until empty or the drain deadline, then
        close everything (unflushed closes count as forced)."""
        deadline = self._stop_deadline
        while time.monotonic() < deadline:
            self._run_ops()
            busy = False
            for conn in list(self._conns):
                with conn.wlock:
                    pending = conn.alive and bool(conn.wbuf)
                if pending:
                    self._flush(conn)
                    with conn.wlock:
                        busy = busy or bool(conn.wbuf)
            if not busy:
                break
            time.sleep(0.01)
        for conn in list(self._conns):
            with conn.wlock:
                unflushed = bool(conn.wbuf)
            if unflushed:
                self.forced_closes += 1
            self._destroy(conn)
        self._run_ops()
        try:
            self._selector.close()
        except OSError:
            pass
        for sock in (self._rsock, self._wsock):
            try:
                sock.close()
            except OSError:
                pass


class EventLoopGroup:
    """The fixed pool of loop threads plus the shared accept path.

    Loop 0 owns the listener; fresh connections are assigned to loops
    round-robin.  Admission control lives here: over ``max_connections``
    the tipping connection gets a typed ``overloaded`` refusal (with a
    ``retry_after`` hint) and accepts pause until a slot frees.
    """

    def __init__(self, server, num_loops: int) -> None:
        self._server = server
        self._loops = [EventLoop(server, self, i) for i in range(num_loops)]
        self._next = 0
        self._listener: socket.socket | None = None
        self._accepts_paused = False
        self._accept_lock = threading.Lock()

    def start(self, listener: socket.socket) -> None:
        self._listener = listener
        for loop in self._loops:
            loop.start()
        self._loops[0].add_acceptor(listener)

    def _on_accept(self) -> None:
        """Drain the accept queue (runs on loop 0)."""
        server = self._server
        listener = self._listener
        if listener is None:
            return
        while True:
            try:
                sock, _addr = listener.accept()
            except (BlockingIOError, socket.timeout):
                return
            except OSError:
                return  # listener closed by drain()
            try:
                fault = server._fire("net.accept")
            except Exception:
                sock.close()
                continue
            if fault is not None:  # disconnect
                sock.close()
                continue
            maxc = server.max_connections
            with server._conn_lock:
                current = len(server._connections)
            if maxc is not None and current >= maxc:
                # Refuse THIS connection with the typed error first,
                # then pause accepts — the tipping client learns why
                # instead of hanging in the backlog.
                self._refuse(sock)
                self._pause_accepts()
                return
            sock.setblocking(False)
            target = self._loops[self._next % len(self._loops)]
            self._next += 1
            conn = EventLoopConnection(sock, target)
            with server._conn_lock:
                server._connections.add(conn)
            server.connections_total += 1
            target.adopt(conn)

    def _refuse(self, sock: socket.socket) -> None:
        server = self._server
        with server._count_lock:
            server.admission_refusals_total += 1
            server.errors_sent["overloaded"] = \
                server.errors_sent.get("overloaded", 0) + 1
        server._m_errors.inc()
        message = protocol.error(
            "overloaded",
            "connection refused: server is at max_connections",
            retriable=True, retry_after=server.overload_retry_after,
        )
        # Best effort, never blocking: the refusal frame is tiny and
        # fits the fresh socket's send buffer; a peer that cannot even
        # take that just sees the close.
        try:
            sock.setblocking(False)
            sock.send(encode_frame(message, protocol.CODEC_JSON))
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass

    def _pause_accepts(self) -> None:
        with self._accept_lock:
            if self._accepts_paused:
                return
            self._accepts_paused = True
        self._loops[0].remove_acceptor()

    def _maybe_resume_accepts(self) -> None:
        server = self._server
        if not self._accepts_paused or server._draining:
            return
        maxc = server.max_connections
        if maxc is not None:
            with server._conn_lock:
                if len(server._connections) >= maxc:
                    return
        with self._accept_lock:
            if not self._accepts_paused:
                return
            self._accepts_paused = False
        listener = self._listener
        if listener is not None:
            self._loops[0].add_acceptor(listener)

    def stop(self, deadline: float) -> int:
        """Stop every loop (flush-only, then close); returns how many
        connections were force-closed — unflushed writes, or owned by
        a loop that failed to exit by ``deadline`` (e.g. frozen by a
        ``net.select`` stall fault)."""
        for loop in self._loops:
            loop.request_stop(deadline)
        server = self._server
        forced = 0
        for loop in self._loops:
            loop.join(max(0.05, deadline - time.monotonic()))
            if loop.is_alive():
                # The loop thread is stuck; reclaim its connections
                # from here.  Each one is a forced close.
                for conn in list(loop._conns):
                    conn.alive = False
                    try:
                        conn.sock.close()
                    except OSError:
                        pass
                    with server._conn_lock:
                        server._connections.discard(conn)
                    forced += 1
            else:
                forced += loop.forced_closes
        return forced
