"""Networked ingestion: stream BUU events to a RushMon server.

The in-process :class:`~repro.core.concurrent.RushMonService` dies with
its host.  This package detaches the monitor from the monitored system:

- :class:`RushMonServer` — a TCP server wrapping a ``RushMonService``.
  A small pool of event-loop threads (:mod:`repro.net.eventloop`)
  multiplexes the connections and feeds the sharded collector, with
  admission control, per-client fairness and slow-client defenses;
  batches are deduplicated per client session and acknowledged only
  once their state is durable in a :mod:`repro.storage.wal`
  checkpoint, so a SIGKILLed server restored from its checkpoint
  resumes without losing an acknowledged batch or double-counting a
  replayed one.
- :class:`RushMonClient` — a monitor-listener facade that batches
  events into a bounded queue and ships them from a background thread,
  with ack deadlines, exponential backoff + full jitter on reconnect
  (honoring the server's ``retry_after`` hint when admission refuses
  it), heartbeats, and replay of unacknowledged batches after a
  reconnect.
- :mod:`repro.net.protocol` — the length-prefixed JSON/msgpack frame
  format and message vocabulary both sides speak.

Delivery contract: **at-least-once made effectively-once**.  The client
retransmits anything unacknowledged; the server's per-session
high-water sequence number (persisted in the checkpoint) turns every
replay into either a first delivery or a counted dedup hit — never a
double count.
"""

from repro.net.client import ClientBackpressure, RushMonClient
from repro.net.protocol import ProtocolError
from repro.net.server import RushMonServer

__all__ = [
    "ClientBackpressure",
    "ProtocolError",
    "RushMonClient",
    "RushMonServer",
]
