"""The networked RushMon ingestion server.

:class:`RushMonServer` listens on TCP and feeds decoded batches into a
wrapped :class:`~repro.core.concurrent.RushMonService` (whose sharded
collector does the actual thread-safe bookkeeping).  By default
connections are multiplexed over a small pool of event-loop threads
(:mod:`repro.net.eventloop` — admission control, per-client fairness,
slow-client defenses); ``loop_threads=0`` selects the legacy
thread-per-connection transport.  Both transports share the same
handling core, so the **delivery contract** — at-least-once from the
wire, effectively-once into the monitor — is identical:

Sessions and sequence numbers
    Each client holds a session id and numbers its batches 1, 2, 3, …
    The server keeps a per-session *high-water* sequence (the last batch
    fully ingested).  ``seq == high+1`` is ingested; ``seq <= high`` is
    a **dedup hit** (the batch is a replay — re-acknowledged, never
    re-ingested); a gap is a protocol violation (``bad-session``).

Durable acknowledgements
    With a ``checkpoint_path``, batches are acknowledged only after a
    checkpoint covering them has been written (group commit: every
    ``checkpoint_every`` batches, and at least every ``ack_interval``
    seconds while acks are pending).  The session table rides inside the
    service checkpoint (``extra_state``), and the ingest lock is held
    across *batch ingest + high-water update* and across *checkpoint +
    ack flush*, so a checkpoint is always a consistent cut: a batch is
    either fully inside it (events + high-water) or fully absent (and
    then unacknowledged, so the client replays it).  A server SIGKILLed
    mid-stream and :func:`restore`-d therefore loses no acknowledged
    batch and double-counts no replayed one.  Without a checkpoint path
    acks follow ingestion immediately (at-least-once across server
    crashes, effectively-once across reconnects).

Typed failure propagation
    Journal backpressure (``overflow="block"`` timeouts) and the
    DEGRADED circuit-breaker state surface to clients as typed wire
    errors rather than silent stalls; a backpressured batch records how
    many of its events were already ingested so the client's resend is
    resumed from that offset, never double-ingested.

Graceful drain
    :meth:`drain` (wired to SIGTERM by the ``repro serve`` CLI) stops
    accepting work, flushes pending acknowledgements, stops the service
    (final detection pass) and writes a final checkpoint.

Overload resilience
    Under the event-loop transport, ``max_connections`` refuses the
    connection that tips over the cap with a typed ``overloaded``
    error carrying a ``retry_after`` hint (then pauses accepts until a
    slot frees); per-connection in-flight caps and round-robin
    dispatch keep one firehose client from starving others; idle and
    partial-frame deadlines plus a write-buffer high-watermark drop
    slowloris/non-reading peers instead of pinning buffers.

Fault injection: the ``net.accept``, ``net.recv``, ``net.ack`` and
``net.select`` points (kinds ``disconnect`` / ``delay`` / ``corrupt`` /
``slow-read`` / ``stall`` / ``exception``) let the chaos suite break
the transport deterministically.
"""

from __future__ import annotations

import logging
import socket
import threading
import time

from repro.core.concurrent.sharded import JournalBackpressure
from repro.core.concurrent.service import RushMonService
from repro.net import protocol
from repro.net.protocol import FrameReader, ProtocolError, encode_frame
from repro.obs.instrument import instrument_net_server

_log = logging.getLogger(__name__)

#: extra_state key the server's durable state lives under.
_EXTRA_KEY = "net"


class _Connection:
    """One accepted client connection (socket + reader bookkeeping)."""

    __slots__ = ("sock", "wlock", "reader", "session", "codec", "alive",
                 "refused_high")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.wlock = threading.Lock()
        self.reader = FrameReader()
        self.session: str | None = None
        self.codec = protocol.CODEC_JSON
        self.alive = True
        # Highest sequence this connection has refused (backpressure /
        # degraded).  TCP preserves order, so while the session high is
        # below this watermark an apparent sequence gap is the refusal's
        # fault, not the client's — such batches get retriable refusals
        # instead of a fatal bad-session.  A single boolean is not
        # enough: accepting the resend of one refused batch must not
        # forget that later refused batches are still outstanding.
        self.refused_high = 0

    def send(self, message: dict, *, corrupt: bool = False) -> None:
        """Serialize and send one frame (thread-safe; reader replies and
        the committer's acks share the socket)."""
        frame = encode_frame(message, self.codec)
        if corrupt:
            index = len(frame) // 2
            frame = frame[:index] + bytes([frame[index] ^ 0x40]) \
                + frame[index + 1:]
        with self.wlock:
            self.sock.sendall(frame)

    def close(self) -> None:
        self.alive = False
        try:
            self.sock.close()
        except OSError:
            pass


class RushMonServer:
    """TCP front end for a :class:`RushMonService` (see module docstring).

    Parameters
    ----------
    service:
        The service to feed.  Must not run its own periodic
        checkpointing (``checkpoint_interval``) — the server owns the
        checkpoint cadence so that acknowledgements and durability stay
        in lockstep.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    checkpoint_path:
        Where durable state goes.  Enables durable acknowledgements;
        when the service was :meth:`~RushMonService.restore`-d from this
        path, the session table (and lifetime wire stats) come back with
        it.  ``None`` acknowledges after ingestion without durability.
    checkpoint_every:
        Group-commit size: a checkpoint (and ack flush) happens after
        this many ingested batches.
    ack_interval:
        Upper bound, in seconds, on how long an ingested batch may wait
        for its group's checkpoint — a background committer flushes
        stragglers so a quiet stream still gets acknowledged promptly.
    drain_timeout:
        Hard bound, in seconds, on the *total* time :meth:`drain` may
        spend waiting (threads, ack flush, write-buffer flush).  Work
        still outstanding at the deadline is cut off and counted in
        :attr:`drain_forced_total`.
    session_ttl:
        Idle seconds after which a session-table entry may be evicted
        (only once its high-water is durable and no live connection or
        pending ack references it).  ``None`` disables eviction — then
        deployments with many short-lived clients should reuse stable
        session ids, or the table (and every checkpoint) grows one
        entry per client run without bound.  A client resuming an
        evicted session starts a fresh sequence space, so the TTL must
        comfortably exceed the longest expected client outage.
    loop_threads:
        Size of the event-loop pool multiplexing connections
        (:mod:`repro.net.eventloop`).  ``0`` falls back to the legacy
        thread-per-connection transport — same delivery contract,
        no admission control or slow-client defenses.
    max_connections:
        Admission-control cap on concurrent connections (event-loop
        transport).  The connection that tips over the cap receives a
        typed ``overloaded`` error with a ``retry_after`` hint and
        accepts pause until a slot frees.  ``None`` = unlimited.
    idle_timeout:
        Seconds of total silence after which a connection is dropped
        (clients heartbeat every second, so only dead peers trip it).
        ``None`` disables the idle deadline.
    partial_frame_timeout:
        Seconds a peer may take to complete a frame it started — the
        slowloris defense; the clock runs from the frame's first byte.
    inflight_cap:
        Per-connection cap on decoded-but-undispatched messages before
        the loop pauses that connection's reads (fairness: a firehose
        client is throttled by its own backlog).
    write_high_watermark:
        Bytes of unflushed replies (acks/errors) a connection may
        accumulate before it is disconnected for not reading.
    overload_retry_after:
        The ``retry_after`` hint, in seconds, carried by admission
        refusals.
    faults:
        Optional :class:`~repro.testing.faults.FaultInjector` arming the
        ``net.*`` points.
    """

    def __init__(
        self,
        service: RushMonService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        checkpoint_path: str | None = None,
        checkpoint_every: int = 4,
        ack_interval: float = 0.05,
        drain_timeout: float = 5.0,
        session_ttl: float | None = 3600.0,
        loop_threads: int = 2,
        max_connections: int | None = None,
        idle_timeout: float | None = 30.0,
        partial_frame_timeout: float = 5.0,
        inflight_cap: int = 8,
        write_high_watermark: int = 1 << 20,
        overload_retry_after: float = 0.5,
        faults=None,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1 batches")
        if ack_interval <= 0 or drain_timeout <= 0:
            raise ValueError("ack_interval and drain_timeout must be > 0")
        if session_ttl is not None and session_ttl <= 0:
            raise ValueError("session_ttl must be > 0 seconds (or None "
                             "to disable idle-session eviction)")
        if loop_threads < 0:
            raise ValueError("loop_threads must be >= 0 (0 = legacy "
                             "thread-per-connection transport)")
        if max_connections is not None and max_connections < 1:
            raise ValueError("max_connections must be >= 1 connections "
                             "(or None for unlimited)")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError("idle_timeout must be > 0 seconds (or None "
                             "to disable the idle deadline)")
        if partial_frame_timeout <= 0:
            raise ValueError("partial_frame_timeout must be > 0 seconds")
        if inflight_cap < 1:
            raise ValueError("inflight_cap must be >= 1 messages")
        if write_high_watermark < 4096:
            raise ValueError("write_high_watermark must be >= 4096 bytes")
        if overload_retry_after <= 0:
            raise ValueError("overload_retry_after must be > 0 seconds")
        if service._checkpoint_interval is not None:
            raise ValueError(
                "the service must not checkpoint on its own "
                "(checkpoint_interval) under a RushMonServer: the server "
                "owns the checkpoint cadence so acknowledgements imply "
                "durability; pass checkpoint_path to the server instead"
            )
        self.service = service
        self.host = host
        self._requested_port = port
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.ack_interval = ack_interval
        self.drain_timeout = drain_timeout
        self.session_ttl = session_ttl
        self.loop_threads = loop_threads
        self.max_connections = max_connections
        self.idle_timeout = idle_timeout
        self.partial_frame_timeout = partial_frame_timeout
        self.inflight_cap = inflight_cap
        self.write_high_watermark = write_high_watermark
        self.overload_retry_after = overload_retry_after
        self._faults = faults
        # Delivery state.  _ingest_lock makes (ingest batch + advance
        # high-water) and (checkpoint + flush acks) mutually atomic —
        # the crux of the no-loss/no-double-count guarantee.
        self._ingest_lock = threading.Lock()
        restored = service.extra_state.get(_EXTRA_KEY, {})
        #: session id -> [high_seq, partial_offset]
        self._sessions: dict[str, list[int]] = {
            sid: list(entry) for sid, entry in
            restored.get("sessions", {}).items()
        }
        #: lifetime wire stats — survive restore so chaos accounting can
        #: reconcile across server incarnations.
        self.stats: dict[str, int] = {
            "batches_accepted": 0, "batches_received": 0,
            "dedup_hits": 0, "events_ingested": 0,
        }
        self.stats.update(restored.get("stats", {}))
        #: per-session high-water covered by the last checkpoint: a
        #: replayed batch at or below it can be re-acked immediately.
        self._durable_high: dict[str, int] = {
            sid: entry[0] for sid, entry in self._sessions.items()
        }
        #: session id -> last activity (hello or batch), for TTL
        #: eviction; restored sessions start their idle clock now.
        self._session_seen: dict[str, float] = {
            sid: time.monotonic() for sid in self._sessions
        }
        self._pending_acks: list[tuple[_Connection, str, int, float]] = []
        self._batches_since_commit = 0
        # Transport state.
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._commit_thread: threading.Thread | None = None
        self._connections: set = set()
        self._conn_lock = threading.Lock()
        #: Guards the overload/disconnect counters below, which are
        #: bumped from multiple loop threads.
        self._count_lock = threading.Lock()
        self._loops = None
        self._stop_event = threading.Event()
        self._draining = False
        self._stopped = False
        self.connections_total = 0
        self.reconnect_hellos_total = 0
        self.sessions_evicted_total = 0
        self.admission_refusals_total = 0
        self.idle_disconnects_total = 0
        self.partial_frame_disconnects_total = 0
        self.write_overflow_disconnects_total = 0
        self.drain_forced_total = 0
        self.errors_sent: dict[str, int] = {}
        registry = service.metrics
        self._m_frames = registry.counter(
            "rushmon_net_frames_total",
            help="wire frames the server decoded",
        )
        self._m_batches = registry.counter(
            "rushmon_net_batches_total",
            help="batch messages received (accepted + dedup + refused)",
        )
        self._m_events = registry.counter(
            "rushmon_net_events_ingested_total",
            help="wire events ingested into the collector",
        )
        self._m_acks = registry.counter(
            "rushmon_net_acks_total",
            help="acknowledgement frames sent",
        )
        self._m_errors = registry.counter(
            "rushmon_net_errors_total",
            help="typed error frames sent to clients",
        )
        self._m_ack_latency = registry.histogram(
            "rushmon_net_ack_latency_seconds",
            help="batch receipt to acknowledgement send",
        )
        instrument_net_server(registry, self)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "RushMonServer":
        """Bind, listen, and start the service + accept/commit threads."""
        if self._stopped:
            raise RuntimeError("RushMonServer is stopped; construct a new "
                               "one (restore the checkpoint to resume)")
        if self._listener is not None:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(1024)
        self._listener = listener
        self.service.start()
        if self.loop_threads:
            from repro.net.eventloop import EventLoopGroup
            listener.setblocking(False)
            self._loops = EventLoopGroup(self, self.loop_threads)
            self._loops.start(listener)
        else:
            listener.settimeout(0.2)
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="rushmon-net-accept",
                daemon=True,
            )
            self._accept_thread.start()
        self._commit_thread = threading.Thread(
            target=self._commit_loop, name="rushmon-net-commit", daemon=True,
        )
        self._commit_thread.start()
        return self

    @property
    def port(self) -> int:
        if self._listener is None:
            raise RuntimeError("server is not started")
        return self._listener.getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def connections_current(self) -> int:
        with self._conn_lock:
            return len(self._connections)

    @property
    def sessions_current(self) -> int:
        with self._ingest_lock:
            return len(self._sessions)

    def session_high(self, session: str) -> int:
        """The in-memory high-water sequence for ``session`` (0 if new)."""
        with self._ingest_lock:
            entry = self._sessions.get(session)
            return entry[0] if entry else 0

    def drain(self) -> None:
        """Graceful shutdown: stop accepting, flush acknowledgements,
        stop the service (final detection pass) and write the final
        checkpoint.  Idempotent; wired to SIGTERM by ``repro serve``.

        Total wait is bounded by one ``drain_timeout`` deadline shared
        across every step (not per thread/session, which used to let a
        handful of stuck sessions stretch shutdown to N x the timeout).
        Connections cut off at the deadline with work still unflushed
        are counted in :attr:`drain_forced_total`.
        """
        if self._stopped:
            return
        deadline = time.monotonic() + self.drain_timeout
        self._draining = True
        self._stop_event.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            listener.close()
        for thread in (self._accept_thread, self._commit_thread):
            if thread is not None and thread.is_alive() \
                    and thread is not threading.current_thread():
                thread.join(max(0.05, deadline - time.monotonic()))
        # Acknowledge everything already ingested, then retire the
        # service: readers that race a last batch in get a typed
        # "draining" error and their client replays on the next server.
        with self._ingest_lock:
            final_acks = self._commit_locked(force=True)
        for ack in final_acks:
            self._send_ack(*ack)
        with self._conn_lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.send(protocol.bye())
            except OSError:
                pass
        if self._loops is not None:
            # Event-loop transport: loops flush buffered acks/byes
            # until empty or the deadline, then close everything;
            # unflushed (or stuck-loop) connections come back as the
            # forced count.
            self.drain_forced_total += self._loops.stop(deadline)
        late = time.monotonic() > deadline
        for conn in connections:
            if conn.alive:
                if late:
                    self.drain_forced_total += 1
                conn.close()
        if not self.service.stopped:
            self.service.stop()
        if self.checkpoint_path is not None:
            with self._ingest_lock:
                self._write_checkpoint_locked()
        self._stopped = True

    stop = drain

    def __enter__(self) -> "RushMonServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.drain()

    # -- accept / read loops ---------------------------------------------------

    def _fire(self, point: str):
        """Fire a net fault point; handles delay/stall/exception inline
        and returns disconnect/corrupt/slow-read faults to the call
        site."""
        if self._faults is None:
            return None
        fault = self._faults.fire(point)
        if fault is None:
            return None
        if fault.kind in ("delay", "stall"):
            time.sleep(fault.delay)
            return None
        if fault.kind in ("disconnect", "corrupt", "slow-read"):
            return fault
        raise fault.exc_factory()

    def _accept_loop(self) -> None:
        while not self._stop_event.is_set():
            listener = self._listener
            if listener is None:
                return
            try:
                sock, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed by drain()
            try:
                fault = self._fire("net.accept")
            except Exception:
                sock.close()
                continue
            if fault is not None:  # disconnect (corrupt is meaningless here)
                sock.close()
                continue
            sock.settimeout(0.2)
            conn = _Connection(sock)
            with self._conn_lock:
                self._connections.add(conn)
            self.connections_total += 1
            threading.Thread(
                target=self._read_loop, args=(conn,),
                name="rushmon-net-reader", daemon=True,
            ).start()

    def _read_loop(self, conn: _Connection) -> None:
        try:
            while conn.alive and not self._stop_event.is_set():
                try:
                    data = conn.sock.recv(65536)
                except socket.timeout:
                    continue
                except OSError:
                    return
                if not data:
                    return  # peer closed
                fault = self._fire("net.recv")
                trickle = False
                if fault is not None:
                    if fault.kind == "disconnect":
                        return
                    if fault.kind == "slow-read":
                        trickle = True
                    else:
                        index = len(data) // 2
                        data = data[:index] + bytes([data[index] ^ 0x40]) \
                            + data[index + 1:]
                try:
                    if trickle:
                        # Pathological fragmentation: one byte per feed
                        # through the incremental reassembly.
                        messages = []
                        for i in range(len(data)):
                            messages.extend(conn.reader.feed(data[i:i + 1]))
                    else:
                        messages = conn.reader.feed(data)
                    for message in messages:
                        self._m_frames.inc()
                        if not self._handle(conn, message):
                            return
                except ProtocolError as exc:
                    # Framing can no longer be trusted: tell the client
                    # (best effort) and drop the connection; it will
                    # reconnect and replay.
                    self._send_error(conn, protocol.error(
                        "bad-frame", f"undecodable frame: {exc}",
                        retriable=True,
                    ))
                    return
        finally:
            conn.close()
            with self._conn_lock:
                self._connections.discard(conn)

    # -- message handling ------------------------------------------------------

    def _send_error(self, conn: _Connection, message: dict) -> None:
        self.errors_sent[message["code"]] = \
            self.errors_sent.get(message["code"], 0) + 1
        self._m_errors.inc()
        try:
            conn.send(message)
        except OSError:
            pass

    def _handle(self, conn: _Connection, message: dict) -> bool:
        """Dispatch one message; returns False to close the connection."""
        kind = message.get("type")
        if kind == "batch":
            return self._handle_batch(conn, message)
        if kind == "hello":
            session = str(message.get("session", ""))
            if not session:
                self._send_error(conn, protocol.error(
                    "bad-session", "hello without a session id",
                    retriable=False,
                ))
                return False
            conn.session = session
            with self._ingest_lock:
                entry = self._sessions.setdefault(session, [0, 0])
                self._session_seen[session] = time.monotonic()
                if message.get("resume", 0) or entry[0]:
                    self.reconnect_hellos_total += 1
                high = entry[0]
            try:
                conn.send(protocol.welcome(session, high,
                                           self.service.health))
            except OSError:
                return False  # peer vanished between hello and welcome
            return True
        if kind == "ping":
            try:
                conn.send(protocol.pong(message.get("nonce", 0)))
            except OSError:
                return False
            return True
        if kind == "bye":
            return False
        self._send_error(conn, protocol.error(
            "bad-frame", f"unknown message type {kind!r}", retriable=True,
        ))
        return False

    def _handle_batch(self, conn: _Connection, message: dict) -> bool:
        received = time.monotonic()
        self._m_batches.inc()
        wire_session = str(message.get("session", "") or "")
        session = conn.session or wire_session
        seq = message.get("seq")
        if not session or not isinstance(seq, int) or seq < 1:
            self._send_error(conn, protocol.error(
                "bad-frame", "batch without session/seq", retriable=False,
            ))
            return False
        if conn.session and wire_session and wire_session != conn.session:
            # A batch stamped with a different session than the hello is
            # a client bug; sequencing it under the hello's session would
            # silently corrupt that session's sequence space.
            self._send_error(conn, protocol.error(
                "bad-session",
                f"batch stamped session {wire_session!r} on a connection "
                f"that helloed as {conn.session!r}",
                retriable=False, seq=seq,
            ))
            return False
        if self._draining:
            self._send_error(conn, protocol.error(
                "draining", "server is draining; replay on the next server",
                retriable=True, seq=seq,
            ))
            return True
        # An *empty* batch (a shed policy emptied it) carries nothing,
        # so it is accepted even while DEGRADED — refusing it forever
        # would wedge the session's sequence space.
        if self.service.degraded and message.get("events"):
            conn.refused_high = max(conn.refused_high, seq)
            # The refused batch may carry a partially-ingested prefix
            # from an earlier backpressure refusal — tell the client so
            # a shed does not count already-ingested events as lost.
            with self._ingest_lock:
                entry = self._sessions.get(session)
                already = (entry[1] if entry is not None
                           and seq == entry[0] + 1 else 0)
            self._send_error(conn, protocol.error(
                "degraded", "detection circuit breaker tripped; the "
                "service is DEGRADED and not accepting wire batches",
                retriable=True, seq=seq, consumed=already,
            ))
            return True
        acks: list[tuple[_Connection, str, int, float]] = []
        with self._ingest_lock:
            keep, error = self._sequence_batch_locked(
                conn, session, seq, message, received, acks)
        # Socket writes happen only after the ingest lock is released: a
        # slow client socket must never stall ingestion for every other
        # session.  Durability was established under the lock; losing an
        # ack here only means a replay, which dedups.
        for ack in acks:
            self._send_ack(*ack)
        if error is not None:
            self._send_error(conn, error)
        return keep

    def _sequence_batch_locked(
        self,
        conn: _Connection,
        session: str,
        seq: int,
        message: dict,
        received: float,
        acks: list[tuple[_Connection, str, int, float]],
    ) -> tuple[bool, dict | None]:
        """Sequence/ingest one batch; caller holds the ingest lock.

        Appends acks to flush (after the caller releases the lock) to
        ``acks`` and returns ``(keep_connection, error_message_or_None)``
        — no socket I/O happens here.
        """
        self.stats["batches_received"] += 1
        self._session_seen[session] = time.monotonic()
        entry = self._sessions.setdefault(session, [0, 0])
        high, offset = entry
        if seq <= high:
            # Replay of an already-ingested batch: count it, never
            # re-ingest.  If a checkpoint already covers it the ack
            # can go out immediately; otherwise it joins the batch's
            # original commit group.
            self.stats["dedup_hits"] += 1
            if self.checkpoint_path is None \
                    or seq <= self._durable_high.get(session, 0):
                acks.append((conn, session, seq, received))
            else:
                self._pending_acks.append((conn, session, seq, received))
            return True, None
        if seq != high + 1:
            if conn.refused_high > high:
                # Pipelined behind a refused batch: the gap is ours.
                # This batch is now refused too — remember it, so
                # batches pipelined behind *it* stay retriable even
                # after the earlier refusals are re-accepted.
                conn.refused_high = max(conn.refused_high, seq)
                return True, protocol.error(
                    "backpressure",
                    f"batch {high + 1} was refused and not yet "
                    f"resent; resend {seq} after it",
                    retriable=True, seq=seq,
                )
            return False, protocol.error(
                "bad-session",
                f"sequence gap: expected {high + 1}, got {seq}",
                retriable=False, seq=seq,
            )
        try:
            events = protocol.decode_events(message.get("events", []))
        except ProtocolError as exc:
            return False, protocol.error(
                "bad-frame", f"malformed batch events: {exc}",
                retriable=False, seq=seq,
            )
        try:
            ingested = self._ingest_locked(events, offset)
        except JournalBackpressure as exc:
            # Partial ingest: remember how far we got so the
            # client's resend resumes at the offset — the prefix is
            # never double-ingested.  Credit the newly consumed
            # prefix now; the resend's accept only counts from the
            # stored offset onward.
            consumed = exc.consumed  # type: ignore[attr-defined]
            entry[1] = consumed
            self.stats["events_ingested"] += consumed - offset
            self._m_events.inc(consumed - offset)
            conn.refused_high = max(conn.refused_high, seq)
            return True, protocol.error(
                "backpressure", str(exc), retriable=True, seq=seq,
                consumed=consumed,
            )
        except RuntimeError:
            conn.refused_high = max(conn.refused_high, seq)
            return True, protocol.error(
                "draining", "service stopped mid-batch; replay on the "
                "next server", retriable=True, seq=seq,
            )
        entry[0] = seq
        entry[1] = 0
        self.stats["batches_accepted"] += 1
        self.stats["events_ingested"] += ingested
        self._m_events.inc(ingested)
        self._batches_since_commit += 1
        if self.checkpoint_path is None:
            acks.append((conn, session, seq, received))
        else:
            self._pending_acks.append((conn, session, seq, received))
            if self._batches_since_commit >= self.checkpoint_every:
                acks.extend(self._commit_locked())
        return True, None

    def _ingest_locked(self, events: list[tuple], offset: int) -> int:
        """Feed decoded events ``[offset:]`` to the service, in order.

        With an unbounded journal (or a non-raising overflow policy)
        runs of consecutive operations go through the batched ingest
        path; under ``overflow="block"`` events are fed one at a time so
        a backpressure timeout reports exactly how many were consumed.
        """
        service = self.service
        collector = service.collector
        count = len(events) - offset
        if count <= 0:
            return 0
        blocking = (collector.journal_capacity is not None
                    and collector.overflow == "block")
        if not blocking:
            run: list = []
            flush = service.on_operations
            for event in events[offset:] if offset else events:
                if event[0] == "op":
                    run.append(event[1])
                    continue
                if run:
                    flush(run)
                    run = []
                if event[0] == "b":
                    service.begin_buu(event[1], event[2])
                else:
                    service.commit_buu(event[1], event[2])
            if run:
                flush(run)
            return count
        consumed = 0
        try:
            for index in range(offset, len(events)):
                event = events[index]
                if event[0] == "op":
                    service.on_operation(event[1])
                elif event[0] == "b":
                    service.begin_buu(event[1], event[2])
                else:
                    service.commit_buu(event[1], event[2])
                consumed += 1
        except JournalBackpressure as exc:
            exc.consumed = offset + consumed  # type: ignore[attr-defined]
            raise
        return count

    # -- durability / acknowledgement -----------------------------------------

    def _write_checkpoint_locked(self) -> None:
        """Checkpoint the service with the session table embedded;
        caller holds the ingest lock, so the cut is batch-consistent."""
        self.service.extra_state = {_EXTRA_KEY: {
            "sessions": {sid: list(entry)
                         for sid, entry in self._sessions.items()},
            "stats": dict(self.stats),
        }}
        self.service.checkpoint(self.checkpoint_path)
        self._durable_high = {
            sid: entry[0] for sid, entry in self._sessions.items()
        }

    def _commit_locked(
        self, force: bool = False,
    ) -> list[tuple[_Connection, str, int, float]]:
        """Group commit: persist state and *return* the acks now covered
        by it.  Caller holds the ingest lock and must send the returned
        acks after releasing it — one slow client socket must not hold
        the global ingest lock hostage."""
        if not self._pending_acks and not (force and self._batches_since_commit):
            self._batches_since_commit = 0
            return []
        if self.checkpoint_path is not None:
            self._write_checkpoint_locked()
        pending, self._pending_acks = self._pending_acks, []
        self._batches_since_commit = 0
        return pending

    def _send_ack(self, conn: _Connection, session: str, seq: int,
                  received: float) -> None:
        corrupt = False
        try:
            fault = self._fire("net.ack")
        except Exception:
            conn.close()
            return
        if fault is not None:
            if fault.kind == "disconnect":
                # The batch is ingested (and possibly durable) but the
                # ack is lost with the connection: the client replays
                # and the replay dedups — the invariant the chaos suite
                # reconciles.
                conn.close()
                return
            corrupt = True
        try:
            conn.send(protocol.ack(session, seq), corrupt=corrupt)
        except OSError:
            return
        self._m_acks.inc()
        self._m_ack_latency.observe(time.monotonic() - received)

    def _commit_loop(self) -> None:
        """Bound ack latency: flush pending acks at least every
        ``ack_interval`` even when the stream goes quiet mid-group.
        Doubles as the session-table janitor (idle-session eviction)."""
        while not self._stop_event.wait(self.ack_interval):
            pending: list[tuple[_Connection, str, int, float]] = []
            with self._ingest_lock:
                if self._pending_acks:
                    oldest = self._pending_acks[0][3]
                    if time.monotonic() - oldest >= self.ack_interval:
                        pending = self._commit_locked()
            for ack in pending:
                self._send_ack(*ack)
            self._evict_idle_sessions()

    def _evict_idle_sessions(self) -> None:
        """Expire session-table entries idle past ``session_ttl``.

        Eviction is safe only once a session's high-water is durable
        (always true without a checkpoint path, where acks imply
        nothing survives a crash anyway), it holds no partial-ingest
        offset, and no live connection or pending ack references it —
        otherwise a long-lived server grows one entry (and a bigger
        checkpoint) per client run, forever.
        """
        if self.session_ttl is None or not self._sessions:
            return
        now = time.monotonic()
        with self._conn_lock:
            live = {c.session for c in self._connections if c.session}
        with self._ingest_lock:
            referenced = {item[1] for item in self._pending_acks}
            for sid in list(self._sessions):
                if sid in live or sid in referenced:
                    continue
                if now - self._session_seen.get(sid, now) < self.session_ttl:
                    continue
                entry = self._sessions[sid]
                if entry[1]:
                    continue  # mid-backpressure partial ingest: keep
                if self.checkpoint_path is not None \
                        and entry[0] > self._durable_high.get(sid, 0):
                    continue  # not yet checkpointed: keep until durable
                del self._sessions[sid]
                self._durable_high.pop(sid, None)
                self._session_seen.pop(sid, None)
                self.sessions_evicted_total += 1
