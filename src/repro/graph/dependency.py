"""Labelled dependency-graph structure.

The dependency graph (Section 2.1) has one vertex per BUU and a directed
edge per conflict, labelled with the data item the conflict occurred on.
It is a *labelled multigraph*: two BUUs may be connected by parallel edges
with different labels, and each label combination gives a distinct cycle
(the paper's read-skew example is a 2-cycle whose two edges are on
different items).  Duplicate edges with identical (src, dst, label) are
collapsed — re-reading the same written value adds no new conflict.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.core.types import BuuId, Edge, EdgeType, Key


class DependencyGraph:
    """An explicit, fully materialised dependency graph.

    This is the *offline* structure used by the baseline detector and by
    tests/benches for ground truth.  The real-time detector
    (:mod:`repro.core.detector`) keeps an equivalent incremental structure
    and prunes it; this class favours clarity over speed.
    """

    def __init__(self) -> None:
        # (u, v) -> set of labels for parallel edges u -> v
        self._labels: dict[tuple[BuuId, BuuId], set[Key]] = defaultdict(set)
        self._out: dict[BuuId, set[BuuId]] = defaultdict(set)
        self._in: dict[BuuId, set[BuuId]] = defaultdict(set)
        self._vertices: set[BuuId] = set()
        self._edge_count = 0

    def add_vertex(self, v: BuuId) -> None:
        self._vertices.add(v)

    def add_edge(self, edge: Edge) -> bool:
        """Insert an edge; returns False if it was a duplicate or self-loop."""
        return self.add(edge.src, edge.dst, edge.label)

    def add(self, src: BuuId, dst: BuuId, label: Key) -> bool:
        if src == dst:
            return False
        labels = self._labels[(src, dst)]
        if label in labels:
            return False
        labels.add(label)
        self._out[src].add(dst)
        self._in[dst].add(src)
        self._vertices.add(src)
        self._vertices.add(dst)
        self._edge_count += 1
        return True

    def add_edges(self, edges: Iterable[Edge]) -> None:
        for edge in edges:
            self.add_edge(edge)

    # -- accessors ---------------------------------------------------------

    @property
    def vertices(self) -> set[BuuId]:
        return self._vertices

    def num_vertices(self) -> int:
        return len(self._vertices)

    def num_edges(self) -> int:
        """Number of labelled edges (parallel labels counted separately)."""
        return self._edge_count

    def successors(self, v: BuuId) -> set[BuuId]:
        return self._out.get(v, set())

    def predecessors(self, v: BuuId) -> set[BuuId]:
        return self._in.get(v, set())

    def labels(self, src: BuuId, dst: BuuId) -> set[Key]:
        """Labels of the parallel edges src -> dst (empty set if none)."""
        return self._labels.get((src, dst), set())

    def has_edge(self, src: BuuId, dst: BuuId) -> bool:
        return bool(self._labels.get((src, dst)))

    def edges(self) -> Iterator[tuple[BuuId, BuuId, Key]]:
        for (src, dst), labels in self._labels.items():
            for label in labels:
                yield (src, dst, label)

    def remove_vertex(self, v: BuuId) -> None:
        """Remove a vertex and all incident edges (used by pruning tests)."""
        for succ in list(self._out.get(v, ())):
            self._edge_count -= len(self._labels.pop((v, succ), ()))
            self._in[succ].discard(v)
        for pred in list(self._in.get(v, ())):
            self._edge_count -= len(self._labels.pop((pred, v), ()))
            self._out[pred].discard(v)
        self._out.pop(v, None)
        self._in.pop(v, None)
        self._vertices.discard(v)

    def copy(self) -> "DependencyGraph":
        clone = DependencyGraph()
        for src, dst, label in self.edges():
            clone.add(src, dst, label)
        for v in self._vertices:
            clone.add_vertex(v)
        return clone


def graph_from_edges(edges: Iterable[Edge]) -> DependencyGraph:
    """Build a :class:`DependencyGraph` from a collector's edge stream."""
    graph = DependencyGraph()
    graph.add_edges(edges)
    return graph


def edge_list(
    pairs: Iterable[tuple[BuuId, BuuId, Key]], kind: EdgeType = EdgeType.WR
) -> list[Edge]:
    """Convenience constructor for tests: (src, dst, label) triples."""
    return [Edge(src, dst, kind, label) for src, dst, label in pairs]
