"""Exact cycle counting and enumeration on dependency graphs.

This module is the offline "ground truth" side of the reproduction:

- :func:`count_labelled_short_cycles` counts 2- and 3-cycles with the
  label-class breakdown (ss/dd, sss/ssd/ddd) that Theorem 5.2's estimator
  needs.  A cycle is a set of edges; parallel edges with different labels
  give distinct cycles, matching the paper's read-skew example.
- :func:`count_simple_cycles_by_length` counts vertex-simple directed
  cycles of each length up to a bound (used for Figure 2, lengths 2..5).
- :func:`johnson_simple_cycles` enumerates *all* elementary circuits with
  Johnson's algorithm [Johnson 1975], the fastest known enumeration and
  the algorithm the paper's Section 3 cites as "not fast enough" for
  real-time monitoring — which is exactly the point of RushMon.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

from repro.core.types import BuuId, CycleCounts
from repro.graph.dependency import DependencyGraph


def count_labelled_short_cycles(graph: DependencyGraph) -> CycleCounts:
    """Count 2- and 3-cycles in ``graph`` broken down by label class.

    2-cycles: for every unordered vertex pair {u, v} with edges in both
    directions, every (label-on-u->v, label-on-v->u) combination is one
    cycle: ``ss`` if the labels match, ``dd`` otherwise.

    3-cycles: every directed triangle u -> v -> w -> u, canonicalised to
    start at its smallest vertex so each is counted once; every label
    triple is one cycle, classified by how many distinct labels it has.
    """
    counts = CycleCounts()

    # -- 2-cycles ----------------------------------------------------------
    for u in graph.vertices:
        for v in graph.successors(u):
            if v <= u or not graph.has_edge(v, u):
                continue
            forward = graph.labels(u, v)
            backward = graph.labels(v, u)
            same = len(forward & backward)
            counts.ss += same
            counts.dd += len(forward) * len(backward) - same

    # -- 3-cycles ----------------------------------------------------------
    for u in graph.vertices:
        for v in graph.successors(u):
            if v == u:
                continue
            for w in graph.successors(v):
                if w == u or w == v or not graph.has_edge(w, u):
                    continue
                # Canonical start: count the triangle only from its
                # smallest vertex.
                if not (u < v and u < w):
                    continue
                _classify_triangle_labels(
                    graph.labels(u, v), graph.labels(v, w), graph.labels(w, u), counts
                )
    return counts


def _classify_triangle_labels(la: set, lb: set, lc: set, counts: CycleCounts) -> None:
    """Add every (a, b, c) label combination of a triangle to ``counts``.

    Uses inclusion-exclusion instead of a triple loop so dense label sets
    stay cheap.  A combination with exactly two equal labels satisfies
    exactly one of the three pairwise-equality conditions; an all-equal
    combination satisfies all three, so it is subtracted from each.
    """
    na, nb, nc = len(la), len(lb), len(lc)
    total = na * nb * nc
    sss = len(la & lb & lc)
    ssd = (
        (len(la & lb) * nc - sss)
        + (len(lb & lc) * na - sss)
        + (len(la & lc) * nb - sss)
    )
    counts.sss += sss
    counts.ssd += ssd
    counts.ddd += total - sss - ssd


def count_simple_cycles_by_length(
    graph: DependencyGraph, max_length: int = 5
) -> dict[int, int]:
    """Count vertex-simple directed cycles of each length 2..max_length.

    Uses a depth-first search from each vertex restricted to neighbours
    greater than the root, so each cycle is discovered exactly once (from
    its smallest vertex).  Exponential in ``max_length`` but lengths <= 5
    on pruned graphs stay tractable — this is the Figure 2 ground truth,
    not the real-time path.
    """
    counts = {length: 0 for length in range(2, max_length + 1)}
    for root in graph.vertices:
        _bounded_cycle_dfs(graph, root, counts, max_length)
    return counts


def _bounded_cycle_dfs(
    graph: DependencyGraph, root: BuuId, counts: dict[int, int], max_length: int
) -> None:
    # Iterative DFS over paths root -> ... -> v with all vertices > root,
    # expanding neighbours lazily via explicit iterator frames.
    frames: list[tuple[Iterator[BuuId], BuuId]] = [
        (iter(graph.successors(root)), root)
    ]
    on_path: list[BuuId] = [root]
    path_set: set[BuuId] = {root}
    while frames:
        it, current = frames[-1]
        advanced = False
        for nxt in it:
            if nxt == root:
                length = len(on_path)
                if 2 <= length <= max_length:
                    counts[length] += 1
                continue
            if nxt < root or nxt in path_set:
                continue
            if len(on_path) >= max_length:
                continue
            on_path.append(nxt)
            path_set.add(nxt)
            frames.append((iter(graph.successors(nxt)), nxt))
            advanced = True
            break
        if not advanced:
            frames.pop()
            removed = on_path.pop()
            path_set.discard(removed)


def johnson_simple_cycles(graph: DependencyGraph) -> Iterator[list[BuuId]]:
    """Enumerate all elementary circuits (Johnson 1975), iteratively.

    Yields each cycle as a list of vertices starting from its smallest
    vertex.  O((n + e)(c + 1)) like the original; used as the paper's
    offline baseline and for cross-checking the bounded counters.
    """
    # Work on a shrinking copy: Johnson processes vertices in increasing
    # order, removing each once all circuits through it are reported.
    succ: dict[BuuId, set[BuuId]] = {
        v: set(graph.successors(v)) for v in graph.vertices
    }
    for v in list(succ):
        succ[v].discard(v)

    order = sorted(succ)
    for start in order:
        # Restrict to the strongly connected component of ``start`` in the
        # subgraph of vertices >= start; self-loops were already dropped,
        # so a singleton component carries no circuit through ``start``.
        sub = {v: {w for w in ws if w >= start} for v, ws in succ.items() if v >= start}
        component = _scc_containing(sub, start)
        if len(component) < 2:
            continue
        yield from _johnson_from(sub, component, start)


def _scc_containing(succ: dict[BuuId, set[BuuId]], root: BuuId) -> set[BuuId]:
    """The strongly connected component of ``root`` (iterative Tarjan)."""
    index: dict[BuuId, int] = {}
    low: dict[BuuId, int] = {}
    on_stack: set[BuuId] = set()
    stack: list[BuuId] = []
    counter = 0
    result: set[BuuId] = {root}

    call_stack: list[tuple[BuuId, Iterator[BuuId]]] = []
    index[root] = low[root] = counter
    counter += 1
    stack.append(root)
    on_stack.add(root)
    call_stack.append((root, iter(succ.get(root, ()))))
    while call_stack:
        v, it = call_stack[-1]
        advanced = False
        for w in it:
            if w not in succ:
                continue
            if w not in index:
                index[w] = low[w] = counter
                counter += 1
                stack.append(w)
                on_stack.add(w)
                call_stack.append((w, iter(succ.get(w, ()))))
                advanced = True
                break
            if w in on_stack:
                low[v] = min(low[v], index[w])
        if advanced:
            continue
        call_stack.pop()
        if call_stack:
            parent = call_stack[-1][0]
            low[parent] = min(low[parent], low[v])
        if low[v] == index[v]:
            component = set()
            while True:
                w = stack.pop()
                on_stack.discard(w)
                component.add(w)
                if w == v:
                    break
            if root in component:
                result = component
    return result


def _johnson_from(
    succ: dict[BuuId, set[BuuId]], component: set[BuuId], start: BuuId
) -> Iterator[list[BuuId]]:
    """Johnson's circuit search rooted at ``start`` inside ``component``."""
    blocked: dict[BuuId, bool] = {v: False for v in component}
    blocked_map: dict[BuuId, set[BuuId]] = {v: set() for v in component}
    path: list[BuuId] = [start]
    blocked[start] = True

    def unblock(v: BuuId) -> None:
        pending = [v]
        while pending:
            u = pending.pop()
            if not blocked.get(u):
                continue
            blocked[u] = False
            pending.extend(blocked_map[u])
            blocked_map[u].clear()

    # Iterative adaptation of CIRCUIT(v).
    frames: list[tuple[BuuId, Iterator[BuuId], bool]] = [
        (start, iter(sorted(succ.get(start, set()) & component)), False)
    ]
    found_flags: list[bool] = [False]
    while frames:
        v, it, _ = frames[-1]
        advanced = False
        for w in it:
            if w == start:
                yield list(path)
                found_flags[-1] = True
                continue
            if not blocked.get(w, True):
                path.append(w)
                blocked[w] = True
                frames.append((w, iter(sorted(succ.get(w, set()) & component)), False))
                found_flags.append(False)
                advanced = True
                break
        if advanced:
            continue
        frames.pop()
        found = found_flags.pop()
        path.pop()
        if found:
            unblock(v)
            if found_flags:
                found_flags[-1] = True
        else:
            for w in succ.get(v, set()) & component:
                blocked_map.setdefault(w, set()).add(v)


def count_cycles_johnson(graph: DependencyGraph, max_length: int | None = None) -> dict[int, int]:
    """Count elementary circuits by length via full Johnson enumeration."""
    counts: dict[int, int] = defaultdict(int)
    for cycle in johnson_simple_cycles(graph):
        if max_length is None or len(cycle) <= max_length:
            counts[len(cycle)] += 1
    return dict(counts)
