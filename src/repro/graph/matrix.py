"""Matrix-based exact cycle counting (validation counters).

For a simple directed graph with adjacency matrix A (no self-loops):

- the number of 2-cycles is ``trace(A²) / 2`` — each antiparallel pair
  contributes twice (once from each endpoint);
- the number of directed triangles is ``trace(A³) / 3`` — each triangle
  contributes once per rotation.

These identities give an independent O(n^ω) implementation of the
vertex-level counters, used to cross-validate the DFS counters and the
streaming detector in tests, and as a fast bulk counter for offline
analysis.  They count *vertex-level* cycles; the labelled multigraph
expansion (parallel edges per item) is the business of
:func:`repro.graph.cycles.count_labelled_short_cycles`.
"""

from __future__ import annotations

import numpy as np

from repro.graph.dependency import DependencyGraph


def adjacency_matrix(graph: DependencyGraph) -> tuple[np.ndarray, list]:
    """Dense 0/1 adjacency matrix plus the vertex order used."""
    vertices = sorted(graph.vertices)
    index = {v: i for i, v in enumerate(vertices)}
    matrix = np.zeros((len(vertices), len(vertices)), dtype=np.int64)
    for (src, dst), labels in graph._labels.items():
        if labels:
            matrix[index[src], index[dst]] = 1
    return matrix, vertices


def count_two_cycles_matrix(graph: DependencyGraph) -> int:
    """Vertex-level 2-cycles via trace(A²)/2."""
    matrix, _ = adjacency_matrix(graph)
    if matrix.size == 0:
        return 0
    return int(np.trace(matrix @ matrix)) // 2


def count_three_cycles_matrix(graph: DependencyGraph) -> int:
    """Vertex-level directed triangles via trace(A³)/3."""
    matrix, _ = adjacency_matrix(graph)
    if matrix.size == 0:
        return 0
    return int(np.trace(matrix @ matrix @ matrix)) // 3


def count_k_cycle_closed_walks(graph: DependencyGraph, k: int) -> int:
    """trace(A^k): closed k-walks (not simple cycles for k > 3).

    Exposed for the §3 discussion — the number of *non-simple* cycles
    explodes, which is why the paper restricts to short simple cycles.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    matrix, _ = adjacency_matrix(graph)
    if matrix.size == 0:
        return 0
    power = np.linalg.matrix_power(matrix, k)
    return int(np.trace(power))
