"""Random graph generators used by the workloads and the §3 theory check.

Two generators:

- :func:`preferential_attachment_graph` — the synthetic data generator of
  Section 7.2 / Table 1 (Dorogovtsev-Mendes-Samukhin style preferential
  attachment), with the paper's parameters: vertex count ``V``, average
  degree ``D`` and degree lower bound ``LB``.
- :func:`directed_gnp` — a directed Erdős–Rényi graph, used to verify the
  Section 3 analysis that the expected number of k-cycles in G(n, p) is
  ``n! / (n-k)! / k * p^k``.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from repro.graph.dependency import DependencyGraph


class UndirectedGraph:
    """A minimal undirected adjacency structure for workload graphs.

    Workloads (graph analytics, the §7.2 synthetic workload) operate on an
    *application* graph, which is undirected; the *dependency* graph the
    monitor builds is a separate, directed object.
    """

    def __init__(self, num_vertices: int) -> None:
        self.num_vertices = num_vertices
        self.adj: list[list[int]] = [[] for _ in range(num_vertices)]
        self.num_edges = 0

    def add_edge(self, u: int, v: int) -> None:
        if u == v:
            return
        self.adj[u].append(v)
        self.adj[v].append(u)
        self.num_edges += 1

    def neighbors(self, v: int) -> Sequence[int]:
        return self.adj[v]

    def degree(self, v: int) -> int:
        return len(self.adj[v])

    def average_degree(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return 2.0 * self.num_edges / self.num_vertices

    def edges(self) -> list[tuple[int, int]]:
        out = []
        for u in range(self.num_vertices):
            for v in self.adj[u]:
                if u < v:
                    out.append((u, v))
        return out


def preferential_attachment_graph(
    num_vertices: int,
    average_degree: float,
    degree_lower_bound: int = 0,
    rng: random.Random | None = None,
) -> UndirectedGraph:
    """Generate a preferential-attachment graph (Table 1 generator).

    Each new vertex attaches ``m = average_degree / 2`` edges to existing
    vertices chosen proportionally to their current degree (plus one, so
    isolated seeds can be chosen).  ``degree_lower_bound`` (the paper's
    ``LB``) afterwards tops up vertices below the bound with uniformly
    random extra edges, mirroring how the paper sweeps a minimum-conflict
    density.
    """
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    rng = rng or random.Random(0)
    graph = UndirectedGraph(num_vertices)
    m = max(1, round(average_degree / 2))

    # Repeated-nodes list: classic O(1) preferential sampling.
    targets: list[int] = [0]
    for v in range(1, num_vertices):
        chosen: set[int] = set()
        attempts = 0
        k = min(m, v)
        while len(chosen) < k and attempts < 10 * k + 10:
            candidate = targets[rng.randrange(len(targets))]
            attempts += 1
            if candidate != v:
                chosen.add(candidate)
        while len(chosen) < k:
            candidate = rng.randrange(v)
            if candidate != v:
                chosen.add(candidate)
        for u in chosen:
            graph.add_edge(v, u)
            targets.append(u)
            targets.append(v)
        if not chosen:
            targets.append(v)

    if degree_lower_bound > 0:
        _enforce_degree_lower_bound(graph, degree_lower_bound, rng)
    return graph


def _enforce_degree_lower_bound(
    graph: UndirectedGraph, lower_bound: int, rng: random.Random
) -> None:
    n = graph.num_vertices
    for v in range(n):
        existing = set(graph.adj[v])
        existing.add(v)
        guard = 0
        while graph.degree(v) < lower_bound and guard < 100 * lower_bound:
            u = rng.randrange(n)
            guard += 1
            if u in existing:
                continue
            graph.add_edge(v, u)
            existing.add(u)


def directed_gnp(
    num_vertices: int, edge_probability: float, rng: random.Random | None = None
) -> DependencyGraph:
    """Directed G(n, p): each ordered pair (u, v), u != v, independently."""
    rng = rng or random.Random(0)
    graph = DependencyGraph()
    for v in range(num_vertices):
        graph.add_vertex(v)
    for u in range(num_vertices):
        for v in range(num_vertices):
            if u != v and rng.random() < edge_probability:
                graph.add(u, v, label="gnp")
    return graph


def expected_k_cycles(num_vertices: int, edge_probability: float, k: int) -> float:
    """Section 3's closed form: E[#k-cycles in G(n, p)] = n!/(n-k)!/k * p^k."""
    if k < 2 or k > num_vertices:
        return 0.0
    falling = math.perm(num_vertices, k)
    return falling / k * edge_probability**k
