"""Dependency-graph substrate: structure, exact cycle counting, generators."""

from repro.graph.dependency import DependencyGraph, edge_list, graph_from_edges
from repro.graph.cycles import (
    count_cycles_johnson,
    count_labelled_short_cycles,
    count_simple_cycles_by_length,
    johnson_simple_cycles,
)
from repro.graph.random_graphs import (
    UndirectedGraph,
    directed_gnp,
    expected_k_cycles,
    preferential_attachment_graph,
)

__all__ = [
    "DependencyGraph",
    "edge_list",
    "graph_from_edges",
    "count_cycles_johnson",
    "count_labelled_short_cycles",
    "count_simple_cycles_by_length",
    "johnson_simple_cycles",
    "adjacency_matrix",
    "count_k_cycle_closed_walks",
    "count_three_cycles_matrix",
    "count_two_cycles_matrix",
    "UndirectedGraph",
    "directed_gnp",
    "expected_k_cycles",
    "preferential_attachment_graph",
]

_MATRIX_EXPORTS = frozenset((
    "adjacency_matrix",
    "count_k_cycle_closed_walks",
    "count_three_cycles_matrix",
    "count_two_cycles_matrix",
))


def __getattr__(name):
    # The matrix counters hard-require numpy; loading them lazily keeps
    # a base install (no ``repro[fast]`` extra) importable end to end.
    if name in _MATRIX_EXPORTS:
        from repro.graph import matrix

        return getattr(matrix, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
