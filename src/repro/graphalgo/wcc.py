"""Asynchronous weakly connected components (§7.1, Fig 10).

Each vertex holds a component label (initially its own id).  A BUU for
vertex v reads v's label and its neighbours' labels and writes the
minimum back to v.  The computation is self-stabilising under weak
isolation (the label is monotonically non-increasing), but out-of-order
execution delays convergence — which is what the experiment correlates
with anomaly counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.config import RushMonConfig
from repro.core.monitor import RushMon
from repro.graph.random_graphs import UndirectedGraph
from repro.sim.buu import Buu
from repro.sim.scheduler import SimConfig, Simulator


def label_key(vertex: int) -> str:
    """Store key holding vertex's component label."""
    return f"c{vertex}"


def ground_truth_components(graph: UndirectedGraph) -> list[int]:
    """Min vertex id of each vertex's component, via union-find."""
    parent = list(range(graph.num_vertices))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in graph.edges():
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    return [find(v) for v in range(graph.num_vertices)]


@dataclass
class WccResult:
    """Outcome of an asynchronous WCC run."""

    buus_to_converge: int | None
    converged: bool
    rounds: int
    estimated_2: float = 0.0
    estimated_3: float = 0.0
    sim_time: int = 0

    def cycles_per_time(self) -> tuple[float, float]:
        t = max(1, self.sim_time)
        return (self.estimated_2 / t, self.estimated_3 / t)


class AsyncWcc:
    """Drives asynchronous WCC on the simulator with a monitor attached."""

    def __init__(self, graph: UndirectedGraph,
                 sim_config: SimConfig | None = None,
                 monitor_config: RushMonConfig | None = None,
                 neighbor_cap: int = 10, seed: int = 0) -> None:
        self.graph = graph
        self.neighbor_cap = neighbor_cap
        self._rng = random.Random(seed)
        self.monitor = RushMon(
            monitor_config or RushMonConfig(sampling_rate=1, mob=False)
        )
        store = {label_key(v): v for v in range(graph.num_vertices)}
        self.simulator = Simulator(
            sim_config or SimConfig(num_workers=8, seed=seed),
            store=store,
            listeners=[self.monitor],
        )
        self._truth = ground_truth_components(graph)

    def vertex_buu(self, vertex: int) -> Buu:
        neighbors = list(self.graph.neighbors(vertex))
        if len(neighbors) > self.neighbor_cap:
            neighbors = self._rng.sample(neighbors, self.neighbor_cap)
        keys = [label_key(vertex)] + [label_key(n) for n in neighbors]

        def compute(values: dict) -> dict:
            labels = [v for v in values.values() if v is not None]
            new = min(labels) if labels else vertex
            return {label_key(vertex): new}

        return Buu(reads=keys, compute=compute, additive=False)

    def is_correct(self) -> bool:
        store = self.simulator.store
        return all(
            store.get(label_key(v)) == self._truth[v]
            for v in range(self.graph.num_vertices)
        )

    def run(self, max_rounds: int = 50) -> WccResult:
        """Supersteps of one BUU per vertex (random order) until correct."""
        buus_total = 0
        converged_at = None
        rounds_used = 0
        for round_index in range(max_rounds):
            rounds_used = round_index + 1
            order = list(range(self.graph.num_vertices))
            self._rng.shuffle(order)
            self.simulator.run(self.vertex_buu(v) for v in order)
            buus_total += len(order)
            if self.is_correct():
                converged_at = buus_total
                break
        e2, e3 = self.monitor.cumulative_estimates()
        return WccResult(
            buus_to_converge=converged_at,
            converged=converged_at is not None,
            rounds=rounds_used,
            estimated_2=e2,
            estimated_3=e3,
            sim_time=self.simulator.now,
        )
