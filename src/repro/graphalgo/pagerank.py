"""Asynchronous PageRank (§2.2's "vertex's PageRank propagation" BUU).

Each BUU recomputes one vertex's rank from its in-neighbours' current
(possibly stale) ranks with the standard damping update.  The reference
fixed point comes from synchronous power iteration; convergence is the
L1 distance to it.  Like WCC, asynchronous PageRank is self-stabilising,
but chaos slows it down — another workload for the anomaly-vs-progress
correlation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.config import RushMonConfig
from repro.core.monitor import RushMon
from repro.graph.random_graphs import UndirectedGraph
from repro.sim.buu import Buu
from repro.sim.scheduler import SimConfig, Simulator

DAMPING = 0.85


def rank_key(vertex: int) -> str:
    """Store key holding vertex's PageRank value."""
    return f"pr{vertex}"


def reference_pagerank(graph: UndirectedGraph, iterations: int = 100,
                       damping: float = DAMPING) -> list[float]:
    """Synchronous power iteration (the isolated gold standard)."""
    n = graph.num_vertices
    ranks = [1.0 / n] * n
    for _ in range(iterations):
        fresh = []
        for v in range(n):
            total = sum(
                ranks[u] / max(1, graph.degree(u))
                for u in graph.neighbors(v)
            )
            fresh.append((1.0 - damping) / n + damping * total)
        ranks = fresh
    return ranks


@dataclass
class PageRankResult:
    buus_to_converge: int | None
    converged: bool
    rounds: int
    final_error: float
    estimated_2: float = 0.0
    estimated_3: float = 0.0
    sim_time: int = 0

    def cycles_per_time(self) -> tuple[float, float]:
        t = max(1, self.sim_time)
        return (self.estimated_2 / t, self.estimated_3 / t)


class AsyncPageRank:
    """Drives asynchronous PageRank on the simulator with a monitor."""

    def __init__(self, graph: UndirectedGraph,
                 sim_config: SimConfig | None = None,
                 monitor_config: RushMonConfig | None = None,
                 damping: float = DAMPING, seed: int = 0) -> None:
        self.graph = graph
        self.damping = damping
        self._rng = random.Random(seed)
        self.monitor = RushMon(
            monitor_config or RushMonConfig(sampling_rate=1, mob=False)
        )
        n = graph.num_vertices
        store = {rank_key(v): 1.0 / n for v in range(n)}
        self.simulator = Simulator(
            sim_config or SimConfig(num_workers=8, seed=seed),
            store=store,
            listeners=[self.monitor],
        )
        self.reference = reference_pagerank(graph, damping=damping)

    def vertex_buu(self, vertex: int) -> Buu:
        neighbors = list(self.graph.neighbors(vertex))
        keys = [rank_key(n) for n in neighbors]
        n = self.graph.num_vertices
        degrees = {u: max(1, self.graph.degree(u)) for u in neighbors}

        def compute(values: dict) -> dict:
            total = sum(
                (values.get(rank_key(u)) or 0.0) / degrees[u]
                for u in neighbors
            )
            rank = (1.0 - self.damping) / n + self.damping * total
            return {rank_key(vertex): rank}

        return Buu(reads=keys, compute=compute, additive=False)

    def error(self) -> float:
        store = self.simulator.store
        return sum(
            abs((store.get(rank_key(v)) or 0.0) - self.reference[v])
            for v in range(self.graph.num_vertices)
        )

    def run(self, max_rounds: int = 50, tolerance: float = 1e-3) -> PageRankResult:
        buus_total = 0
        converged_at = None
        rounds_used = 0
        for round_index in range(max_rounds):
            rounds_used = round_index + 1
            order = list(range(self.graph.num_vertices))
            self._rng.shuffle(order)
            self.simulator.run(self.vertex_buu(v) for v in order)
            buus_total += len(order)
            if self.error() <= tolerance:
                converged_at = buus_total
                break
        e2, e3 = self.monitor.cumulative_estimates()
        return PageRankResult(
            buus_to_converge=converged_at,
            converged=converged_at is not None,
            rounds=rounds_used,
            final_error=self.error(),
            estimated_2=e2,
            estimated_3=e3,
            sim_time=self.simulator.now,
        )
