"""Graph-analytics substrate: async WCC, coloring, PageRank, matching."""

from repro.graphalgo.coloring import AsyncColoring, ColoringResult, color_key
from repro.graphalgo.matching import AsyncMatching, MatchingResult, match_key
from repro.graphalgo.pagerank import (
    AsyncPageRank,
    PageRankResult,
    rank_key,
    reference_pagerank,
)
from repro.graphalgo.wcc import (
    AsyncWcc,
    WccResult,
    ground_truth_components,
    label_key,
)

__all__ = [
    "AsyncColoring",
    "ColoringResult",
    "color_key",
    "AsyncMatching",
    "MatchingResult",
    "match_key",
    "AsyncPageRank",
    "PageRankResult",
    "rank_key",
    "reference_pagerank",
    "AsyncWcc",
    "WccResult",
    "ground_truth_components",
    "label_key",
]
