"""Asynchronous greedy graph coloring (§7.1, Fig 10).

Each vertex starts with a unique colour; BUUs repeatedly re-colour a
vertex with the smallest colour not used by its neighbours.  Under weak
isolation two adjacent vertices can pick the same colour concurrently,
so convergence (a proper colouring that is also locally minimal) takes
longer the more chaotic the execution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.config import RushMonConfig
from repro.core.monitor import RushMon
from repro.graph.random_graphs import UndirectedGraph
from repro.sim.buu import Buu
from repro.sim.scheduler import SimConfig, Simulator


def color_key(vertex: int) -> str:
    """Store key holding vertex's colour."""
    return f"col{vertex}"


@dataclass
class ColoringResult:
    buus_to_converge: int | None
    converged: bool
    rounds: int
    colors_used: int
    estimated_2: float = 0.0
    estimated_3: float = 0.0
    sim_time: int = 0

    def cycles_per_time(self) -> tuple[float, float]:
        t = max(1, self.sim_time)
        return (self.estimated_2 / t, self.estimated_3 / t)


class AsyncColoring:
    """Drives asynchronous greedy colouring with a monitor attached."""

    def __init__(self, graph: UndirectedGraph,
                 sim_config: SimConfig | None = None,
                 monitor_config: RushMonConfig | None = None,
                 seed: int = 0) -> None:
        self.graph = graph
        self._rng = random.Random(seed)
        self.monitor = RushMon(
            monitor_config or RushMonConfig(sampling_rate=1, mob=False)
        )
        store = {color_key(v): v for v in range(graph.num_vertices)}
        self.simulator = Simulator(
            sim_config or SimConfig(num_workers=8, seed=seed),
            store=store,
            listeners=[self.monitor],
        )

    def vertex_buu(self, vertex: int) -> Buu:
        neighbors = list(self.graph.neighbors(vertex))
        keys = [color_key(vertex)] + [color_key(n) for n in neighbors]

        def compute(values: dict) -> dict:
            taken = {values.get(color_key(n)) for n in neighbors}
            color = 0
            while color in taken:
                color += 1
            return {color_key(vertex): color}

        return Buu(reads=keys, compute=compute, additive=False)

    def _vertex_stable(self, vertex: int) -> bool:
        """Proper and locally minimal: no neighbour shares the colour and
        no smaller colour is free."""
        store = self.simulator.store
        mine = store.get(color_key(vertex))
        taken = {store.get(color_key(n)) for n in self.graph.neighbors(vertex)}
        if mine in taken:
            return False
        smallest = 0
        while smallest in taken:
            smallest += 1
        return mine == smallest

    def is_correct(self) -> bool:
        return all(self._vertex_stable(v) for v in range(self.graph.num_vertices))

    def colors_used(self) -> int:
        store = self.simulator.store
        return len({store.get(color_key(v)) for v in range(self.graph.num_vertices)})

    def run(self, max_rounds: int = 50) -> ColoringResult:
        buus_total = 0
        converged_at = None
        rounds_used = 0
        for round_index in range(max_rounds):
            rounds_used = round_index + 1
            order = list(range(self.graph.num_vertices))
            self._rng.shuffle(order)
            self.simulator.run(self.vertex_buu(v) for v in order)
            buus_total += len(order)
            if self.is_correct():
                converged_at = buus_total
                break
        e2, e3 = self.monitor.cumulative_estimates()
        return ColoringResult(
            buus_to_converge=converged_at,
            converged=converged_at is not None,
            rounds=rounds_used,
            colors_used=self.colors_used(),
            estimated_2=e2,
            estimated_3=e3,
            sim_time=self.simulator.now,
        )
