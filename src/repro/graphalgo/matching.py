"""Asynchronous greedy graph matching (§2.2's "matching trial" BUU).

Each BUU attempts to match one edge: it reads both endpoints' match
state and, if both are free, writes each endpoint as matched to the
other.  Under weak isolation, two trials can race and leave an
*inconsistent* matching (u says "matched to v" while v says "matched to
w"); repair BUUs clear such dangling entries.  The algorithm converges
to a valid maximal matching eventually; chaos extends the trial/repair
churn — which the monitor quantifies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.config import RushMonConfig
from repro.core.monitor import RushMon
from repro.graph.random_graphs import UndirectedGraph
from repro.sim.buu import Buu
from repro.sim.scheduler import SimConfig, Simulator


def match_key(vertex: int) -> str:
    """Store key holding vertex's current mate (or None)."""
    return f"m{vertex}"


@dataclass
class MatchingResult:
    buus_to_converge: int | None
    converged: bool
    rounds: int
    matched_pairs: int
    estimated_2: float = 0.0
    estimated_3: float = 0.0
    sim_time: int = 0

    def cycles_per_time(self) -> tuple[float, float]:
        t = max(1, self.sim_time)
        return (self.estimated_2 / t, self.estimated_3 / t)


class AsyncMatching:
    """Greedy maximal matching via concurrent edge trials."""

    def __init__(self, graph: UndirectedGraph,
                 sim_config: SimConfig | None = None,
                 monitor_config: RushMonConfig | None = None,
                 seed: int = 0) -> None:
        self.graph = graph
        self.edges = graph.edges()
        self._rng = random.Random(seed)
        self.monitor = RushMon(
            monitor_config or RushMonConfig(sampling_rate=1, mob=False)
        )
        store = {match_key(v): None for v in range(graph.num_vertices)}
        self.simulator = Simulator(
            sim_config or SimConfig(num_workers=8, seed=seed),
            store=store,
            listeners=[self.monitor],
        )

    def trial_buu(self, u: int, v: int) -> Buu:
        """Try to match edge (u, v) if both endpoints look free."""
        keys = [match_key(u), match_key(v)]

        def compute(values: dict) -> dict:
            if values.get(match_key(u)) is None and (
                values.get(match_key(v)) is None
            ):
                return {match_key(u): v, match_key(v): u}
            return {}

        return Buu(reads=keys, compute=compute, additive=False)

    def repair_buu(self, v: int) -> Buu:
        """Clear v's match if it is dangling (partner points elsewhere)."""
        partner_keys = [match_key(u) for u in self.graph.neighbors(v)]
        keys = [match_key(v)] + partner_keys

        def compute(values: dict) -> dict:
            mate = values.get(match_key(v))
            if mate is None:
                return {}
            if values.get(match_key(mate)) != v:
                return {match_key(v): None}
            return {}

        return Buu(reads=keys, compute=compute, additive=False)

    # -- state checks ----------------------------------------------------------

    def _mate(self, v: int):
        return self.simulator.store.get(match_key(v))

    def is_consistent(self) -> bool:
        """Every matched vertex's partner points back."""
        for v in range(self.graph.num_vertices):
            mate = self._mate(v)
            if mate is not None and self._mate(mate) != v:
                return False
        return True

    def is_maximal(self) -> bool:
        """No edge has both endpoints free."""
        for u, v in self.edges:
            if self._mate(u) is None and self._mate(v) is None:
                return False
        return True

    def matched_pairs(self) -> int:
        return sum(
            1 for v in range(self.graph.num_vertices)
            if self._mate(v) is not None and self._mate(self._mate(v)) == v
            and v < self._mate(v)
        )

    def run(self, max_rounds: int = 60) -> MatchingResult:
        buus_total = 0
        converged_at = None
        rounds_used = 0
        for round_index in range(max_rounds):
            rounds_used = round_index + 1
            trials = list(self.edges)
            self._rng.shuffle(trials)
            batch = [self.trial_buu(u, v) for u, v in trials]
            batch += [self.repair_buu(v)
                      for v in range(self.graph.num_vertices)]
            self.simulator.run(batch)
            buus_total += len(batch)
            if self.is_consistent() and self.is_maximal():
                converged_at = buus_total
                break
        e2, e3 = self.monitor.cumulative_estimates()
        return MatchingResult(
            buus_to_converge=converged_at,
            converged=converged_at is not None,
            rounds=rounds_used,
            matched_pairs=self.matched_pairs(),
            estimated_2=e2,
            estimated_3=e3,
            sim_time=self.simulator.now,
        )
