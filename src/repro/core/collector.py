"""Record collectors: from operation streams to dependency-graph edges.

Three collectors, matching the paper's comparison (Fig 18):

- :class:`BaselineCollector` ("US", unsampled) — Algorithm 1.  Full
  per-item bookkeeping (``lastWrite`` + a ``readIDs`` set), every edge
  reported.
- :class:`EdgeSamplingCollector` ("ES") — the strawman of Section 4.2.
  Identical full bookkeeping, but each derived edge is kept with
  probability ``1/sr``.  The point the paper makes — and this class
  demonstrates — is that ES pays the same bookkeeping cost as US.
- :class:`DataCentricCollector` ("DCS") — Section 5: data items are
  sampled up front with probability ``p = 1/sr`` and only sampled items
  pay any bookkeeping.  Optionally uses memory-optimized bookkeeping
  (MOB, Algorithm 2): a single reservoir-sampled read slot replaces the
  ``readIDs`` set, and ``ww`` edges are discarded at the observed
  read-discard ratio to keep edge-type proportions calibrated (§5.2).

Collectors expose ``touches`` — the number of operations that actually
performed bookkeeping — as a machine-independent overhead proxy; the
benches additionally measure wall time.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.columnar import (
    HAVE_NUMPY,
    EdgeBatch,
    OpBatch,
    collect_columnar,
    sample_mask,
)
from repro.core.types import (
    BuuId,
    Edge,
    EdgeStats,
    EdgeType,
    Key,
    Operation,
    OpType,
)


@dataclass(slots=True)
class _FullItemState:
    """Per-item auxiliary state for Algorithm 1 (baseline / ES)."""

    last_write: BuuId | None = None
    read_ids: set[BuuId] = field(default_factory=set)


@dataclass(slots=True)
class _MobItemState:
    """Per-item auxiliary state for Algorithm 2 (MOB): a fixed-length
    read array (the paper sizes it by the expected ~2 reads between
    consecutive writes, §5.2) plus the running read count."""

    last_write: BuuId | None = None
    reads: list[BuuId] = field(default_factory=list)
    count: int = 0


#: Sentinel for "no previous key" in run-cached sample-membership tests.
_NO_KEY = object()


class Collector:
    """Base interface: feed operations in visibility order, get edges out."""

    def __init__(self) -> None:
        self.stats = EdgeStats()
        self.touches = 0
        self.ops_seen = 0

    def handle(self, op: Operation) -> list[Edge]:
        raise NotImplementedError

    def handle_all(self, ops: Iterable[Operation]) -> list[Edge]:
        edges: list[Edge] = []
        for op in ops:
            edges.extend(self.handle(op))
        return edges

    def handle_batch(self, ops: Iterable[Operation]) -> list[Edge]:
        """Batched :meth:`handle`: feed a sequence of operations, return
        their edges as one list.

        Also accepts a columnar :class:`~repro.core.columnar.OpBatch`
        (materialized back to per-op handling here; collectors with a
        vectorized kernel override that path).  Subclasses override this
        with fused loops (hoisted attribute lookups, one output buffer);
        every override is bit-identical to per-op handling — same edges,
        counters, and RNG draw order — as enforced by the
        batch-equivalence test suite.
        """
        if isinstance(ops, OpBatch):
            ops = ops.to_ops()
        edges: list[Edge] = []
        for op in ops:
            edges.extend(self.handle(op))
        return edges

    @property
    def sampling_probability(self) -> float:
        """Probability that any given edge survives collection (for the
        estimator).  1.0 for the unsampled baseline."""
        return 1.0

    def _emit(self, src: BuuId | None, dst: BuuId, kind: EdgeType, op: Operation,
              out: list[Edge]) -> None:
        """Append an edge unless it is degenerate (no source / self-edge)."""
        if src is None or src == dst:
            return
        self.stats.record(kind)
        out.append(Edge(src, dst, kind, op.key, op.seq))


class BaselineCollector(Collector):
    """Algorithm 1: exact, unsampled edge collection ("US")."""

    def __init__(self) -> None:
        super().__init__()
        self._items: dict[Key, _FullItemState] = {}

    def handle(self, op: Operation) -> list[Edge]:
        self.ops_seen += 1
        self.touches += 1
        state = self._items.get(op.key)
        if state is None:
            state = _FullItemState()
            self._items[op.key] = state
        out: list[Edge] = []
        if op.is_read():
            self._emit(state.last_write, op.buu, EdgeType.WR, op, out)
            state.read_ids.add(op.buu)
        else:
            if not state.read_ids:
                self._emit(state.last_write, op.buu, EdgeType.WW, op, out)
            else:
                for reader in state.read_ids:
                    self._emit(reader, op.buu, EdgeType.RW, op, out)
            state.read_ids.clear()
            state.last_write = op.buu
        return out

    def handle_batch(self, ops: Iterable[Operation]) -> list[Edge]:
        if isinstance(ops, OpBatch):
            ops = ops.to_ops()
        elif not isinstance(ops, (list, tuple)):
            ops = list(ops)
        n = len(ops)
        self.ops_seen += n
        self.touches += n
        out: list[Edge] = []
        append = out.append
        items = self._items
        stats = self.stats
        READ = OpType.READ
        WR, WW, RW = EdgeType.WR, EdgeType.WW, EdgeType.RW
        new = tuple.__new__
        for op in ops:
            _kind, buu, key, seq = op
            state = items.get(key)
            if state is None:
                state = _FullItemState()
                items[key] = state
            lw = state.last_write
            if _kind is READ:
                if lw is not None and lw != buu:
                    stats.wr += 1
                    append(new(Edge, (lw, buu, WR, key, seq)))
                state.read_ids.add(buu)
            else:
                read_ids = state.read_ids
                if not read_ids:
                    if lw is not None and lw != buu:
                        stats.ww += 1
                        append(new(Edge, (lw, buu, WW, key, seq)))
                else:
                    for reader in read_ids:
                        if reader != buu:
                            stats.rw += 1
                            append(new(Edge, (reader, buu, RW, key, seq)))
                    read_ids.clear()
                state.last_write = buu
        return out


class EdgeSamplingCollector(BaselineCollector):
    """Section 4.2's strawman: uniform per-edge sampling ("ES").

    Bookkeeping is *identical* to the baseline — the coin is tossed only
    once the (later) operation reveals the edge, by which time the earlier
    operation's information already had to be recorded.  ``touches``
    therefore equals the baseline's, which is the paper's argument for
    why ES cannot mitigate collector overhead.
    """

    def __init__(self, sampling_rate: int, rng: random.Random | None = None) -> None:
        super().__init__()
        if sampling_rate < 1:
            raise ValueError("sampling_rate must be >= 1")
        self.sampling_rate = sampling_rate
        self._rng = rng or random.Random(0)

    @property
    def sampling_probability(self) -> float:
        return 1.0 / self.sampling_rate

    def handle(self, op: Operation) -> list[Edge]:
        edges = super().handle(op)
        if self.sampling_rate == 1:
            return edges
        kept = [e for e in edges if self._rng.random() < self.sampling_probability]
        # stats recorded pre-sampling by the parent; rebuild post-sample
        # counts so downstream reports reflect what was actually emitted.
        for edge in edges:
            if edge not in kept:
                self._unrecord(edge.kind)
        return kept

    def handle_batch(self, ops: Iterable[Operation]) -> list[Edge]:
        if self.sampling_rate == 1:
            return BaselineCollector.handle_batch(self, ops)
        # Sampled ES must draw its coin per edge in per-op order to stay
        # bit-identical; ES is the paper's strawman, not a fast path.
        if isinstance(ops, OpBatch):
            ops = ops.to_ops()
        out: list[Edge] = []
        handle = self.handle
        for op in ops:
            out.extend(handle(op))
        return out

    def _unrecord(self, kind: EdgeType) -> None:
        if kind is EdgeType.WR:
            self.stats.wr -= 1
        elif kind is EdgeType.WW:
            self.stats.ww -= 1
        else:
            self.stats.rw -= 1


def _splitmix64(x: int) -> int:
    """SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation.

    The sampler must include items *independently* — Theorem 5.2's dd/ddd
    inverse weights assume distinct labels are sampled with probability
    ``p**2`` / ``p**3``.  A plain CRC is linear over GF(2) (its low bit
    across related keys is perfectly correlated, which empirically turns
    the sample into an exactly-half split and biases the estimator low),
    so every hash is passed through this non-linear finalizer.
    """
    mask = (1 << 64) - 1
    x &= mask
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & mask
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & mask
    return x ^ (x >> 31)


class ItemSampler:
    """Deterministic membership test for the chosen-item sample (§5.1).

    Each distinct key is included with probability ``p = 1/sr``,
    *independently* across keys (a requirement of the Theorem 5.2
    estimator — see :func:`_splitmix64`).  If the item universe is known
    up front, :meth:`materialize` precomputes the chosen set for O(1)
    membership; otherwise inclusion is decided per key by a salted stable
    hash.  ``reseed`` switches to a fresh independent sample (periodic
    re-sampling, §5.1 "reducing systematic variance").
    """

    def __init__(self, sampling_rate: int, seed: int = 0) -> None:
        if sampling_rate < 1:
            raise ValueError("sampling_rate must be >= 1")
        self.sampling_rate = sampling_rate
        self._salt = seed
        self._chosen: set[Key] | None = None
        self._universe: list[Key] | None = None
        # Memo of hash-mode decisions.  chosen() is pure in (key, salt,
        # sampling_rate), so caching never changes a decision; the cache
        # is dropped whenever any of those inputs changes.
        self._memo: dict[Key, bool] = {}

    @property
    def probability(self) -> float:
        return 1.0 / self.sampling_rate

    def materialize(self, universe: Iterable[Key]) -> None:
        self._universe = list(universe)
        self._resample_materialized()

    def _resample_materialized(self) -> None:
        assert self._universe is not None
        if self.sampling_rate == 1:
            self._chosen = set(self._universe)
            return
        # Independent Bernoulli(p) per item — NOT a fixed-size sample,
        # which would negatively correlate inclusions and bias E2/E3 low.
        rng = random.Random(self._salt)
        p = self.probability
        self._chosen = {key for key in self._universe if rng.random() < p}

    def reseed(self, new_salt: int) -> None:
        self._salt = new_salt
        self._memo.clear()
        if self._universe is not None:
            self._resample_materialized()

    def chosen(self, key: Key) -> bool:
        if self.sampling_rate == 1:
            return True
        if self._chosen is not None:
            return key in self._chosen
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        digest = zlib.crc32(repr(key).encode())
        mixed = _splitmix64(digest ^ (self._salt * 0x9E3779B97F4A7C15))
        decision = mixed % self.sampling_rate == 0
        self._memo[key] = decision
        return decision

    # -- checkpoint support ----------------------------------------------------

    def to_state(self) -> dict:
        """JSON-friendly snapshot; keys must be JSON-serializable."""
        return {
            "sampling_rate": self.sampling_rate,
            "salt": self._salt,
            "universe": self._universe,
            "chosen": None if self._chosen is None else sorted(
                self._chosen, key=repr
            ),
        }

    def load_state(self, state: dict) -> None:
        self.sampling_rate = state["sampling_rate"]
        self._salt = state["salt"]
        self._universe = state["universe"]
        chosen = state["chosen"]
        self._chosen = None if chosen is None else set(chosen)
        self._memo.clear()


class CollectorShard:
    """Mergeable per-shard bookkeeping for data-centric collection.

    One shard owns the Algorithm 1/2 per-item state (``lastWrite``,
    read set or MOB reservoir) for a disjoint subset of the key space,
    plus every counter derived from it.  The serial
    :class:`DataCentricCollector` drives exactly one shard; the
    concurrent :class:`~repro.core.concurrent.ShardedCollector` drives
    one lock-protected shard per key-hash partition.  Both paths run
    this code, so they cannot drift.

    All state combines associatively across disjoint key ranges —
    :class:`~repro.core.types.EdgeStats` and the scalar counters add,
    item tables union (a key lives in exactly one shard), and MOB
    reservoir slots are per-item so a union preserves them — which is
    what :meth:`merge` implements (the sharded analogue of combining
    Algorithm 2 state).
    """

    def __init__(self, mob: bool = True, mob_slots: int = 2,
                 rng: random.Random | None = None) -> None:
        if mob_slots < 1:
            raise ValueError("mob_slots must be >= 1")
        self.mob = mob
        self.mob_slots = mob_slots
        self._rng = rng or random.Random(0)
        self.stats = EdgeStats()
        self.touches = 0
        # ww-edge calibration (§5.2): ratio of reads MOB discarded.
        self.total_reads = 0
        self.discarded_reads = 0
        self._mob_items: dict[Key, _MobItemState] = {}
        self._full_items: dict[Key, _FullItemState] = {}

    @property
    def discard_ratio(self) -> float:
        """Fraction of observed reads whose rw edge MOB dropped."""
        if self.total_reads == 0:
            return 0.0
        return self.discarded_reads / self.total_reads

    @property
    def num_items(self) -> int:
        return len(self._mob_items) + len(self._full_items)

    def handle(self, op: Operation) -> list[Edge]:
        """Bookkeep one operation on an already-chosen item."""
        self.touches += 1
        return self._handle_mob(op) if self.mob else self._handle_full(op)

    def handle_batch(self, ops, out: list[Edge]) -> None:
        """Fused :meth:`handle` over a sequence of already-chosen
        operations, appending emitted edges to ``out``.

        Bit-identical to per-op handling: same RNG draw order (one
        reservoir/discard coin per op, in op order) and the ww discard
        coin reads the *live* discard ratio, not a batch-start snapshot.
        """
        self.touches += len(ops)
        if self.mob:
            self._handle_mob_batch(ops, out)
        else:
            self._handle_full_batch(ops, out)

    def clear_items(self) -> None:
        """Drop all per-item state (sample switches, §5.1)."""
        self._mob_items.clear()
        self._full_items.clear()

    def drop_item(self, key: Key) -> None:
        """Forget one item's bookkeeping (degrade-mode exclusion): the
        next operation on the key warms up from scratch, exactly as a
        sample switch would, instead of deriving edges from stale state."""
        self._mob_items.pop(key, None)
        self._full_items.pop(key, None)

    # -- checkpoint support ----------------------------------------------------

    def to_state(self) -> dict:
        """JSON-friendly snapshot of every counter, item table and the
        MOB reservoir RNG (so a restored shard's reservoir decisions —
        and hence its sampled counts — continue deterministically).
        Item keys and BUU ids must be JSON-serializable."""
        version, internal, gauss_next = self._rng.getstate()
        return {
            "mob": self.mob,
            "mob_slots": self.mob_slots,
            "stats": self.stats.as_dict(),
            "touches": self.touches,
            "total_reads": self.total_reads,
            "discarded_reads": self.discarded_reads,
            "rng": [version, list(internal), gauss_next],
            "mob_items": [
                [key, s.last_write, s.reads, s.count]
                for key, s in self._mob_items.items()
            ],
            "full_items": [
                [key, s.last_write, sorted(s.read_ids)]
                for key, s in self._full_items.items()
            ],
        }

    def load_state(self, state: dict) -> None:
        """Inverse of :meth:`to_state` (onto a fresh shard)."""
        self.mob = state["mob"]
        self.mob_slots = state["mob_slots"]
        stats = state["stats"]
        self.stats = EdgeStats(stats["wr"], stats["ww"], stats["rw"])
        self.touches = state["touches"]
        self.total_reads = state["total_reads"]
        self.discarded_reads = state["discarded_reads"]
        version, internal, gauss_next = state["rng"]
        self._rng.setstate((version, tuple(internal), gauss_next))
        self._mob_items = {
            key: _MobItemState(last_write, list(reads), count)
            for key, last_write, reads, count in state["mob_items"]
        }
        self._full_items = {
            key: _FullItemState(last_write, set(read_ids))
            for key, last_write, read_ids in state["full_items"]
        }

    def merge(self, other: "CollectorShard") -> None:
        """Absorb another shard covering a *disjoint* key range."""
        self.stats.add(other.stats)
        self.touches += other.touches
        self.total_reads += other.total_reads
        self.discarded_reads += other.discarded_reads
        self._mob_items.update(other._mob_items)
        self._full_items.update(other._full_items)

    def _emit(self, src: BuuId | None, dst: BuuId, kind: EdgeType,
              op: Operation, out: list[Edge]) -> None:
        if src is None or src == dst:
            return
        self.stats.record(kind)
        out.append(Edge(src, dst, kind, op.key, op.seq))

    # -- Algorithm 2 (MOB) -------------------------------------------------

    def _handle_mob(self, op: Operation) -> list[Edge]:
        state = self._mob_items.get(op.key)
        if state is None:
            state = _MobItemState()
            self._mob_items[op.key] = state
        out: list[Edge] = []
        if op.is_read():
            self.total_reads += 1
            state.count += 1
            # Reservoir sampling into the fixed-length array: the first
            # `slots` reads fill it; the i-th read thereafter replaces a
            # random slot with probability slots/i (Vitter's Algorithm R).
            if len(state.reads) < self.mob_slots:
                state.reads.append(op.buu)
            elif self._rng.random() < self.mob_slots / state.count:
                state.reads[self._rng.randrange(self.mob_slots)] = op.buu
            self._emit(state.last_write, op.buu, EdgeType.WR, op, out)
        else:
            if state.count == 0:
                # §5.2 calibration: rw edges were thinned, so thin ww
                # edges at the same observed discard ratio.
                if self._rng.random() >= self.discard_ratio:
                    self._emit(state.last_write, op.buu, EdgeType.WW, op, out)
            else:
                self.discarded_reads += state.count - len(state.reads)
                for reader in dict.fromkeys(state.reads):
                    self._emit(reader, op.buu, EdgeType.RW, op, out)
            state.reads = []
            state.count = 0
            state.last_write = op.buu
        return out

    def _handle_mob_batch(self, ops, out: list[Edge]) -> None:
        items = self._mob_items
        rng_random = self._rng.random
        rng_randrange = self._rng.randrange
        slots = self.mob_slots
        stats = self.stats
        append = out.append
        READ = OpType.READ
        WR, WW, RW = EdgeType.WR, EdgeType.WW, EdgeType.RW
        new = tuple.__new__
        # The running read totals feed the live discard ratio, so they are
        # carried in locals and written back once at the end of the batch —
        # the values observed at each write are identical to per-op handling.
        total_reads = self.total_reads
        discarded_reads = self.discarded_reads
        for op in ops:
            _kind, buu, key, seq = op
            state = items.get(key)
            if state is None:
                state = _MobItemState()
                items[key] = state
            lw = state.last_write
            if _kind is READ:
                total_reads += 1
                count = state.count + 1
                state.count = count
                reads = state.reads
                if len(reads) < slots:
                    reads.append(buu)
                elif rng_random() < slots / count:
                    reads[rng_randrange(slots)] = buu
                if lw is not None and lw != buu:
                    stats.wr += 1
                    append(new(Edge, (lw, buu, WR, key, seq)))
            else:
                count = state.count
                if count == 0:
                    ratio = discarded_reads / total_reads if total_reads else 0.0
                    if rng_random() >= ratio:
                        if lw is not None and lw != buu:
                            stats.ww += 1
                            append(new(Edge, (lw, buu, WW, key, seq)))
                else:
                    reads = state.reads
                    discarded_reads += count - len(reads)
                    for reader in dict.fromkeys(reads):
                        if reader != buu:
                            stats.rw += 1
                            append(new(Edge, (reader, buu, RW, key, seq)))
                    state.reads = []
                    state.count = 0
                state.last_write = buu
        self.total_reads = total_reads
        self.discarded_reads = discarded_reads

    # -- full readIDs bookkeeping (DCS without MOB) --------------------------

    def _handle_full(self, op: Operation) -> list[Edge]:
        state = self._full_items.get(op.key)
        if state is None:
            state = _FullItemState()
            self._full_items[op.key] = state
        out: list[Edge] = []
        if op.is_read():
            self.total_reads += 1
            self._emit(state.last_write, op.buu, EdgeType.WR, op, out)
            state.read_ids.add(op.buu)
        else:
            if not state.read_ids:
                self._emit(state.last_write, op.buu, EdgeType.WW, op, out)
            else:
                for reader in state.read_ids:
                    self._emit(reader, op.buu, EdgeType.RW, op, out)
            state.read_ids.clear()
            state.last_write = op.buu
        return out

    def _handle_full_batch(self, ops, out: list[Edge]) -> None:
        items = self._full_items
        stats = self.stats
        append = out.append
        READ = OpType.READ
        WR, WW, RW = EdgeType.WR, EdgeType.WW, EdgeType.RW
        new = tuple.__new__
        total_reads = self.total_reads
        for op in ops:
            _kind, buu, key, seq = op
            state = items.get(key)
            if state is None:
                state = _FullItemState()
                items[key] = state
            lw = state.last_write
            if _kind is READ:
                total_reads += 1
                if lw is not None and lw != buu:
                    stats.wr += 1
                    append(new(Edge, (lw, buu, WR, key, seq)))
                state.read_ids.add(buu)
            else:
                read_ids = state.read_ids
                if not read_ids:
                    if lw is not None and lw != buu:
                        stats.ww += 1
                        append(new(Edge, (lw, buu, WW, key, seq)))
                else:
                    for reader in read_ids:
                        if reader != buu:
                            stats.rw += 1
                            append(new(Edge, (reader, buu, RW, key, seq)))
                    read_ids.clear()
                state.last_write = buu
        self.total_reads = total_reads


class DataCentricCollector(Collector):
    """Section 5's collector: data-centric sampling + optional MOB.

    Parameters
    ----------
    sampling_rate:
        The paper's ``sr``; each data item is chosen with ``p = 1/sr``.
    mob:
        Use memory-optimized bookkeeping (Algorithm 2's fixed-length
        reservoir) instead of a full ``readIDs`` set.  Fig 19-22 compare
        both.
    mob_slots:
        Length of the fixed read array.  §5.2 derives that ~2 reads sit
        between consecutive writes in a random r/w mix, so 2 is the
        default; 1 reproduces the single-slot pseudo-code of Algorithm 2
        verbatim (and loses the cycles whose surviving read belongs to
        the writer itself).
    items:
        Optional known item universe for an exact up-front sample.
    resample_interval:
        If set, re-sample the chosen items every this many operations
        (§5.1, "reducing systematic variance").  Item states reset on each
        switch; the empty ``lastWrite`` acts as the warm-up phase.
    """

    def __init__(
        self,
        sampling_rate: int = 1,
        mob: bool = True,
        items: Iterable[Key] | None = None,
        seed: int = 0,
        resample_interval: int | None = None,
        mob_slots: int = 2,
    ) -> None:
        # The bookkeeping state lives in a single CollectorShard (the
        # counters the Collector base would set are properties here), so
        # the serial path and the N-shard concurrent path share one
        # implementation.
        self.ops_seen = 0
        self.shard = CollectorShard(mob, mob_slots, random.Random(seed ^ 0x5EED))
        self.sampler = ItemSampler(sampling_rate, seed)
        if items is not None:
            self.sampler.materialize(items)
        self._resample_interval = resample_interval
        self._resample_epoch = 0
        # Per-key-id DCS decision cache for the columnar path (see
        # :func:`repro.core.columnar.sample_mask`).
        self._mask_cache: dict = {}

    @property
    def mob(self) -> bool:
        return self.shard.mob

    @property
    def mob_slots(self) -> int:
        return self.shard.mob_slots

    @property
    def stats(self) -> EdgeStats:
        return self.shard.stats

    @property
    def touches(self) -> int:
        return self.shard.touches

    @property
    def total_reads(self) -> int:
        return self.shard.total_reads

    @property
    def discarded_reads(self) -> int:
        return self.shard.discarded_reads

    @property
    def sampling_rate(self) -> int:
        return self.sampler.sampling_rate

    @property
    def sampling_probability(self) -> float:
        return self.sampler.probability

    @property
    def discard_ratio(self) -> float:
        """Fraction of observed reads whose rw edge MOB dropped."""
        return self.shard.discard_ratio

    def handle(self, op: Operation) -> list[Edge]:
        self.ops_seen += 1
        edges: list[Edge] = []
        if self.sampler.chosen(op.key):
            edges = self.shard.handle(op)
        if self._resample_interval and self.ops_seen % self._resample_interval == 0:
            self._switch_sample()
        return edges

    def handle_batch(self, ops: Iterable[Operation]) -> list[Edge]:
        """Batched ingest (the DCS fast path).

        Membership in the chosen-item sample is tested once per item
        *run* (consecutive ops on the same key share one lookup), the
        chosen subsequence feeds the shard's fused loop in one call, and
        edges land in a single output buffer.  Bit-identical to per-op
        :meth:`handle`; when periodic re-sampling is configured the
        batch falls back to the per-op path so sample switches trigger
        at exactly the same operation indexes.

        A columnar :class:`~repro.core.columnar.OpBatch` takes the
        vectorized kernel (:func:`~repro.core.columnar.collect_columnar`)
        and returns an :class:`~repro.core.columnar.EdgeBatch`; without
        numpy (or under periodic re-sampling) it degrades to the per-op
        path via ``to_ops()`` — same results, list-of-``Edge`` output.
        """
        if isinstance(ops, OpBatch):
            if not HAVE_NUMPY or self._resample_interval:
                return self.handle_batch(ops.to_ops())
            return self._handle_columnar(ops)
        if not isinstance(ops, (list, tuple)):
            ops = list(ops)
        if self._resample_interval:
            out: list[Edge] = []
            handle = self.handle
            for op in ops:
                out.extend(handle(op))
            return out
        self.ops_seen += len(ops)
        out = []
        sampler = self.sampler
        if sampler.sampling_rate == 1:
            self.shard.handle_batch(ops, out)
            return out
        chosen = sampler.chosen
        picked: list[Operation] = []
        append = picked.append
        last_key: object = _NO_KEY
        last_choice = False
        for op in ops:
            key = op.key
            if key != last_key:
                last_key = key
                last_choice = chosen(key)
            if last_choice:
                append(op)
        if picked:
            self.shard.handle_batch(picked, out)
        return out

    def _handle_columnar(self, batch: OpBatch) -> EdgeBatch:
        """The vectorized DCS path: one boolean sample mask per batch,
        then the grouped edge-derivation kernel on the shard's state.
        Bit-identical to per-op handling (the columnar differential
        suite compares edges, counters and RNG end state)."""
        self.ops_seen += len(batch)
        mask = sample_mask(batch, self.sampler, self._mask_cache)
        return collect_columnar(self.shard, batch, mask)

    def _switch_sample(self) -> None:
        self._resample_epoch += 1
        self.sampler.reseed(self._resample_epoch * 0x9E3779B1 + 1)
        self.shard.clear_items()

    # -- checkpoint support ----------------------------------------------------

    def to_state(self) -> dict:
        """JSON-friendly snapshot of the whole collector — op counter,
        sampler membership, per-item bookkeeping and the MOB reservoir
        RNG — so a restored collector continues *deterministically*
        (the cluster's respawn-and-replay depends on this)."""
        return {
            "ops_seen": self.ops_seen,
            "resample_epoch": self._resample_epoch,
            "sampler": self.sampler.to_state(),
            "shard": self.shard.to_state(),
        }

    def load_state(self, state: dict) -> None:
        """Inverse of :meth:`to_state` (onto an identically configured
        fresh collector)."""
        self.ops_seen = state["ops_seen"]
        self._resample_epoch = state["resample_epoch"]
        self.sampler.load_state(state["sampler"])
        self.shard.load_state(state["shard"])
