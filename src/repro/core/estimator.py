"""Unbiased cycle-count estimators (Theorem 5.2).

Data-centric sampling keeps *all* edges on a chosen item, so edges are not
independent: a 2-cycle whose two edges share a label survives sampling
with probability ``p`` (one coin), while one with distinct labels needs
two coins (``p**2``).  The estimator therefore inverse-weights each label
class separately:

    E2 = c_ss / p + c_dd / p**2
    E3 = c_sss / p + c_ssd / p**2 + c_ddd / p**3

For conventional independent edge sampling every edge is its own coin, so
a k-cycle survives with probability ``p**k`` regardless of labels.
"""

from __future__ import annotations

from repro.core.types import CycleCounts


def estimate_two_cycles(counts: CycleCounts, probability: float) -> float:
    """Unbiased estimate of the number of 2-cycles from sampled counts."""
    _check_probability(probability)
    return counts.ss / probability + counts.dd / probability**2


def estimate_three_cycles(counts: CycleCounts, probability: float) -> float:
    """Unbiased estimate of the number of 3-cycles from sampled counts."""
    _check_probability(probability)
    return (
        counts.sss / probability
        + counts.ssd / probability**2
        + counts.ddd / probability**3
    )


def estimate_edge_sampled_two_cycles(counts: CycleCounts, probability: float) -> float:
    """Estimator for *independent* edge sampling: every edge is a coin."""
    _check_probability(probability)
    return counts.two_cycles / probability**2


def estimate_edge_sampled_three_cycles(counts: CycleCounts, probability: float) -> float:
    """Independent-edge-sampling estimator for 3-cycles (1/p**3 per cycle)."""
    _check_probability(probability)
    return counts.three_cycles / probability**3


def _check_probability(probability: float) -> None:
    if not 0.0 < probability <= 1.0:
        raise ValueError(f"sampling probability must be in (0, 1], got {probability}")
