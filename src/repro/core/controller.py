"""Closed-loop consistency tuning from anomaly reports (Fig 1 / §8).

The paper's vision (Fig 1) is a system that *adjusts* its configuration
from the monitor's real-time reports; §8 lists automatic control as the
first future direction.  :class:`AnomalyController` is the simplest
useful realisation: a ladder of staleness bounds with a hysteresis band
on the windowed anomaly rate.

- rate above ``upper`` → step one rung tighter (smaller bound);
- rate below ``lower`` → step one rung looser (more asynchrony,
  recovering throughput);
- in between → hold.

Hysteresis (``lower < upper``) prevents oscillation; a per-decision
cooldown lets the system settle between moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.types import AnomalyReport

#: Default ladder, tightest first.  ``None`` is fully asynchronous.
DEFAULT_LADDER: tuple[int | None, ...] = (1, 2, 3, 5, 10, None)


@dataclass
class ControllerDecision:
    """One control step: the observed rate and the action taken."""

    rate: float
    bound: int | None
    action: str  # "tighten" | "relax" | "hold"


@dataclass
class AnomalyController:
    """Hysteresis controller over a staleness-bound ladder.

    Parameters
    ----------
    upper, lower:
        Anomaly-rate band (anomalies per unit simulated time).  Above
        ``upper`` the controller tightens; below ``lower`` it relaxes.
    ladder:
        Candidate staleness bounds, tightest first.
    start_position:
        Index into the ladder to start from (default: loosest).
    cooldown:
        Minimum number of observations between two consecutive moves.
    """

    upper: float
    lower: float
    ladder: tuple[int | None, ...] = DEFAULT_LADDER
    start_position: int | None = None
    cooldown: int = 0
    history: list[ControllerDecision] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.ladder:
            raise ValueError("ladder must not be empty")
        if self.lower > self.upper:
            raise ValueError("lower must be <= upper")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self._position = (
            len(self.ladder) - 1 if self.start_position is None
            else self.start_position
        )
        if not 0 <= self._position < len(self.ladder):
            raise ValueError("start_position out of range")
        self._since_move = self.cooldown  # allow an immediate first move

    @property
    def bound(self) -> int | None:
        """The staleness bound currently recommended."""
        return self.ladder[self._position]

    def observe(self, report: AnomalyReport) -> ControllerDecision:
        """Feed one monitoring window; returns the decision made."""
        window = max(1, report.window_end - report.window_start)
        return self.observe_rate(report.anomalies / window)

    def observe_rate(self, rate: float) -> ControllerDecision:
        action = "hold"
        self._since_move += 1
        if self._since_move > self.cooldown:
            if rate > self.upper and self._position > 0:
                self._position -= 1
                action = "tighten"
                self._since_move = 0
            elif rate < self.lower and self._position < len(self.ladder) - 1:
                self._position += 1
                action = "relax"
                self._since_move = 0
        decision = ControllerDecision(rate=rate, bound=self.bound,
                                      action=action)
        self.history.append(decision)
        return decision
