"""The unified monitor API: one listener protocol, one report surface.

Before this module existed, the repo had three monitor classes with
three slightly different duck-typed surfaces: :class:`RushMon` (serial),
:class:`RushMonService` (concurrent) and :class:`OfflineAnomalyMonitor`
(exact baseline).  Drivers fed them via ``getattr`` probing and callers
had to know which flavour they held (``report()`` vs ``flush()`` vs
``exact_counts()``).  This module fixes the seam:

- :class:`MonitorListener` — the *ingestion* protocol every monitor (and
  trace recorder) implements: BUU lifecycle plus the operation stream in
  storage visibility order.  The sim drivers
  (:class:`~repro.sim.scheduler.Simulator`,
  :class:`~repro.sim.scheduler.ThreadedWorkloadDriver`) and
  :meth:`~repro.sim.traces.Trace.replay` type their listeners against
  it.
- :class:`AnomalyMonitor` — the *reporting* protocol: windowed
  ``close_window()`` → :class:`~repro.core.types.AnomalyReport`, the
  ``reports`` history, ``latest_report()`` and lifetime
  ``cumulative_estimates()``.  ``RushMon.report()`` and
  ``RushMonService.flush()`` remain as thin documented aliases of
  ``close_window()`` for backward compatibility.

Both protocols are ``runtime_checkable`` so conformance is testable
(``isinstance(monitor, MonitorListener)``), and the shared conformance
suite in ``tests/test_api_conformance.py`` runs every monitor through an
identical lifecycle via these methods only.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

from repro.core.types import AnomalyReport, BuuId, Operation

__all__ = ["MonitorListener", "AnomalyMonitor"]


@runtime_checkable
class MonitorListener(Protocol):
    """Ingestion surface: BUU lifecycle + visibility-ordered operations.

    Contract (mirrors the paper's §2.1 collector assumptions):

    - ``begin_buu`` precedes every operation of that BUU; ``commit_buu``
      follows its last write.  Times are logical clocks (simulator steps
      or journal tickets); implementations may ignore them but must
      accept them.
    - ``on_operation`` delivers each read/write in per-key storage
      visibility order.  ``on_operations`` is the batched convenience
      form with identical semantics.
    """

    def begin_buu(self, buu: BuuId, start_time: int | None = None) -> None:
        """A BUU started at ``start_time`` (logical clock)."""
        ...

    def commit_buu(self, buu: BuuId, commit_time: int | None = None) -> None:
        """A BUU committed at ``commit_time`` (its effects are visible)."""
        ...

    def on_operation(self, op: Operation) -> None:
        """Observe one read/write in its storage visibility order."""
        ...

    def on_operations(self, ops: Iterable[Operation]) -> None:
        """Observe a batch of operations, in order."""
        ...


@runtime_checkable
class AnomalyMonitor(MonitorListener, Protocol):
    """Reporting surface shared by all anomaly monitors.

    - ``close_window()`` closes the current monitoring window and
      returns its :class:`~repro.core.types.AnomalyReport` (``None`` if
      the implementation had nothing to report).  The canonical verb;
      ``RushMon.report()`` and ``RushMonService.flush()`` alias it.
    - ``reports`` is the ordered history of closed windows.
    - ``latest_report()`` is the most recently closed window (an atomic
      snapshot on the concurrent service).
    - ``cumulative_estimates()`` is the lifetime unbiased ``(E2, E3)``
      estimate (exact counts for the offline baseline, where ``p = 1``).
    """

    reports: list[AnomalyReport]

    def close_window(self, now: int | None = None) -> AnomalyReport | None:
        """Close the current monitoring window; returns its report."""
        ...

    def latest_report(self) -> AnomalyReport | None:
        """The most recently closed window's report (``None`` if none)."""
        ...

    def cumulative_estimates(self) -> tuple[float, float]:
        """Unbiased ``(E2, E3)`` over everything observed so far."""
        ...
