"""Core value types shared across RushMon components.

The vocabulary follows the paper (Sections 2 and 4): a *BUU* (basic update
unit) is a lightweight transaction identified by an integer id; every BUU
issues a stream of read/write :class:`Operation` objects against named data
items; the collector derives :class:`Edge` objects (``wr``, ``ww``, ``rw``)
from that stream.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, Iterable, NamedTuple

#: Type alias for data-item keys.  Any hashable value works; the simulator
#: and workloads use ints and short strings.
Key = Hashable

#: Type alias for BUU identifiers.
BuuId = int


class OpType(enum.Enum):
    """The two storage primitives a BUU may issue."""

    READ = "r"
    WRITE = "w"


class EdgeType(enum.Enum):
    """Dependency-graph edge categories (Section 2.1).

    - ``WR`` (read dependency): the destination read a value the source wrote.
    - ``WW`` (write dependency): the destination overwrote the source's write.
    - ``RW`` (anti-dependency): the destination overwrote a value the source
      read.
    """

    WR = "wr"
    WW = "ww"
    RW = "rw"


class Operation(NamedTuple):
    """A single read or write applied to shared storage.

    ``seq`` is the logical time at which the operation became visible to
    other workers (the simulator's global step counter).  Operations on the
    same data item are fully ordered by ``seq``, matching the paper's
    assumption in Section 2.1.

    A :class:`~typing.NamedTuple` rather than a frozen dataclass: the
    monitor creates one per event on the hot path, and tuple allocation
    skips both ``__init__`` dispatch and ``object.__setattr__``.
    """

    op: OpType
    buu: BuuId
    key: Key
    seq: int = 0

    def is_read(self) -> bool:
        return self.op is OpType.READ

    def is_write(self) -> bool:
        return self.op is OpType.WRITE


class Edge(NamedTuple):
    """A labelled dependency-graph edge.

    ``label`` is the data item the conflict occurred on.  The estimator
    (Theorem 5.2) classifies cycles by comparing edge labels, so every edge
    carries one.  ``seq`` is the visibility time of the *later* of the two
    conflicting operations, i.e. when the collector learned the edge exists.

    Like :class:`Operation`, a NamedTuple for cheap hot-path allocation;
    use ``edge._replace(seq=...)`` where ``dataclasses.replace`` was used.
    """

    src: BuuId
    dst: BuuId
    kind: EdgeType
    label: Key
    seq: int = 0

    def endpoints(self) -> tuple[BuuId, BuuId]:
        return (self.src, self.dst)


@dataclass(slots=True)
class BuuInfo:
    """Lifetime bookkeeping for one BUU, used by vertex pruning (§5.3).

    ``start`` is the BUU's start time; ``commit`` is when it finished and
    its effects became visible.  ``commit`` is ``None`` while the BUU is
    alive (the paper treats alive commit times as infinity).
    """

    buu: BuuId
    start: int
    commit: int | None = None

    @property
    def alive(self) -> bool:
        return self.commit is None

    def commit_time(self) -> float:
        """Commit time with the paper's infinity-while-alive convention."""
        return float("inf") if self.commit is None else float(self.commit)


@dataclass(slots=True)
class CycleCounts:
    """Aggregate 2-/3-cycle counts broken down by label class (§5.1).

    A 2-cycle's two edge labels are either the *same* (``ss``) or
    *distinct* (``dd``).  A 3-cycle's three labels are all-same (``sss``),
    exactly-two-same (``ssd``) or all-distinct (``ddd``).  These classes
    are what the unbiased estimator needs.
    """

    ss: int = 0
    dd: int = 0
    sss: int = 0
    ssd: int = 0
    ddd: int = 0

    @property
    def two_cycles(self) -> int:
        """Raw (uncalibrated) number of observed 2-cycles."""
        return self.ss + self.dd

    @property
    def three_cycles(self) -> int:
        """Raw (uncalibrated) number of observed 3-cycles."""
        return self.sss + self.ssd + self.ddd

    def add(self, other: "CycleCounts") -> None:
        self.ss += other.ss
        self.dd += other.dd
        self.sss += other.sss
        self.ssd += other.ssd
        self.ddd += other.ddd

    def copy(self) -> "CycleCounts":
        return CycleCounts(self.ss, self.dd, self.sss, self.ssd, self.ddd)


@dataclass(slots=True)
class EdgeStats:
    """Per-category edge counters reported alongside cycle counts (Fig 23)."""

    wr: int = 0
    ww: int = 0
    rw: int = 0

    @property
    def total(self) -> int:
        return self.wr + self.ww + self.rw

    def record(self, kind: EdgeType) -> None:
        if kind is EdgeType.WR:
            self.wr += 1
        elif kind is EdgeType.WW:
            self.ww += 1
        else:
            self.rw += 1

    def add(self, other: "EdgeStats") -> None:
        self.wr += other.wr
        self.ww += other.ww
        self.rw += other.rw

    def copy(self) -> "EdgeStats":
        return EdgeStats(self.wr, self.ww, self.rw)

    def as_dict(self) -> dict[str, int]:
        return {"wr": self.wr, "ww": self.ww, "rw": self.rw}


@dataclass
class AnomalyReport:
    """One monitoring-window report produced by :class:`~repro.core.monitor.RushMon`.

    ``estimated_2`` / ``estimated_3`` are the unbiased estimates of the
    number of new 2-/3-cycles in the window; ``raw`` holds the sampled
    counts they were derived from; ``edges`` the per-category edge counts.
    """

    window_start: int
    window_end: int
    estimated_2: float
    estimated_3: float
    raw: CycleCounts = field(default_factory=CycleCounts)
    edges: EdgeStats = field(default_factory=EdgeStats)
    operations: int = 0
    #: Raw (sampled, uncalibrated) 2-cycle counts by anomaly pattern —
    #: lost_update / unrepeatable_read / read_skew / write_skew / ...
    patterns: dict = field(default_factory=dict)
    #: Health of the monitor that produced this report: ``"ok"`` in
    #: normal operation, ``"degraded"`` when the concurrent service's
    #: detection supervisor (or the cluster's worker supervisor) has
    #: tripped its circuit breaker (the counts may then lag or
    #: undercount — see repro.core.concurrent.service / repro.cluster).
    health: str = "ok"
    #: Cluster only: worker shard indices whose counts are *missing*
    #: from this window because the shard's circuit breaker tripped
    #: (``health == "degraded"``).  Empty for healthy windows and for
    #: the single-process monitors.
    degraded_shards: tuple = ()

    @property
    def anomalies(self) -> float:
        """Combined anomaly level: total estimated short cycles."""
        return self.estimated_2 + self.estimated_3


class KeyInterner:
    """Bijective mapping from data-item keys to dense small ints.

    The batched fast path interns string keys at the workload boundary so
    every downstream structure — collector item dicts, the sharded
    journal, :class:`~repro.core.detector.LiveGraph` adjacency — hashes
    and compares machine ints instead of strings, and shard bucketing
    degenerates to ``id & mask`` instead of a CRC of ``repr(key)``.

    Ids are assigned in first-seen order, so interning a recorded
    workload is deterministic.  The mapping only grows; ``key_of``
    recovers the original key for reports and debugging.
    """

    __slots__ = ("_ids", "_keys")

    def __init__(self) -> None:
        self._ids: dict[Key, int] = {}
        self._keys: list[Key] = []

    def intern(self, key: Key) -> int:
        """Return the dense id for ``key``, assigning one if new."""
        kid = self._ids.get(key)
        if kid is None:
            kid = len(self._keys)
            self._ids[key] = kid
            self._keys.append(key)
        return kid

    def intern_many(self, keys: Iterable[Key]) -> list[int]:
        intern = self.intern
        return [intern(k) for k in keys]

    def key_of(self, kid: int) -> Key:
        """Inverse of :meth:`intern` (raises IndexError for unknown ids)."""
        return self._keys[kid]

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: Key) -> bool:
        return key in self._ids

    def to_state(self) -> list[Key]:
        """Checkpointable form: the id -> key table."""
        return list(self._keys)

    def load_state(self, keys: list[Key]) -> None:
        self._keys = list(keys)
        self._ids = {k: i for i, k in enumerate(self._keys)}


class BuuInterner(KeyInterner):
    """A :class:`KeyInterner` for BUU identifiers.

    Workloads usually already use dense int BUU ids; this exists for
    sources (recorded traces, external logs) whose transaction ids are
    strings or sparse ints and must be densified before the batched path.
    """

    __slots__ = ()


def intern_operations(ops: Iterable[Operation], keys: KeyInterner,
                      buus: BuuInterner | None = None) -> list[Operation]:
    """Rewrite an operation stream onto interned int keys.

    Applies :meth:`KeyInterner.intern` to every ``op.key`` (and, when a
    ``buus`` interner is given, every ``op.buu``).  Call this once at the
    workload boundary; everything downstream then runs on dense ints.
    """
    key_intern = keys.intern
    if buus is None:
        return [op._replace(key=key_intern(op.key)) for op in ops]
    buu_intern = buus.intern
    return [
        op._replace(key=key_intern(op.key), buu=buu_intern(op.buu))
        for op in ops
    ]
