"""Vertex pruning for the cycle detector (Section 5.3).

Two strategies plus their combination:

- :class:`EctPruning` — *effective commit time* pruning.  For a committed
  vertex ``v``, ``ect(v)`` is the latest commit time over every vertex
  with a path to ``v`` (including ``v``).  If ``ect(v) < t_active`` (the
  earliest start among alive vertices), no path from any alive vertex to
  ``v`` can ever exist, so ``v`` can never be on a future cycle and is
  removed.  ``ect`` is computed exactly via SCC condensation + topological
  propagation, so pruning is always safe (never removes a vertex that a
  future cycle could touch).
- :class:`DistancePruning` — a vertex on a future k-cycle must be within
  k-1 hops *from* some alive vertex (the cycle's closing edge lands on an
  alive vertex).  A multi-source BFS from the alive set to depth k-1
  identifies the keepers; every other committed vertex is removed.
- :class:`CombinedPruning` — ECT then distance, the paper's "Both".

All pruners refuse to act when no vertex is alive (there is no defined
``t_active``), and never remove vertices whose lifecycle was never
reported — conservatism over aggressiveness.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.core.types import BuuId
from repro.core.detector import LiveGraph


class Pruner:
    """Base interface.  ``on_commit`` is the cheap per-commit fast path;
    ``prune`` is the periodic full pass.  Both return vertices removed.

    Every pruner accumulates ``removed_total`` so observability
    (:mod:`repro.obs`) can report pruning effectiveness per strategy;
    :meth:`removed_by_strategy` returns the breakdown.
    """

    #: Strategy label used in the observability breakdown; subclasses
    #: with a meaningful identity override it.
    strategy: str | None = None

    def __init__(self) -> None:
        self.removed_total = 0

    def on_commit(self, graph: LiveGraph, buu: BuuId) -> int:
        return 0

    def prune(self, graph: LiveGraph, now: int) -> int:
        return 0

    def removed_by_strategy(self) -> dict[str, int]:
        """Lifetime vertices removed, keyed by strategy name."""
        if self.strategy is None:
            return {}
        return {self.strategy: self.removed_total}


class NoPruning(Pruner):
    """Keep everything (the paper's "Nothing" configuration)."""


class EctPruning(Pruner):
    """Effective-commit-time pruning (§5.3, Fig 6)."""

    strategy = "ect"

    # The paper additionally computes ect incrementally at each commit
    # ("when a BUU finishes ... compute ect_v").  At commit time
    # ect_v >= ct_v = now >= t_active, so the commit-time check can never
    # prune; its value in the paper is pre-computing ect for the periodic
    # pass.  This reproduction folds that maintenance into the periodic
    # pass's exact SCC computation, which is both simpler and provably
    # safe, so ``on_commit`` is inherited as a no-op.

    def prune(self, graph: LiveGraph, now: int) -> int:
        alive = graph.alive
        if not alive:
            return 0
        t_active = graph.active_time(default=now)
        present = graph.present
        commits = graph.commits
        out = graph.out
        # ect(v) = max commit time over vertices that can reach v, so
        # ect(v) < t_active  iff  v is unreachable from every vertex whose
        # own commit time is >= t_active (alive / lifecycle-unknown
        # vertices count as +inf).  One forward reachability pass from
        # those "recent" seeds therefore decides prunability exactly —
        # no SCC condensation or max propagation needed.  ``_exact_ect``
        # is kept as the reference implementation; the equivalence is
        # enforced by a differential test.
        seeds = [v for v in present if v not in commits or commits[v] >= t_active]
        visited = set(seeds)
        stack = seeds
        while stack:
            v = stack.pop()
            succs = out.get(v)
            if succs:
                for w in succs:
                    if w not in visited and w in present:
                        visited.add(w)
                        stack.append(w)
        remove = graph.remove_vertex
        removed = 0
        for v in [u for u in present if u not in visited]:
            if v in alive or v not in commits:
                continue
            remove(v)
            removed += 1
        self.removed_total += removed
        return removed

    def _exact_ect(self, graph: LiveGraph) -> dict[BuuId, float]:
        """ect(v) = max commit time over all vertices that can reach v.

        Computed by condensing the present subgraph into SCCs and
        propagating maxima in topological order.
        """
        comp_of, components, order = _tarjan_scc(graph)
        commits = graph.commits
        inc = graph.inc
        inf = float("inf")
        comp_value: list[float] = []
        append_value = comp_value.append
        for members in components:
            value = float(max(commits.get(v, inf) for v in members))
            append_value(value)
        # ``order`` lists component ids in reverse topological order
        # (successors before predecessors), so iterate reversed for
        # predecessors-first propagation.
        ect: dict[BuuId, float] = {}
        for comp_id in reversed(order):
            best = comp_value[comp_id]
            members = components[comp_id]
            for v in members:
                preds = inc.get(v)
                if not preds:
                    continue
                for u in preds:  # predecessors feed into v
                    pred_comp = comp_of.get(u)
                    if pred_comp is not None and pred_comp != comp_id:
                        value = comp_value[pred_comp]
                        if value > best:
                            best = value
            comp_value[comp_id] = best
            for v in members:
                ect[v] = best
        return ect


class DistancePruning(Pruner):
    """Distance-based pruning: keep only vertices within ``hops`` of an
    alive vertex (forward direction), where ``hops = max_cycle_len - 1``."""

    strategy = "distance"

    def __init__(self, max_cycle_length: int = 3) -> None:
        super().__init__()
        if max_cycle_length < 2:
            raise ValueError("max_cycle_length must be >= 2")
        self.hops = max_cycle_length - 1

    def prune(self, graph: LiveGraph, now: int) -> int:
        if not graph.alive:
            return 0
        reached: set[BuuId] = set(v for v in graph.alive if v in graph.present)
        frontier = deque((v, 0) for v in reached)
        while frontier:
            v, depth = frontier.popleft()
            if depth == self.hops:
                continue
            for w in graph.out.get(v, ()):
                if w not in reached:
                    reached.add(w)
                    frontier.append((w, depth + 1))
        # Alive vertices not yet in the graph (no edges) are trivially kept.
        removed = 0
        for v in list(graph.present):
            if v in reached or v in graph.alive or v not in graph.commits:
                continue
            graph.remove_vertex(v)
            removed += 1
        self.removed_total += removed
        return removed


class CombinedPruning(Pruner):
    """ECT pruning followed by distance pruning (the paper's "Both")."""

    def __init__(self, max_cycle_length: int = 3) -> None:
        super().__init__()
        self.ect = EctPruning()
        self.distance = DistancePruning(max_cycle_length)

    def on_commit(self, graph: LiveGraph, buu: BuuId) -> int:
        return self.ect.on_commit(graph, buu)

    def prune(self, graph: LiveGraph, now: int) -> int:
        removed = self.ect.prune(graph, now) + self.distance.prune(graph, now)
        self.removed_total += removed
        return removed

    def removed_by_strategy(self) -> dict[str, int]:
        return {
            "ect": self.ect.removed_total,
            "distance": self.distance.removed_total,
        }


def make_pruner(name: str, max_cycle_length: int = 3) -> Pruner:
    """Factory used by :class:`~repro.core.config.RushMonConfig`."""
    table = {
        "none": NoPruning,
        "ect": EctPruning,
        "distance": lambda: DistancePruning(max_cycle_length),
        "both": lambda: CombinedPruning(max_cycle_length),
    }
    if name not in table:
        raise ValueError(f"unknown pruning strategy {name!r}; options: {sorted(table)}")
    return table[name]()


def _tarjan_scc(
    graph: LiveGraph,
) -> tuple[dict[BuuId, int], list[list[BuuId]], list[int]]:
    """Iterative Tarjan SCC over the present subgraph.

    Returns (vertex -> component id, components, component ids in the
    order Tarjan emits them, which is reverse topological order).
    """
    index: dict[BuuId, int] = {}
    low: dict[BuuId, int] = {}
    on_stack: set[BuuId] = set()
    stack: list[BuuId] = []
    comp_of: dict[BuuId, int] = {}
    components: list[list[BuuId]] = []
    order: list[int] = []
    counter = 0

    present = graph.present
    out = graph.out
    no_succ: tuple[BuuId, ...] = ()
    for root in present:
        if root in index:
            continue
        call_stack: list[tuple[BuuId, Iterator[BuuId]]] = []
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        call_stack.append((root, iter(out.get(root, no_succ))))
        while call_stack:
            v, it = call_stack[-1]
            advanced = False
            for w in it:
                if w not in present:
                    continue
                if w not in index:
                    index[w] = low[w] = counter
                    counter += 1
                    stack.append(w)
                    on_stack.add(w)
                    call_stack.append((w, iter(out.get(w, no_succ))))
                    advanced = True
                    break
                if w in on_stack:
                    if index[w] < low[v]:
                        low[v] = index[w]
            if advanced:
                continue
            call_stack.pop()
            if call_stack:
                parent = call_stack[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index[v]:
                members: list[BuuId] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp_of[w] = len(components)
                    members.append(w)
                    if w == v:
                        break
                order.append(len(components))
                components.append(members)
    return comp_of, components, order
