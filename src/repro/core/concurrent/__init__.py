"""Concurrent RushMon: sharded thread-safe collection + background detection.

The serial monitor (:mod:`repro.core.monitor`) assumes a single caller.
This package makes the monitor safe under real threads:

- :class:`ShardedCollector` — key-hash shards, one lock and one
  :class:`~repro.core.collector.CollectorShard` each, so writers on
  disjoint keys never contend; an optional ticket-ordered journal
  records the serialized execution.
- :class:`RushMonService` — runs the pruned cycle detector on a
  *supervised* background thread (restart with exponential backoff, a
  circuit breaker into an explicit DEGRADED state) at a configurable
  window interval and publishes each window's
  :class:`~repro.core.types.AnomalyReport` via an atomic snapshot, with
  graceful ``start()``/``stop()`` drain semantics and
  checkpoint/restore crash recovery.
- :class:`JournalBackpressure` — raised to producers when the bounded
  journal stays full past the block timeout (``overflow="block"``).
"""

from repro.core.concurrent.service import RushMonService
from repro.core.concurrent.sharded import JournalBackpressure, ShardedCollector

__all__ = ["JournalBackpressure", "RushMonService", "ShardedCollector"]
