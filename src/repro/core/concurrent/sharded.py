"""Sharded, thread-safe data-centric collection.

:class:`ShardedCollector` partitions the key space into ``num_shards``
key-hash shards, each guarded by its own lock and holding its own
:class:`~repro.core.collector.CollectorShard` bookkeeping.  Writer
threads operating on keys that hash to different shards never contend;
threads on the same shard serialize only the per-item bookkeeping, which
is exactly the per-key serialization the paper's collector assumes
("operations on the same data item are fully ordered", §2.1).

Correctness rests on two facts:

- Algorithm 1/2 bookkeeping is *per item*, and an item lives in exactly
  one shard, so the edges a sharded run derives are identical to the
  edges a serial run derives from any operation stream with the same
  per-key order.
- Per-shard state combines associatively
  (:meth:`~repro.core.collector.CollectorShard.merge`), so aggregate
  statistics equal the serial collector's.

The optional *journal* records every event with a globally unique,
monotonically increasing ticket, assigned while the shard lock is held.
:meth:`drain_journal` briefly acquires **all** shard locks, swaps the
journal buffers out and merges them by ticket: because tickets are only
issued under a shard lock, holding every lock guarantees the drained
batch is a complete prefix of the ticket sequence — the serialized trace
of the concurrent execution.  The background detection thread of
:class:`~repro.core.concurrent.service.RushMonService` consumes this
journal; replaying it through the offline baseline must (and, per the
differential tests, does) reproduce the service's counts exactly.

Bounded journal and backpressure
--------------------------------

An unbounded journal grows without limit whenever the detector falls
behind the producers, so ``journal_capacity`` bounds it (the budget is
split evenly across shards).  When a shard's buffer is full, the
``overflow`` policy decides what an arriving event experiences:

``"block"``
    The producer waits (on the shard's condition variable, released by
    the next drain) up to ``block_timeout`` seconds, then raises
    :class:`JournalBackpressure`.  Nothing is ever lost; producers feel
    the detector's lag directly.
``"shed"``
    The event is dropped *whole* — no bookkeeping, no journal entry, no
    acknowledgement — and counted in the shed counters, so downstream
    estimates remain honest lower bounds over exactly the acknowledged
    prefix (the ``sr=1`` differential invariant is preserved for every
    acknowledged event).
``"degrade"``
    The capacity becomes a soft limit: the event is journaled anyway,
    and the collector adaptively *raises its effective sampling rate*
    (halving the kept-item fraction via a secondary per-item hash
    filter) so passes get cheaper and the journal drains faster.  Each
    shift — up under pressure, back down once a drain comes up light —
    is counted, and :attr:`sampling_probability` always reflects the
    effective probability so estimates stay calibrated going forward.

Periodic re-sampling (§5.1) is intentionally unsupported here: a sample
switch must clear every shard atomically, which would need the same
stop-the-world drain on the hot path.  The serial
:class:`~repro.core.collector.DataCentricCollector` retains it.
"""

from __future__ import annotations

import heapq
import itertools
import random
import threading
import time
import zlib
from typing import Any, Iterable

from repro.core.collector import CollectorShard, ItemSampler, _splitmix64
from repro.core.frontier import key_partition
from repro.core.types import Edge, EdgeStats, Key, Operation, OpType
from repro.obs.metrics import MetricsRegistry

#: Journal event kinds.
EV_OP = "op"
EV_BEGIN = "begin"
EV_COMMIT = "commit"

#: Valid journal-overflow policies.
OVERFLOW_POLICIES = ("block", "shed", "degrade")

#: Salt for the degrade-mode secondary item filter (must differ from the
#: sampler's salt so the two inclusions are independent).
_DEGRADE_SALT = 0xD1E6_7A5E


class JournalBackpressure(RuntimeError):
    """Raised to a producer when the journal stayed full past the
    ``block_timeout`` under the ``"block"`` overflow policy."""


#: Shared empty edge list for journaled non-sampled operations (consumers
#: only iterate extras, so one immutable tuple serves every such event).
_NO_EDGES: tuple = ()


class ShardJournal:
    """Struct-of-arrays journal buffer for one shard.

    Instead of a list of event tuples, four parallel arrays (tickets,
    kinds, payloads, extras) — batch appends become four C-level
    ``list.extend`` calls instead of N tuple allocations + appends, and
    the drain's swap is four pointer exchanges.  Events materialize back
    into ``(ticket, kind, payload, extra)`` tuples only at drain time,
    outside the shard locks.
    """

    __slots__ = ("tickets", "kinds", "payloads", "extras")

    def __init__(self) -> None:
        self.tickets: list[int] = []
        self.kinds: list[str] = []
        self.payloads: list = []
        self.extras: list = []

    def __len__(self) -> int:
        return len(self.tickets)

    def append(self, ticket: int, kind: str, payload, extra) -> None:
        self.tickets.append(ticket)
        self.kinds.append(kind)
        self.payloads.append(payload)
        self.extras.append(extra)

    def swap_arrays(self) -> tuple[list, list, list, list]:
        """Detach and return the four arrays (caller holds the shard
        lock; zipping back into event tuples happens outside it)."""
        arrays = (self.tickets, self.kinds, self.payloads, self.extras)
        self.tickets = []
        self.kinds = []
        self.payloads = []
        self.extras = []
        return arrays

    def prepend(self, events: list[tuple]) -> None:
        """Splice already-drained event tuples back at the front."""
        self.tickets[:0] = [e[0] for e in events]
        self.kinds[:0] = [e[1] for e in events]
        self.payloads[:0] = [e[2] for e in events]
        self.extras[:0] = [e[3] for e in events]

    def events(self) -> list[tuple]:
        """Materialize the buffered events as tuples (checkpointing)."""
        return list(zip(self.tickets, self.kinds, self.payloads,
                        self.extras))


class _Shard:
    """One lock-protected partition: bookkeeping state + journal buffer.

    ``journal_highwater`` is the deepest this shard's journal has ever
    grown between drains — a plain int updated under the shard lock, so
    the observability export (max over shards) needs no extra locking.
    ``not_full`` is signalled by every drain so blocked producers wake.
    """

    __slots__ = ("lock", "not_full", "state", "journal", "ops_seen",
                 "journal_highwater", "shed", "shed_sampled",
                 "blocked_seconds", "block_timeouts")

    def __init__(self, state: CollectorShard) -> None:
        self.lock = threading.Lock()
        self.not_full = threading.Condition(self.lock)
        self.state = state
        self.journal = ShardJournal()
        self.ops_seen = 0
        self.journal_highwater = 0
        self.shed = 0
        self.shed_sampled = 0
        self.blocked_seconds = 0.0
        self.block_timeouts = 0


def _encode_event(event: tuple) -> list:
    """Checkpoint encoding of one journal event (JSON-friendly)."""
    ticket, kind, payload, extra = event
    if kind == EV_OP:
        op: Operation = payload
        return [ticket, kind, [op.op.value, op.buu, op.key, op.seq],
                [[e.src, e.dst, e.kind.value, e.label, e.seq]
                 for e in extra]]
    return [ticket, kind, payload, extra]


def _decode_event(record: list) -> tuple:
    """Inverse of :func:`_encode_event`."""
    ticket, kind, payload, extra = record
    if kind == EV_OP:
        op = Operation(OpType(payload[0]), payload[1], payload[2],
                       payload[3])
        edges = [Edge(e[0], e[1], _EDGE_TYPES[e[2]], e[3], e[4])
                 for e in extra]
        return (ticket, kind, op, edges)
    return (ticket, kind, payload, extra)


# Local EdgeType lookup (avoids importing the enum call in a tight loop).
from repro.core.types import EdgeType as _EdgeType  # noqa: E402

_EDGE_TYPES = {member.value: member for member in _EdgeType}


class ShardedCollector:
    """Thread-safe data-centric collector over key-hash shards.

    Parameters mirror :class:`~repro.core.collector.DataCentricCollector`
    (``sampling_rate``, ``mob``, ``mob_slots``, ``items``, ``seed``) plus:

    num_shards:
        Number of key-hash partitions (= maximum write parallelism).
    journal:
        Record a ticket-ordered event journal for a background detector
        (see module docstring).  Off by default: a standalone sharded
        collector returns edges to the caller and keeps no history.
    journal_capacity:
        Total buffered-event budget across all shard journals (split
        evenly; each shard gets at least 1).  ``None`` (default) keeps
        the journal unbounded — the pre-backpressure behaviour.
    overflow:
        What a producer experiences when its shard's journal is full:
        ``"block"`` / ``"shed"`` / ``"degrade"`` (module docstring).
    block_timeout:
        Seconds a ``"block"``-policy producer waits before
        :class:`JournalBackpressure` is raised.
    faults:
        Optional :class:`~repro.testing.faults.FaultInjector`; arms the
        ``collector.handle`` and ``journal.drain`` injection points.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  When set,
        the collector exports per-thread counters (ops handled, sampled
        hits, edges emitted, cumulative shard-lock wait time) and
        callback gauges (journal depth + high-water mark + fill ratio,
        hit rate, shed totals, degrade state).  Lock wait is the only
        instrumentation with hot-path cost (two ``perf_counter`` calls
        per op) and is skipped when no registry is attached.
    """

    def __init__(
        self,
        sampling_rate: int = 1,
        mob: bool = True,
        items: Iterable[Key] | None = None,
        seed: int = 0,
        mob_slots: int = 2,
        num_shards: int = 8,
        journal: bool = False,
        journal_capacity: int | None = None,
        overflow: str = "block",
        block_timeout: float = 5.0,
        faults: Any | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if journal_capacity is not None and journal_capacity < 1:
            raise ValueError("journal_capacity must be >= 1 or None")
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"overflow must be one of {OVERFLOW_POLICIES}, "
                f"got {overflow!r}"
            )
        if block_timeout <= 0:
            raise ValueError("block_timeout must be > 0")
        self.num_shards = num_shards
        # Power-of-two shard counts bucket interned int keys with a mask.
        self._shard_mask = (
            num_shards - 1 if num_shards & (num_shards - 1) == 0 else None
        )
        # The sampler is shared: chosen() is a pure function of
        # (key, salt) — or a frozen materialized set — so concurrent
        # reads need no lock.
        self.sampler = ItemSampler(sampling_rate, seed)
        if items is not None:
            self.sampler.materialize(items)
        self._shards = [
            _Shard(CollectorShard(mob, mob_slots,
                                  random.Random(seed ^ 0x5EED ^ (i * 0x9E37))))
            for i in range(num_shards)
        ]
        self._ticket = itertools.count()
        self._journal = journal
        self.journal_capacity = journal_capacity
        self.overflow = overflow
        self.block_timeout = block_timeout
        self._shard_capacity = (
            None if journal_capacity is None
            else max(1, journal_capacity // num_shards)
        )
        self._faults = faults
        # Degrade-policy state: the effective per-item keep fraction is
        # 1 / 2**shift on top of the base sample.  Guarded by its own
        # lock (escalation is rare; the hot path reads the plain int).
        self._degrade_lock = threading.Lock()
        self._degrade_shift = 0
        self._degrade_shifts_total = 0
        self._shifted_this_epoch = False
        self.metrics = metrics
        if metrics is not None:
            self._m_ops = metrics.counter(
                "rushmon_collector_ops_total",
                help="operations the sharded collector has handled",
            )
            self._m_sampled = metrics.counter(
                "rushmon_collector_sampled_ops_total",
                help="operations that hit a sampled item (paid bookkeeping)",
            )
            self._m_edges = metrics.counter(
                "rushmon_collector_edges_total",
                help="dependency edges emitted by the sharded collector",
            )
            self._m_lifecycle = metrics.counter(
                "rushmon_collector_lifecycle_events_total",
                help="BUU begin/commit events journaled",
            )
            self._m_lock_wait = metrics.counter(
                "rushmon_collector_lock_wait_seconds_total",
                help="cumulative time producer threads spent waiting on "
                     "shard locks",
            )
            metrics.gauge_fn(
                "rushmon_collector_journal_depth",
                lambda: float(sum(len(s.journal) for s in self._shards)),
                help="events currently buffered across all shard journals",
            )
            metrics.gauge_fn(
                "rushmon_collector_journal_depth_highwater",
                lambda: float(
                    max(s.journal_highwater for s in self._shards)
                ),
                help="deepest any shard journal has grown between drains",
            )
            metrics.gauge_fn(
                "rushmon_collector_journal_fill_ratio",
                self._fill_ratio,
                help="buffered events / journal capacity (0 when unbounded)"
                     " — the journal-depth watermark",
            )
            metrics.gauge_fn(
                "rushmon_collector_journal_shed_total",
                lambda: float(self.shed_events),
                help="events dropped whole by the 'shed' overflow policy "
                     "(never acknowledged, so estimates stay honest)",
            )
            metrics.gauge_fn(
                "rushmon_collector_journal_shed_sampled_total",
                lambda: float(self.shed_sampled_events),
                help="shed events that were on sampled items (would have "
                     "contributed bookkeeping)",
            )
            metrics.gauge_fn(
                "rushmon_collector_backpressure_wait_seconds_total",
                lambda: float(
                    sum(s.blocked_seconds for s in self._shards)
                ),
                help="cumulative time producers spent blocked on a full "
                     "journal ('block' overflow policy)",
            )
            metrics.gauge_fn(
                "rushmon_collector_backpressure_timeouts_total",
                lambda: float(sum(s.block_timeouts for s in self._shards)),
                help="producer waits that exceeded block_timeout and "
                     "raised JournalBackpressure",
            )
            metrics.gauge_fn(
                "rushmon_collector_effective_sampling_rate",
                lambda: float(
                    self.sampler.sampling_rate * (1 << self._degrade_shift)
                ),
                help="configured sr times the degrade-policy multiplier",
            )
            metrics.gauge_fn(
                "rushmon_collector_degrade_shifts_total",
                lambda: float(self._degrade_shifts_total),
                help="times the degrade policy changed the effective "
                     "sampling rate (up or down)",
            )
            metrics.gauge_fn(
                "rushmon_collector_sampled_hit_rate",
                self._hit_rate,
                help="fraction of handled operations on sampled items",
            )
        else:
            self._m_ops = None
            self._m_sampled = None
            self._m_edges = None
            self._m_lifecycle = None
            self._m_lock_wait = None

    def _hit_rate(self) -> float:
        seen = self.ops_seen
        return (self.touches / seen) if seen else 0.0

    @property
    def journal_depth(self) -> int:
        """Events currently buffered across every shard journal —
        the instantaneous backlog the next detection pass will drain."""
        return sum(len(s.journal) for s in self._shards)

    def _fill_ratio(self) -> float:
        if self.journal_capacity is None:
            return 0.0
        return self.journal_depth / self.journal_capacity

    # -- partitioning --------------------------------------------------------

    def shard_index(self, key: Key) -> int:
        """The shard owning ``key``.

        Delegates to :func:`repro.core.frontier.key_partition` — the one
        process-stable placement digest, shared with the cluster router
        so "which shard owns this key" has exactly one answer whether
        the shard lives behind a lock in this process or behind a socket
        in a worker process.  (Checkpoints also rely on the stability:
        item bookkeeping is stored per shard, and a restore in a new
        process must look keys up in the same buckets.)
        """
        return key_partition(key, self.num_shards, self._shard_mask)

    # -- sampling (base sample x degrade filter) ------------------------------

    def _chosen(self, key: Key) -> bool:
        if not self.sampler.chosen(key):
            return False
        shift = self._degrade_shift
        if shift == 0:
            return True
        # Process-stable for the same reason as shard_index: the degrade
        # filter's membership must survive checkpoint/restore.
        digest = zlib.crc32(repr(key).encode())
        mixed = _splitmix64(digest ^ _DEGRADE_SALT)
        return mixed % (1 << shift) == 0

    # -- overflow handling (caller holds the shard lock) -----------------------

    def _resolve_overflow(self, shard: _Shard, sampled_hint: bool) -> bool:
        """Apply the overflow policy to one arriving event whose shard
        journal is full.  Returns True if the caller may proceed to
        bookkeep + journal the event, False if the event was shed."""
        if self.overflow == "shed":
            shard.shed += 1
            if sampled_hint:
                shard.shed_sampled += 1
            return False
        if self.overflow == "degrade":
            self._escalate_degrade()
            return True  # soft limit: journal it anyway
        # "block": wait for a drain to make room, bounded by the timeout.
        assert self._shard_capacity is not None
        start = time.monotonic()
        deadline = start + self.block_timeout
        while len(shard.journal) >= self._shard_capacity:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                shard.blocked_seconds += time.monotonic() - start
                shard.block_timeouts += 1
                raise JournalBackpressure(
                    f"shard journal stayed full ({self._shard_capacity} "
                    f"events) for {self.block_timeout}s — the detection "
                    f"thread is not draining; raise journal_capacity, "
                    f"lower detect_interval, or use the 'shed'/'degrade' "
                    f"overflow policy"
                )
            shard.not_full.wait(remaining)
        shard.blocked_seconds += time.monotonic() - start
        return True

    def _escalate_degrade(self) -> None:
        """Halve the kept-item fraction (at most once per drain epoch,
        so a burst of overflowing producers escalates one step)."""
        with self._degrade_lock:
            if self._shifted_this_epoch:
                return
            self._shifted_this_epoch = True
            self._degrade_shift += 1
            self._degrade_shifts_total += 1

    def _maybe_recover_degrade(self, drained: int) -> None:
        """Called by drains: step the shift back once load fell to under
        half the capacity (and reopen the once-per-epoch escalation)."""
        with self._degrade_lock:
            self._shifted_this_epoch = False
            if (
                self._degrade_shift > 0
                and self.journal_capacity is not None
                and drained < self.journal_capacity // 2
            ):
                self._degrade_shift -= 1
                self._degrade_shifts_total += 1

    # -- ingestion (any thread) ----------------------------------------------

    def handle(self, op: Operation) -> list[Edge]:
        """Bookkeep one operation under its shard's lock; returns the
        derived edges (empty if the item was not sampled, or if the
        event was shed by the overflow policy — a shed operation is
        *not acknowledged*: no bookkeeping, no journal entry)."""
        if self._faults is not None:
            self._apply_fault("collector.handle")
        shard = self._shards[self.shard_index(op.key)]
        lock_wait = self._m_lock_wait
        if lock_wait is not None:
            waited = time.perf_counter()
            shard.lock.acquire()
            lock_wait.inc(time.perf_counter() - waited)
        else:
            shard.lock.acquire()
        try:
            chosen = self._chosen(op.key)
            if (
                self._journal
                and self._shard_capacity is not None
                and len(shard.journal) >= self._shard_capacity
                and not self._resolve_overflow(shard, chosen)
            ):
                return []
            shard.ops_seen += 1
            if chosen:
                edges = shard.state.handle(op)
            else:
                edges = []
                if self._degrade_shift:
                    # The degrade filter may have excluded an item that
                    # was being tracked; drop its state so a later
                    # re-inclusion warms up cleanly instead of deriving
                    # edges from a stale lastWrite.
                    shard.state.drop_item(op.key)
            if self._journal:
                shard.journal.append(next(self._ticket), EV_OP, op, edges)
                depth = len(shard.journal)
                if depth > shard.journal_highwater:
                    shard.journal_highwater = depth
        finally:
            shard.lock.release()
        # Counter cells are per-thread, so these need no lock and can
        # run after the shard lock is released.
        if self._m_ops is not None:
            self._m_ops.inc()
            if chosen:
                self._m_sampled.inc()  # type: ignore[union-attr]
            if edges:
                self._m_edges.inc(len(edges))  # type: ignore[union-attr]
        return edges

    def handle_all(self, ops: Iterable[Operation]) -> list[Edge]:
        edges: list[Edge] = []
        for op in ops:
            edges.extend(self.handle(op))
        return edges

    def handle_batch(self, ops: Iterable[Operation]) -> list[Edge]:
        """Batched ingest: group the operations by owning shard and
        acquire each shard's lock **once per batch** instead of once per
        operation.

        Returned edges are grouped by shard (a key lives in exactly one
        shard, so per-key order — the only order bookkeeping depends on
        — is preserved); aggregate counts, journal contents and RNG
        draws are identical to per-op :meth:`handle`.  Journal tickets
        for a shard's group are drawn under that shard's lock, so the
        drain's complete-prefix guarantee holds unchanged.

        Falls back to the per-op path when fault injection, a bounded
        journal, or degrade mode is active: those features make
        per-event decisions (injection points, overflow policy, item
        drops) that must not be coarsened — in particular, a ``"block"``
        producer must never wait for a drain while sitting on a shard
        lock for a whole batch.
        """
        if not isinstance(ops, (list, tuple)):
            ops = list(ops)
        if (
            self._faults is not None
            or self._shard_capacity is not None
            or self._degrade_shift
        ):
            out: list[Edge] = []
            handle = self.handle
            for op in ops:
                out.extend(handle(op))
            return out
        num = self.num_shards
        if num == 1:
            groups: list = [ops]
        else:
            sidx = self.shard_index
            groups = [[] for _ in range(num)]
            for op in ops:
                groups[sidx(op.key)].append(op)
        out = []
        journaling = self._journal
        all_chosen = self.sampler.sampling_rate == 1
        chosen = self.sampler.chosen
        ticket = self._ticket
        lock_wait = self._m_lock_wait
        sampled = 0
        for i, group in enumerate(groups):
            if not group:
                continue
            shard = self._shards[i]
            if lock_wait is not None:
                waited = time.perf_counter()
                shard.lock.acquire()
                lock_wait.inc(time.perf_counter() - waited)
            else:
                shard.lock.acquire()
            try:
                shard.ops_seen += len(group)
                state = shard.state
                if journaling:
                    # The journal needs each op's own edge list, so the
                    # shard state is fed per op; the batch still saves
                    # the lock churn and appends the journal arrays in
                    # four C-level extends.
                    handle_one = state.handle
                    extras = []
                    ex_append = extras.append
                    for op in group:
                        if all_chosen or chosen(op.key):
                            edges = handle_one(op)
                            sampled += 1
                            if edges:
                                out.extend(edges)
                            ex_append(edges)
                        else:
                            ex_append(_NO_EDGES)
                    j = shard.journal
                    j.tickets.extend(itertools.islice(ticket, len(group)))
                    j.kinds.extend([EV_OP] * len(group))
                    j.payloads.extend(group)
                    j.extras.extend(extras)
                    depth = len(j)
                    if depth > shard.journal_highwater:
                        shard.journal_highwater = depth
                else:
                    if all_chosen:
                        picked = group
                    else:
                        picked = [op for op in group if chosen(op.key)]
                    sampled += len(picked)
                    if picked:
                        state.handle_batch(picked, out)
            finally:
                shard.lock.release()
        if self._m_ops is not None:
            self._m_ops.inc(len(ops))
            if sampled:
                self._m_sampled.inc(sampled)  # type: ignore[union-attr]
            if out:
                self._m_edges.inc(len(out))  # type: ignore[union-attr]
        return out

    def record_lifecycle(self, kind: str, buu: int, time: int) -> None:
        """Journal a BUU ``begin``/``commit`` event (routed by BUU hash so
        the ticket is assigned under some shard lock).  Subject to the
        same capacity policy as operations; a shed lifecycle event is
        dropped whole."""
        if not self._journal:
            return
        shard = self._shards[_splitmix64(buu) % self.num_shards]
        with shard.lock:
            if (
                self._shard_capacity is not None
                and len(shard.journal) >= self._shard_capacity
                and not self._resolve_overflow(shard, False)
            ):
                return
            shard.journal.append(next(self._ticket), kind, buu, time)
            depth = len(shard.journal)
            if depth > shard.journal_highwater:
                shard.journal_highwater = depth
        if self._m_lifecycle is not None:
            self._m_lifecycle.inc()

    # -- journal draining (detection thread) ----------------------------------

    def drain_journal(self) -> list[tuple]:
        """Swap out all shard journals and return their events merged by
        ticket — a complete prefix of the serialized execution.

        Tickets are only issued while holding a shard lock, so acquiring
        every shard lock (briefly — the swap is a pointer exchange)
        guarantees no ticket issued so far is still in flight.  Blocked
        producers are woken (the swap empties every buffer).
        """
        fault = None
        if self._faults is not None:
            fault = self._apply_fault("journal.drain",
                                      defer=("partial_drain",))
        for shard in self._shards:
            shard.lock.acquire()
        try:
            # The swap is four pointer exchanges per shard; event tuples
            # materialize below, after every lock is released.
            arrays = [shard.journal.swap_arrays() for shard in self._shards]
            for shard in self._shards:
                shard.not_full.notify_all()
        finally:
            for shard in reversed(self._shards):
                shard.lock.release()
        batches = [list(zip(*a)) for a in arrays if a[0]]
        # Each batch is ticket-sorted (appended in issue order under the
        # lock); tickets are unique, so the merge is a total order.
        merged = list(heapq.merge(*batches))
        self._maybe_recover_degrade(len(merged))
        if fault is not None and fault.kind == "partial_drain":
            keep = int(len(merged) * fault.fraction)
            self.requeue(merged[keep:])
            merged = merged[:keep]
        return merged

    def requeue(self, events: list[tuple]) -> None:
        """Put already-drained events (an ascending-ticket suffix) back
        at the *front* of the journal, to be re-drained next pass.

        Used by the service's crash-safe detection pass (events a failed
        pass did not consume) and by partial drains.  Correctness: every
        ticket in ``events`` was issued before any event currently
        buffered, so prepending preserves per-shard ticket order.
        Capacity is intentionally ignored — losing drained events to
        backpressure would break the no-acknowledged-loss guarantee.
        """
        if not events:
            return
        shard = self._shards[0]
        with shard.lock:
            shard.journal.prepend(events)
            depth = len(shard.journal)
            if depth > shard.journal_highwater:
                shard.journal_highwater = depth

    def _apply_fault(self, point: str, defer: tuple = ()):
        """Fire an injection point; applies exception/delay kinds
        inline, returns the fault for kinds the call site handles."""
        fault = self._faults.fire(point)
        if fault is None or fault.kind in defer:
            return fault
        if fault.kind == "delay":
            time.sleep(fault.delay)
            return None
        raise fault.exc_factory()

    # -- checkpoint support ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """A consistent, JSON-friendly snapshot of every shard's
        bookkeeping *and* the not-yet-drained journal events, taken
        under all shard locks (so it is a prefix-consistent cut of the
        ticket order).  Keys must be JSON-serializable (str/int — what
        every workload in this repository uses)."""
        for shard in self._shards:
            shard.lock.acquire()
        try:
            # Burning one ticket yields a value strictly greater than
            # every ticket issued so far — the restart point.
            next_ticket = next(self._ticket)
            shards = [
                {
                    "ops_seen": shard.ops_seen,
                    "journal_highwater": shard.journal_highwater,
                    "shed": shard.shed,
                    "shed_sampled": shard.shed_sampled,
                    "state": shard.state.to_state(),
                    "journal": [
                        _encode_event(e) for e in shard.journal.events()
                    ],
                }
                for shard in self._shards
            ]
        finally:
            for shard in reversed(self._shards):
                shard.lock.release()
        with self._degrade_lock:
            shift = self._degrade_shift
            shifts_total = self._degrade_shifts_total
        return {
            "num_shards": self.num_shards,
            "next_ticket": next_ticket,
            "sampler": self.sampler.to_state(),
            "degrade_shift": shift,
            "degrade_shifts_total": shifts_total,
            "shards": shards,
        }

    def restore_state(self, state: dict) -> None:
        """Load a :meth:`snapshot_state` payload into this (freshly
        constructed, identically sharded) collector."""
        if state["num_shards"] != self.num_shards:
            raise ValueError(
                f"checkpoint has {state['num_shards']} shards, "
                f"collector has {self.num_shards}"
            )
        self._ticket = itertools.count(state["next_ticket"])
        self.sampler.load_state(state["sampler"])
        with self._degrade_lock:
            self._degrade_shift = state["degrade_shift"]
            self._degrade_shifts_total = state["degrade_shifts_total"]
        for shard, payload in zip(self._shards, state["shards"]):
            with shard.lock:
                shard.ops_seen = payload["ops_seen"]
                shard.journal_highwater = payload["journal_highwater"]
                shard.shed = payload["shed"]
                shard.shed_sampled = payload["shed_sampled"]
                shard.state.load_state(payload["state"])
                journal = ShardJournal()
                for record in payload["journal"]:
                    journal.append(*_decode_event(record))
                shard.journal = journal

    # -- aggregate views ------------------------------------------------------

    @property
    def sampling_rate(self) -> int:
        return self.sampler.sampling_rate

    @property
    def sampling_probability(self) -> float:
        """Effective per-item inclusion probability: the base sample
        times the degrade-policy multiplier (1 until a shift happens)."""
        return self.sampler.probability / (1 << self._degrade_shift)

    @property
    def degrade_shift(self) -> int:
        """Current degrade level (kept fraction is 1/2**shift)."""
        return self._degrade_shift

    @property
    def degrade_shifts_total(self) -> int:
        """Lifetime number of effective-sampling-rate switches."""
        return self._degrade_shifts_total

    @property
    def shed_events(self) -> int:
        """Events dropped whole by the 'shed' overflow policy."""
        return sum(shard.shed for shard in self._shards)

    @property
    def shed_sampled_events(self) -> int:
        return sum(shard.shed_sampled for shard in self._shards)

    @property
    def ops_seen(self) -> int:
        return sum(shard.ops_seen for shard in self._shards)

    @property
    def stats(self) -> EdgeStats:
        total = EdgeStats()
        for shard in self._shards:
            total.add(shard.state.stats)
        return total

    @property
    def touches(self) -> int:
        return sum(shard.state.touches for shard in self._shards)

    @property
    def total_reads(self) -> int:
        return sum(shard.state.total_reads for shard in self._shards)

    @property
    def discarded_reads(self) -> int:
        return sum(shard.state.discarded_reads for shard in self._shards)

    @property
    def discard_ratio(self) -> float:
        reads = self.total_reads
        if reads == 0:
            return 0.0
        return self.discarded_reads / reads

    def merged(self) -> CollectorShard:
        """A fresh :class:`CollectorShard` holding the associative merge
        of every shard's state (counters add, item tables union)."""
        combined = CollectorShard()
        for shard in self._shards:
            combined.merge(shard.state)
        return combined
