"""Sharded, thread-safe data-centric collection.

:class:`ShardedCollector` partitions the key space into ``num_shards``
key-hash shards, each guarded by its own lock and holding its own
:class:`~repro.core.collector.CollectorShard` bookkeeping.  Writer
threads operating on keys that hash to different shards never contend;
threads on the same shard serialize only the per-item bookkeeping, which
is exactly the per-key serialization the paper's collector assumes
("operations on the same data item are fully ordered", §2.1).

Correctness rests on two facts:

- Algorithm 1/2 bookkeeping is *per item*, and an item lives in exactly
  one shard, so the edges a sharded run derives are identical to the
  edges a serial run derives from any operation stream with the same
  per-key order.
- Per-shard state combines associatively
  (:meth:`~repro.core.collector.CollectorShard.merge`), so aggregate
  statistics equal the serial collector's.

The optional *journal* records every event with a globally unique,
monotonically increasing ticket, assigned while the shard lock is held.
:meth:`drain_journal` briefly acquires **all** shard locks, swaps the
journal buffers out and merges them by ticket: because tickets are only
issued under a shard lock, holding every lock guarantees the drained
batch is a complete prefix of the ticket sequence — the serialized trace
of the concurrent execution.  The background detection thread of
:class:`~repro.core.concurrent.service.RushMonService` consumes this
journal; replaying it through the offline baseline must (and, per the
differential tests, does) reproduce the service's counts exactly.

Periodic re-sampling (§5.1) is intentionally unsupported here: a sample
switch must clear every shard atomically, which would need the same
stop-the-world drain on the hot path.  The serial
:class:`~repro.core.collector.DataCentricCollector` retains it.
"""

from __future__ import annotations

import heapq
import itertools
import random
import threading
import time
from typing import Iterable

from repro.core.collector import CollectorShard, ItemSampler, _splitmix64
from repro.core.types import Edge, EdgeStats, Key, Operation
from repro.obs.metrics import MetricsRegistry

#: Journal event kinds.
EV_OP = "op"
EV_BEGIN = "begin"
EV_COMMIT = "commit"


class _Shard:
    """One lock-protected partition: bookkeeping state + journal buffer.

    ``journal_highwater`` is the deepest this shard's journal has ever
    grown between drains — a plain int updated under the shard lock, so
    the observability export (max over shards) needs no extra locking.
    """

    __slots__ = ("lock", "state", "journal", "ops_seen", "journal_highwater")

    def __init__(self, state: CollectorShard) -> None:
        self.lock = threading.Lock()
        self.state = state
        self.journal: list[tuple] = []
        self.ops_seen = 0
        self.journal_highwater = 0


class ShardedCollector:
    """Thread-safe data-centric collector over key-hash shards.

    Parameters mirror :class:`~repro.core.collector.DataCentricCollector`
    (``sampling_rate``, ``mob``, ``mob_slots``, ``items``, ``seed``) plus:

    num_shards:
        Number of key-hash partitions (= maximum write parallelism).
    journal:
        Record a ticket-ordered event journal for a background detector
        (see module docstring).  Off by default: a standalone sharded
        collector returns edges to the caller and keeps no history.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  When set,
        the collector exports per-thread counters (ops handled, sampled
        hits, edges emitted, cumulative shard-lock wait time) and
        callback gauges (journal depth + high-water mark, hit rate).
        Lock wait is the only instrumentation with hot-path cost (two
        ``perf_counter`` calls per op) and is skipped when no registry
        is attached.
    """

    def __init__(
        self,
        sampling_rate: int = 1,
        mob: bool = True,
        items: Iterable[Key] | None = None,
        seed: int = 0,
        mob_slots: int = 2,
        num_shards: int = 8,
        journal: bool = False,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        # The sampler is shared: chosen() is a pure function of
        # (key, salt) — or a frozen materialized set — so concurrent
        # reads need no lock.
        self.sampler = ItemSampler(sampling_rate, seed)
        if items is not None:
            self.sampler.materialize(items)
        self._shards = [
            _Shard(CollectorShard(mob, mob_slots,
                                  random.Random(seed ^ 0x5EED ^ (i * 0x9E37))))
            for i in range(num_shards)
        ]
        self._ticket = itertools.count()
        self._journal = journal
        self.metrics = metrics
        if metrics is not None:
            self._m_ops = metrics.counter(
                "rushmon_collector_ops_total",
                help="operations the sharded collector has handled",
            )
            self._m_sampled = metrics.counter(
                "rushmon_collector_sampled_ops_total",
                help="operations that hit a sampled item (paid bookkeeping)",
            )
            self._m_edges = metrics.counter(
                "rushmon_collector_edges_total",
                help="dependency edges emitted by the sharded collector",
            )
            self._m_lifecycle = metrics.counter(
                "rushmon_collector_lifecycle_events_total",
                help="BUU begin/commit events journaled",
            )
            self._m_lock_wait = metrics.counter(
                "rushmon_collector_lock_wait_seconds_total",
                help="cumulative time producer threads spent waiting on "
                     "shard locks",
            )
            metrics.gauge_fn(
                "rushmon_collector_journal_depth",
                lambda: float(sum(len(s.journal) for s in self._shards)),
                help="events currently buffered across all shard journals",
            )
            metrics.gauge_fn(
                "rushmon_collector_journal_depth_highwater",
                lambda: float(
                    max(s.journal_highwater for s in self._shards)
                ),
                help="deepest any shard journal has grown between drains",
            )
            metrics.gauge_fn(
                "rushmon_collector_sampled_hit_rate",
                self._hit_rate,
                help="fraction of handled operations on sampled items",
            )
        else:
            self._m_ops = None
            self._m_sampled = None
            self._m_edges = None
            self._m_lifecycle = None
            self._m_lock_wait = None

    def _hit_rate(self) -> float:
        seen = self.ops_seen
        return (self.touches / seen) if seen else 0.0

    # -- partitioning --------------------------------------------------------

    def shard_index(self, key: Key) -> int:
        """The shard owning ``key`` (stable within the process)."""
        return _splitmix64(hash(key)) % self.num_shards

    # -- ingestion (any thread) ----------------------------------------------

    def handle(self, op: Operation) -> list[Edge]:
        """Bookkeep one operation under its shard's lock; returns the
        derived edges (empty if the item was not sampled)."""
        shard = self._shards[self.shard_index(op.key)]
        lock_wait = self._m_lock_wait
        if lock_wait is not None:
            waited = time.perf_counter()
            shard.lock.acquire()
            lock_wait.inc(time.perf_counter() - waited)
        else:
            shard.lock.acquire()
        try:
            shard.ops_seen += 1
            chosen = self.sampler.chosen(op.key)
            if chosen:
                edges = shard.state.handle(op)
            else:
                edges = []
            if self._journal:
                shard.journal.append((next(self._ticket), EV_OP, op, edges))
                depth = len(shard.journal)
                if depth > shard.journal_highwater:
                    shard.journal_highwater = depth
        finally:
            shard.lock.release()
        # Counter cells are per-thread, so these need no lock and can
        # run after the shard lock is released.
        if self._m_ops is not None:
            self._m_ops.inc()
            if chosen:
                self._m_sampled.inc()  # type: ignore[union-attr]
            if edges:
                self._m_edges.inc(len(edges))  # type: ignore[union-attr]
        return edges

    def handle_all(self, ops: Iterable[Operation]) -> list[Edge]:
        edges: list[Edge] = []
        for op in ops:
            edges.extend(self.handle(op))
        return edges

    def record_lifecycle(self, kind: str, buu: int, time: int) -> None:
        """Journal a BUU ``begin``/``commit`` event (routed by BUU hash so
        the ticket is assigned under some shard lock)."""
        if not self._journal:
            return
        shard = self._shards[_splitmix64(buu) % self.num_shards]
        with shard.lock:
            shard.journal.append((next(self._ticket), kind, buu, time))
            depth = len(shard.journal)
            if depth > shard.journal_highwater:
                shard.journal_highwater = depth
        if self._m_lifecycle is not None:
            self._m_lifecycle.inc()

    # -- journal draining (detection thread) ----------------------------------

    def drain_journal(self) -> list[tuple]:
        """Swap out all shard journals and return their events merged by
        ticket — a complete prefix of the serialized execution.

        Tickets are only issued while holding a shard lock, so acquiring
        every shard lock (briefly — the swap is a pointer exchange)
        guarantees no ticket issued so far is still in flight.
        """
        for shard in self._shards:
            shard.lock.acquire()
        try:
            batches = [shard.journal for shard in self._shards]
            for shard in self._shards:
                shard.journal = []
        finally:
            for shard in reversed(self._shards):
                shard.lock.release()
        # Each batch is ticket-sorted (appended in issue order under the
        # lock); tickets are unique, so the merge is a total order.
        return list(heapq.merge(*batches))

    # -- aggregate views ------------------------------------------------------

    @property
    def sampling_rate(self) -> int:
        return self.sampler.sampling_rate

    @property
    def sampling_probability(self) -> float:
        return self.sampler.probability

    @property
    def ops_seen(self) -> int:
        return sum(shard.ops_seen for shard in self._shards)

    @property
    def stats(self) -> EdgeStats:
        total = EdgeStats()
        for shard in self._shards:
            total.add(shard.state.stats)
        return total

    @property
    def touches(self) -> int:
        return sum(shard.state.touches for shard in self._shards)

    @property
    def total_reads(self) -> int:
        return sum(shard.state.total_reads for shard in self._shards)

    @property
    def discarded_reads(self) -> int:
        return sum(shard.state.discarded_reads for shard in self._shards)

    @property
    def discard_ratio(self) -> float:
        reads = self.total_reads
        if reads == 0:
            return 0.0
        return self.discarded_reads / reads

    def merged(self) -> CollectorShard:
        """A fresh :class:`CollectorShard` holding the associative merge
        of every shard's state (counters add, item tables union)."""
        combined = CollectorShard()
        for shard in self._shards:
            combined.merge(shard.state)
        return combined
