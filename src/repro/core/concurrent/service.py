"""The concurrent RushMon monitoring service.

:class:`RushMonService` is the threaded counterpart of the serial
:class:`~repro.core.monitor.RushMon` facade.  Producer threads call the
standard listener protocol (``on_operation`` / ``begin_buu`` /
``commit_buu``); collection happens inline under the owning shard's lock
(:class:`~repro.core.concurrent.sharded.ShardedCollector`), while cycle
detection runs on a *background thread* that wakes every
``detect_interval`` seconds, drains the ticket-ordered event journal,
feeds the pruned :class:`~repro.core.detector.CycleDetector`, closes a
monitoring window and publishes the resulting
:class:`~repro.core.types.AnomalyReport` as an atomic snapshot
(a single reference swap — readers never see a torn report).

Because the detector consumes events in ticket order, the detection path
is literally a serial RushMon replay of the serialized trace; the only
concurrency-sensitive code is the sharded collector, whose per-key
bookkeeping order matches the ticket order by construction.  That is the
invariant the differential and stress tests pin: at ``sr=1`` the service
must report exactly what :class:`~repro.core.monitor.OfflineAnomalyMonitor`
computes from the recorded serialized trace.

Drain semantics: ``stop()`` joins the detection thread and runs one
final detection pass, so every event submitted *before* ``stop()`` was
called is reflected in the final counts.  Producers must stop submitting
before calling ``stop()`` (events submitted concurrently with the final
pass are processed on the next ``flush()``/``stop()``, never lost).
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import Iterable

from repro.core.concurrent.sharded import EV_BEGIN, EV_COMMIT, EV_OP, ShardedCollector
from repro.core.config import RushMonConfig
from repro.core.detector import CycleDetector
from repro.core.estimator import estimate_three_cycles, estimate_two_cycles
from repro.core.monitor import WindowTracker
from repro.core.pruning import make_pruner
from repro.core.types import AnomalyReport, BuuId, CycleCounts, Key, Operation


class RushMonService:
    """Thread-safe RushMon monitor with background windowed detection.

    Parameters
    ----------
    config:
        The usual :class:`~repro.core.config.RushMonConfig`.
        ``resample_interval`` is ignored (unsupported in sharded mode —
        see :mod:`repro.core.concurrent.sharded`).
    num_shards:
        Key-hash partitions of the collector (= write parallelism).
    detect_interval:
        Seconds between background detection passes; each pass that
        observed events closes one monitoring window.
    items:
        Optional known item universe for an exact up-front sample.
    record_trace:
        Keep the serialized (ticket-ordered) trace of everything
        processed, for offline replay/auditing.  Costs memory linear in
        the event count; meant for tests and debugging.
    """

    def __init__(
        self,
        config: RushMonConfig | None = None,
        *,
        num_shards: int = 8,
        detect_interval: float = 0.05,
        items: Iterable[Key] | None = None,
        record_trace: bool = False,
    ) -> None:
        if detect_interval <= 0:
            raise ValueError("detect_interval must be > 0")
        self.config = config or RushMonConfig()
        self.detect_interval = detect_interval
        self.collector = ShardedCollector(
            sampling_rate=self.config.sampling_rate,
            mob=self.config.mob,
            items=items,
            seed=self.config.seed,
            num_shards=num_shards,
            journal=True,
        )
        self.detector = CycleDetector(
            pruner=make_pruner(self.config.pruning),
            prune_interval=self.config.prune_interval,
            count_three=self.config.count_three_cycles,
        )
        self._window = WindowTracker(self.detector)
        self.reports: list[AnomalyReport] = []
        self._latest: AnomalyReport | None = None
        self._pass_lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None
        self._clock = 0  # last processed ticket (the service's logical now)
        self.processed_events = 0
        self.passes = 0
        if record_trace:
            from repro.sim.traces import Trace

            self._trace = Trace()
        else:
            self._trace = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "RushMonService":
        """Spawn the background detection thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name="rushmon-detector", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, drain: bool = True) -> AnomalyReport | None:
        """Stop the detection thread; with ``drain`` (default) run one
        final pass so all submitted events are reflected.  Returns the
        last published report.  Re-raises any detection-thread error."""
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if drain:
            self._detect_pass()
        self._raise_pending()
        return self._latest

    def __enter__(self) -> "RushMonService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _run(self) -> None:
        try:
            while not self._stop_event.wait(self.detect_interval):
                self._detect_pass()
        except BaseException as exc:  # surfaced on stop()/flush()
            self._error = exc

    def _raise_pending(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise RuntimeError("rushmon detection thread failed") from error

    # -- producer-side listener protocol (any thread) --------------------------

    def on_operation(self, op: Operation) -> None:
        """Observe one read/write (thread-safe; collection is inline,
        detection is deferred to the background pass)."""
        self.collector.handle(op)

    def on_operations(self, ops: Iterable[Operation]) -> None:
        for op in ops:
            self.collector.handle(op)

    def begin_buu(self, buu: BuuId, start_time: int = 0) -> None:
        self.collector.record_lifecycle(EV_BEGIN, buu, start_time)

    def commit_buu(self, buu: BuuId, commit_time: int = 0) -> None:
        self.collector.record_lifecycle(EV_COMMIT, buu, commit_time)

    # -- detection (background thread, or flush() caller) -----------------------

    def _detect_pass(self) -> AnomalyReport | None:
        """Drain the journal, feed the detector in ticket order, close a
        window.  Serialized by ``_pass_lock`` so an explicit ``flush()``
        cannot interleave with the background thread."""
        with self._pass_lock:
            events = self.collector.drain_journal()
            for ticket, kind, payload, extra in events:
                self._clock = ticket
                if kind == EV_OP:
                    self._window.observe_operation()
                    if self._trace is not None:
                        self._trace.ops.append(replace(payload, seq=ticket))
                    for edge in extra:
                        # Re-stamp with the ticket: the detector's logical
                        # clock (window ends, prune 'now') must follow the
                        # serialized order, not the producers' own seqs.
                        self._window.observe_edge(replace(edge, seq=ticket))
                elif kind == EV_BEGIN:
                    self.detector.begin_buu(payload, ticket)
                    if self._trace is not None:
                        self._trace.begins.append((payload, ticket))
                else:
                    self.detector.commit_buu(payload, ticket)
                    if self._trace is not None:
                        self._trace.commits.append((payload, ticket))
            self.passes += 1
            if not events:
                return None
            self.processed_events += len(events)
            report = self._window.close(
                self._clock, self.collector.sampling_probability
            )
            self.reports.append(report)
            self._latest = report  # atomic reference swap
            return report

    def flush(self) -> AnomalyReport | None:
        """Synchronously run one detection pass; returns the report of
        the window it closed (None if no events were pending)."""
        self._raise_pending()
        return self._detect_pass()

    # -- consumer-side views ---------------------------------------------------

    def latest_report(self) -> AnomalyReport | None:
        """The most recently published window report (atomic snapshot:
        reports are immutable once published, and this is a single
        reference read)."""
        return self._latest

    def counts(self) -> CycleCounts:
        """Cumulative sampled cycle counts over the service's lifetime."""
        with self._pass_lock:
            return self.detector.counts.copy()

    def cumulative_estimates(self) -> tuple[float, float]:
        """Unbiased (E2, E3) over everything processed so far."""
        raw = self.counts()
        p = self.collector.sampling_probability
        return estimate_two_cycles(raw, p), estimate_three_cycles(raw, p)

    def serialized_trace(self):
        """The recorded ticket-ordered trace (``record_trace=True`` only).

        Call after :meth:`stop` or :meth:`flush`; events still in shard
        journals are not yet part of the trace.  Replaying it through
        :class:`~repro.core.monitor.OfflineAnomalyMonitor` reproduces the
        service's counts exactly at ``sr=1`` (the differential tests'
        invariant).
        """
        if self._trace is None:
            raise RuntimeError(
                "trace recording is off; construct with record_trace=True"
            )
        return self._trace
