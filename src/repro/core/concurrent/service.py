"""The concurrent RushMon monitoring service.

:class:`RushMonService` is the threaded counterpart of the serial
:class:`~repro.core.monitor.RushMon` facade.  Producer threads call the
standard listener protocol (``on_operation`` / ``begin_buu`` /
``commit_buu``); collection happens inline under the owning shard's lock
(:class:`~repro.core.concurrent.sharded.ShardedCollector`), while cycle
detection runs on a *background thread* that wakes every
``detect_interval`` seconds, drains the ticket-ordered event journal,
feeds the pruned :class:`~repro.core.detector.CycleDetector`, closes a
monitoring window and publishes the resulting
:class:`~repro.core.types.AnomalyReport` as an atomic snapshot
(a single reference swap — readers never see a torn report).

Because the detector consumes events in ticket order, the detection path
is literally a serial RushMon replay of the serialized trace; the only
concurrency-sensitive code is the sharded collector, whose per-key
bookkeeping order matches the ticket order by construction.  That is the
invariant the differential and stress tests pin: at ``sr=1`` the service
must report exactly what :class:`~repro.core.monitor.OfflineAnomalyMonitor`
computes from the recorded serialized trace.

Drain semantics: ``stop()`` joins the detection thread and runs one
final detection pass, so every event submitted *before* ``stop()`` was
called is reflected in the final counts.  Producers must stop submitting
before calling ``stop()`` (events submitted concurrently with the final
pass are processed on the next ``flush()``/``stop()``, never lost).
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from typing import Iterable

from repro.core.concurrent.sharded import EV_BEGIN, EV_COMMIT, EV_OP, ShardedCollector
from repro.core.config import RushMonConfig
from repro.core.detector import CycleDetector
from repro.core.estimator import estimate_three_cycles, estimate_two_cycles
from repro.core.monitor import WindowTracker
from repro.core.pruning import make_pruner
from repro.core.types import AnomalyReport, BuuId, CycleCounts, Key, Operation
from repro.obs.instrument import instrument_detector
from repro.obs.metrics import MetricsRegistry


class RushMonService:
    """Thread-safe RushMon monitor with background windowed detection.

    Parameters
    ----------
    config:
        The usual :class:`~repro.core.config.RushMonConfig`.
        ``resample_interval`` is **unsupported** in sharded mode (a
        sample switch would need a stop-the-world drain on the hot path
        — see :mod:`repro.core.concurrent.sharded`); passing one raises
        ``ValueError`` rather than silently dropping the setting.  Use
        the serial :class:`~repro.core.monitor.RushMon` for periodic
        re-sampling.
    num_shards:
        Key-hash partitions of the collector (= write parallelism).
    detect_interval:
        Seconds between background detection passes; each pass that
        observed events closes one monitoring window.
    items:
        Optional known item universe for an exact up-front sample.
    record_trace:
        Keep the serialized (ticket-ordered) trace of everything
        processed, for offline replay/auditing.  Costs memory linear in
        the event count; meant for tests and debugging.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` to export into; a
        private registry is created when omitted, so ``service.metrics``
        is always live.  Exported signals: collector throughput and
        lock wait (see :class:`ShardedCollector`), detection-pass
        latency histogram, window close lag, drain duration, report
        age, detection-thread liveness, and the detector's live-graph /
        pruning readings.
    """

    def __init__(
        self,
        config: RushMonConfig | None = None,
        *,
        num_shards: int = 8,
        detect_interval: float = 0.05,
        items: Iterable[Key] | None = None,
        record_trace: bool = False,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if detect_interval <= 0:
            raise ValueError("detect_interval must be > 0")
        self.config = config or RushMonConfig()
        if self.config.resample_interval is not None:
            raise ValueError(
                "RushMonConfig.resample_interval is not supported by "
                "RushMonService: switching the item sample atomically "
                "would require a stop-the-world pause across every "
                "shard.  Use the serial RushMon monitor, or set "
                "resample_interval=None."
            )
        self.detect_interval = detect_interval
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.collector = ShardedCollector(
            sampling_rate=self.config.sampling_rate,
            mob=self.config.mob,
            items=items,
            seed=self.config.seed,
            num_shards=num_shards,
            journal=True,
            metrics=self.metrics,
        )
        self.detector = CycleDetector(
            pruner=make_pruner(self.config.pruning),
            prune_interval=self.config.prune_interval,
            count_three=self.config.count_three_cycles,
        )
        self._window = WindowTracker(self.detector)
        self.reports: list[AnomalyReport] = []
        self._latest: AnomalyReport | None = None
        self._pass_lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None
        self._clock = 0  # last processed ticket (the service's logical now)
        self.processed_events = 0
        self.passes = 0
        self._latest_published_at: float | None = None
        if record_trace:
            from repro.sim.traces import Trace

            self._trace = Trace()
        else:
            self._trace = None
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Export the service's own health/progress signals."""
        registry = self.metrics
        self._m_pass_seconds = registry.histogram(
            "rushmon_service_pass_seconds",
            help="wall-clock duration of detection passes",
        )
        self._m_close_lag = registry.gauge(
            "rushmon_service_window_close_lag_seconds",
            help="duration of the last pass that closed a window "
                 "(journal drain + detector feed + window close)",
        )
        self._m_drain = registry.gauge(
            "rushmon_service_drain_seconds",
            help="duration of the final drain pass run by stop()",
        )
        registry.gauge_fn(
            "rushmon_service_events_processed_total",
            lambda: float(self.processed_events),
            help="journal events consumed by the detection path",
        )
        registry.gauge_fn(
            "rushmon_service_passes_total",
            lambda: float(self.passes),
            help="detection passes run (including empty ones)",
        )
        registry.gauge_fn(
            "rushmon_service_reports_total",
            lambda: float(len(self.reports)),
            help="monitoring windows closed and published",
        )
        registry.gauge_fn(
            "rushmon_service_report_age_seconds",
            self._report_age,
            help="seconds since the last report was published "
                 "(-1 before the first report)",
        )
        registry.gauge_fn(
            "rushmon_service_detection_thread_alive",
            lambda: 1.0 if self.running else 0.0,
            help="1 while the background detection thread is running",
        )
        instrument_detector(registry, self.detector)

    def _report_age(self) -> float:
        published = self._latest_published_at
        if published is None:
            return -1.0
        return time.monotonic() - published

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "RushMonService":
        """Spawn the background detection thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name="rushmon-detector", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, drain: bool = True) -> AnomalyReport | None:
        """Stop the detection thread; with ``drain`` (default) run one
        final pass so all submitted events are reflected.  Returns the
        last published report.  Re-raises any detection-thread error."""
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if drain:
            started = time.perf_counter()
            self._detect_pass()
            self._m_drain.set(time.perf_counter() - started)
        self._raise_pending()
        return self._latest

    def __enter__(self) -> "RushMonService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _run(self) -> None:
        try:
            while not self._stop_event.wait(self.detect_interval):
                self._detect_pass()
        except BaseException as exc:  # surfaced on stop()/flush()
            self._error = exc

    def _raise_pending(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise RuntimeError("rushmon detection thread failed") from error

    # -- producer-side listener protocol (any thread) --------------------------

    def on_operation(self, op: Operation) -> None:
        """Observe one read/write (thread-safe; collection is inline,
        detection is deferred to the background pass)."""
        self.collector.handle(op)

    def on_operations(self, ops: Iterable[Operation]) -> None:
        for op in ops:
            self.collector.handle(op)

    def begin_buu(self, buu: BuuId, start_time: int = 0) -> None:
        self.collector.record_lifecycle(EV_BEGIN, buu, start_time)

    def commit_buu(self, buu: BuuId, commit_time: int = 0) -> None:
        self.collector.record_lifecycle(EV_COMMIT, buu, commit_time)

    # -- detection (background thread, or flush() caller) -----------------------

    def _detect_pass(self) -> AnomalyReport | None:
        """Drain the journal, feed the detector in ticket order, close a
        window.  Serialized by ``_pass_lock`` so an explicit ``flush()``
        cannot interleave with the background thread."""
        with self._pass_lock:
            started = time.perf_counter()
            events = self.collector.drain_journal()
            for ticket, kind, payload, extra in events:
                self._clock = ticket
                if kind == EV_OP:
                    self._window.observe_operation()
                    if self._trace is not None:
                        self._trace.ops.append(replace(payload, seq=ticket))
                    for edge in extra:
                        # Re-stamp with the ticket: the detector's logical
                        # clock (window ends, prune 'now') must follow the
                        # serialized order, not the producers' own seqs.
                        self._window.observe_edge(replace(edge, seq=ticket))
                elif kind == EV_BEGIN:
                    self.detector.begin_buu(payload, ticket)
                    if self._trace is not None:
                        self._trace.begins.append((payload, ticket))
                else:
                    self.detector.commit_buu(payload, ticket)
                    if self._trace is not None:
                        self._trace.commits.append((payload, ticket))
            self.passes += 1
            if not events:
                self._m_pass_seconds.observe(time.perf_counter() - started)
                return None
            self.processed_events += len(events)
            report = self._window.close(
                self._clock, self.collector.sampling_probability
            )
            self.reports.append(report)
            self._latest = report  # atomic reference swap
            self._latest_published_at = time.monotonic()
            elapsed = time.perf_counter() - started
            self._m_pass_seconds.observe(elapsed)
            self._m_close_lag.set(elapsed)
            return report

    def close_window(self, now: int | None = None) -> AnomalyReport | None:
        """Synchronously run one detection pass, closing the current
        monitoring window; returns its report (``None`` if no events
        were pending).  The canonical
        :class:`~repro.core.api.AnomalyMonitor` verb.

        ``now`` is accepted for protocol compatibility and ignored: the
        service's clock is the journal ticket order, not caller time.
        """
        self._raise_pending()
        return self._detect_pass()

    def flush(self) -> AnomalyReport | None:
        """Alias of :meth:`close_window`, kept for backward
        compatibility.

        .. deprecated:: use :meth:`close_window` — the verb every
           monitor shares (see :mod:`repro.core.api`).
        """
        return self.close_window()

    # -- consumer-side views ---------------------------------------------------

    def latest_report(self) -> AnomalyReport | None:
        """The most recently published window report (atomic snapshot:
        reports are immutable once published, and this is a single
        reference read)."""
        return self._latest

    def counts(self) -> CycleCounts:
        """Cumulative sampled cycle counts over the service's lifetime."""
        with self._pass_lock:
            return self.detector.counts.copy()

    def cumulative_estimates(self) -> tuple[float, float]:
        """Unbiased (E2, E3) over everything processed so far."""
        raw = self.counts()
        p = self.collector.sampling_probability
        return estimate_two_cycles(raw, p), estimate_three_cycles(raw, p)

    def serialized_trace(self):
        """The recorded ticket-ordered trace (``record_trace=True`` only).

        Call after :meth:`stop` or :meth:`flush`; events still in shard
        journals are not yet part of the trace.  Replaying it through
        :class:`~repro.core.monitor.OfflineAnomalyMonitor` reproduces the
        service's counts exactly at ``sr=1`` (the differential tests'
        invariant).
        """
        if self._trace is None:
            raise RuntimeError(
                "trace recording is off; construct with record_trace=True"
            )
        return self._trace
