"""The concurrent RushMon monitoring service.

:class:`RushMonService` is the threaded counterpart of the serial
:class:`~repro.core.monitor.RushMon` facade.  Producer threads call the
standard listener protocol (``on_operation`` / ``begin_buu`` /
``commit_buu``); collection happens inline under the owning shard's lock
(:class:`~repro.core.concurrent.sharded.ShardedCollector`), while cycle
detection runs on a *background thread* that wakes every
``detect_interval`` seconds, drains the ticket-ordered event journal,
feeds the pruned :class:`~repro.core.detector.CycleDetector`, closes a
monitoring window and publishes the resulting
:class:`~repro.core.types.AnomalyReport` as an atomic snapshot
(a single reference swap — readers never see a torn report).

Because the detector consumes events in ticket order, the detection path
is literally a serial RushMon replay of the serialized trace; the only
concurrency-sensitive code is the sharded collector, whose per-key
bookkeeping order matches the ticket order by construction.  That is the
invariant the differential, stress and chaos tests pin: at ``sr=1`` the
service must report exactly what
:class:`~repro.core.monitor.OfflineAnomalyMonitor` computes from the
recorded serialized trace — for every event the collector acknowledged.

Fault tolerance
---------------

The detection thread is **supervised**: an exception in a detection pass
is caught, logged and counted, the unconsumed suffix of the drained
batch is re-queued (nothing acknowledged is lost), and a replacement
thread is spawned after an exponential backoff
(``restart_backoff * 2**(failures-1)``, capped at ``max_backoff``).  A
*completed* pass resets the failure streak; ``max_restarts`` consecutive
failures trip a circuit breaker: the service enters an explicit
``DEGRADED`` state — visible in :meth:`latest_report` (``health ==
"degraded"``), in :meth:`health`, and as ``rushmon_service_degraded 1``
on ``/metrics`` — and the collector switches its overflow policy to
``shed`` so producers can never block on a detector that is not coming
back.  A degraded service keeps accepting (and shedding) events and
keeps serving its last reports; it never silently pretends to monitor.

Crash recovery: :meth:`checkpoint` persists the collector bookkeeping,
pending journal, detector graph/counts and open-window state through
:mod:`repro.storage.wal` (atomic write, CRC); :meth:`restore` rebuilds a
service from the file and resumes exactly where the snapshot was cut.
``checkpoint_interval`` automates this every N detection passes.

Lifecycle: ``stop()`` is **terminal and idempotent** — it joins the
detection thread, runs one final drain pass (so every event acknowledged
before ``stop()`` is reflected in the final counts) and freezes the
service.  After ``stop()``, ingestion and ``close_window()`` raise
``RuntimeError``; the report accessors keep working.  A service that was
never started still supports inline ``close_window()`` (the serial-style
usage the API-conformance tests exercise).
"""

from __future__ import annotations

import logging
import threading
import time
import warnings
from dataclasses import asdict, replace
from typing import Iterable

from repro.core.concurrent.sharded import EV_BEGIN, EV_COMMIT, EV_OP, ShardedCollector
from repro.core.config import RushMonConfig
from repro.core.detector import CycleDetector
from repro.core.estimator import estimate_three_cycles, estimate_two_cycles
from repro.core.monitor import WindowTracker
from repro.core.pruning import make_pruner
from repro.core.types import AnomalyReport, BuuId, CycleCounts, Key, Operation
from repro.obs.instrument import instrument_detector
from repro.obs.metrics import MetricsRegistry
from repro.storage import wal

#: Default ops per ingest/detect batch.  Big enough to amortize lock
#: acquisitions and detector dispatch, small enough that a pass's
#: incremental progress (crash-safe consumed-count advancement) stays
#: fine-grained.  (Canonical home: ``repro.core.config`` — re-exported
#: here for backward compatibility.)
DEFAULT_BATCH_SIZE = 256

#: Sentinel distinguishing "kwarg not passed" from any real value, so
#: the deprecated construction kwargs can warn only when actually used.
_UNSET = object()

#: Service tunables that moved into :class:`RushMonConfig`; passing them
#: as keywords still works for one release but warns.
_CONFIG_KWARGS = (
    "num_shards",
    "detect_interval",
    "journal_capacity",
    "overflow",
    "block_timeout",
    "max_restarts",
    "restart_backoff",
    "max_backoff",
    "checkpoint_path",
    "checkpoint_interval",
    "batch_size",
)

_log = logging.getLogger(__name__)


class RushMonService:
    """Thread-safe RushMon monitor with supervised background detection.

    Parameters
    ----------
    config:
        The single construction path: one validated
        :class:`~repro.core.config.RushMonConfig` carrying both the
        monitor tunables (``sampling_rate`` …) and the service tunables
        (``num_shards``, ``detect_interval``, the
        ``journal_capacity``/``overflow``/``block_timeout``
        backpressure knobs, the ``max_restarts``/``restart_backoff``/
        ``max_backoff`` supervision schedule, ``batch_size`` and
        ``checkpoint_path``/``checkpoint_interval`` — see the config's
        docstring for each).  ``resample_interval`` is **unsupported**
        in sharded mode (a sample switch would need a stop-the-world
        drain on the hot path — see
        :mod:`repro.core.concurrent.sharded`); passing one raises
        ``ValueError`` rather than silently dropping the setting.  Use
        the serial :class:`~repro.core.monitor.RushMon` for periodic
        re-sampling.

        .. deprecated:: 1.0
           Passing the service tunables as keyword arguments
           (``RushMonService(cfg, num_shards=4)``) still works but
           emits a ``DeprecationWarning`` and will be removed in the
           next release; the values override the config's.
    items:
        Optional known item universe for an exact up-front sample.
    record_trace:
        Keep the serialized (ticket-ordered) trace of everything
        processed, for offline replay/auditing.  Costs memory linear in
        the event count; meant for tests and debugging.
    faults:
        Optional :class:`~repro.testing.faults.FaultInjector`; arms the
        ``detect.pass`` / ``detect.process`` points here and the
        collector's points (chaos tests only — with no injector the
        pipeline pays a single ``is None`` check).
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` to export into; a
        private registry is created when omitted, so ``service.metrics``
        is always live.  Beyond the collector/detector signals, the
        service exports pass latency, report age, thread liveness, and
        the fault-tolerance set: failure/restart totals, the current
        failure streak, checkpoint count and the ``degraded`` flag.
    """

    def __init__(
        self,
        config: RushMonConfig | None = None,
        *,
        num_shards: int = _UNSET,
        detect_interval: float = _UNSET,
        items: Iterable[Key] | None = None,
        record_trace: bool = False,
        journal_capacity: int | None = _UNSET,
        overflow: str = _UNSET,
        block_timeout: float = _UNSET,
        max_restarts: int = _UNSET,
        restart_backoff: float = _UNSET,
        max_backoff: float = _UNSET,
        checkpoint_path: str | None = _UNSET,
        checkpoint_interval: int | None = _UNSET,
        batch_size: int = _UNSET,
        faults=None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or RushMonConfig()
        overrides = {
            name: value
            for name, value in (
                ("num_shards", num_shards),
                ("detect_interval", detect_interval),
                ("journal_capacity", journal_capacity),
                ("overflow", overflow),
                ("block_timeout", block_timeout),
                ("max_restarts", max_restarts),
                ("restart_backoff", restart_backoff),
                ("max_backoff", max_backoff),
                ("checkpoint_path", checkpoint_path),
                ("checkpoint_interval", checkpoint_interval),
                ("batch_size", batch_size),
            )
            if value is not _UNSET
        }
        if overrides:
            warnings.warn(
                f"passing {sorted(overrides)} as RushMonService keyword "
                f"arguments is deprecated; set them on RushMonConfig "
                f"instead (e.g. RushMonConfig(num_shards=4)) — the "
                f"keywords will be removed in the next release",
                DeprecationWarning,
                stacklevel=2,
            )
            # replace() re-runs RushMonConfig validation on the result.
            self.config = replace(self.config, **overrides)
        if self.config.resample_interval is not None:
            raise ValueError(
                "RushMonConfig.resample_interval is not supported by "
                "RushMonService: switching the item sample atomically "
                "would require a stop-the-world pause across every "
                "shard.  Use the serial RushMon monitor, or set "
                "resample_interval=None."
            )
        self.detect_interval = self.config.detect_interval
        self.batch_size = self.config.batch_size
        self.max_restarts = self.config.max_restarts
        self.restart_backoff = self.config.restart_backoff
        self.max_backoff = self.config.max_backoff
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._faults = faults
        self.collector = ShardedCollector(
            sampling_rate=self.config.sampling_rate,
            mob=self.config.mob,
            items=items,
            seed=self.config.seed,
            num_shards=self.config.num_shards,
            journal=True,
            journal_capacity=self.config.journal_capacity,
            overflow=self.config.overflow,
            block_timeout=self.config.block_timeout,
            faults=faults,
            metrics=self.metrics,
        )
        self.detector = CycleDetector(
            pruner=make_pruner(self.config.pruning),
            prune_interval=self.config.prune_interval,
            count_three=self.config.count_three_cycles,
        )
        self._window = WindowTracker(self.detector)
        self.reports: list[AnomalyReport] = []
        self._latest: AnomalyReport | None = None
        self._pass_lock = threading.Lock()
        self._lifecycle_lock = threading.Lock()
        self._stop_event = threading.Event()
        self._stopped = False
        self._thread: threading.Thread | None = None
        self._degraded = False
        self.last_error: BaseException | None = None
        self.detect_failures = 0
        self.detect_restarts = 0
        self._consecutive_failures = 0
        self._clock = 0  # last processed ticket (the service's logical now)
        self.processed_events = 0
        self.passes = 0
        self.checkpoints_written = 0
        self._checkpoint_path = self.config.checkpoint_path
        self._checkpoint_interval = self.config.checkpoint_interval
        self._last_checkpoint_pass = 0
        self._latest_published_at: float | None = None
        #: Opaque embedder state (e.g. ``repro.net`` session tables)
        #: carried inside checkpoints so it shares their atomicity —
        #: either the whole cut (service + extra) persists, or none.
        self.extra_state: dict = {}
        self._record_trace = record_trace
        if record_trace:
            from repro.sim.traces import Trace

            self._trace = Trace()
        else:
            self._trace = None
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Export the service's own health/progress signals."""
        registry = self.metrics
        self._m_pass_seconds = registry.histogram(
            "rushmon_service_pass_seconds",
            help="wall-clock duration of detection passes",
        )
        self._m_close_lag = registry.gauge(
            "rushmon_service_window_close_lag_seconds",
            help="duration of the last pass that closed a window "
                 "(journal drain + detector feed + window close)",
        )
        self._m_drain = registry.gauge(
            "rushmon_service_drain_seconds",
            help="duration of the final drain pass run by stop()",
        )
        registry.gauge_fn(
            "rushmon_service_events_processed_total",
            lambda: float(self.processed_events),
            help="journal events consumed by the detection path",
        )
        registry.gauge_fn(
            "rushmon_service_passes_total",
            lambda: float(self.passes),
            help="detection passes run (including empty ones)",
        )
        registry.gauge_fn(
            "rushmon_service_reports_total",
            lambda: float(len(self.reports)),
            help="monitoring windows closed and published",
        )
        registry.gauge_fn(
            "rushmon_service_report_age_seconds",
            self._report_age,
            help="seconds since the last report was published "
                 "(-1 before the first report)",
        )
        registry.gauge_fn(
            "rushmon_service_detection_thread_alive",
            lambda: 1.0 if self.running else 0.0,
            help="1 while the background detection thread is running",
        )
        registry.gauge_fn(
            "rushmon_service_detect_failures_total",
            lambda: float(self.detect_failures),
            help="detection passes that raised (caught by the supervisor)",
        )
        registry.gauge_fn(
            "rushmon_service_detect_restarts_total",
            lambda: float(self.detect_restarts),
            help="detection-thread restarts performed by the supervisor",
        )
        registry.gauge_fn(
            "rushmon_service_consecutive_detect_failures",
            lambda: float(self._consecutive_failures),
            help="current failure streak (a completed pass resets it; "
                 "exceeding max_restarts trips the circuit breaker)",
        )
        registry.gauge_fn(
            "rushmon_service_degraded",
            lambda: 1.0 if self._degraded else 0.0,
            help="1 once the detection circuit breaker has tripped "
                 "(reports carry health='degraded'; collector sheds on "
                 "overflow)",
        )
        registry.gauge_fn(
            "rushmon_service_checkpoints_total",
            lambda: float(self.checkpoints_written),
            help="state checkpoints written",
        )
        instrument_detector(registry, self.detector)

    def _report_age(self) -> float:
        published = self._latest_published_at
        if published is None:
            return -1.0
        return time.monotonic() - published

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "RushMonService":
        """Spawn the background detection thread (idempotent while
        running; a stopped service cannot be restarted — restore a
        checkpoint or construct a new one)."""
        with self._lifecycle_lock:
            if self._stopped:
                raise RuntimeError(
                    "RushMonService is stopped and cannot be restarted; "
                    "construct a new service or RushMonService.restore() "
                    "a checkpoint"
                )
            if self._thread is not None and self._thread.is_alive():
                return self
            self._stop_event.clear()
            self._spawn_locked()
        return self

    def _spawn_locked(self, initial_delay: float = 0.0) -> None:
        """Start a detection thread; caller holds ``_lifecycle_lock``."""
        thread = threading.Thread(
            target=self._run, args=(initial_delay,),
            name="rushmon-detector", daemon=True,
        )
        self._thread = thread
        thread.start()

    def stop(self, drain: bool = True) -> AnomalyReport | None:
        """Stop the service — **terminal and idempotent**.  Joins the
        detection thread and, with ``drain`` (default), runs one final
        pass so every event acknowledged before ``stop()`` is reflected
        in the final counts (skipped when the breaker has tripped: a
        degraded detector's state is not trustworthy enough to publish
        one more window).  Returns the last published report.  After
        this, ingestion and ``close_window()`` raise ``RuntimeError``.
        """
        with self._lifecycle_lock:
            first = not self._stopped
            self._stopped = True
            self._stop_event.set()
        if not first:
            return self._latest
        # A failing detection thread may have handed off to a freshly
        # spawned replacement between our event-set and now; join until
        # the current handle is dead (the event stops further spawns).
        while True:
            with self._lifecycle_lock:
                thread = self._thread
            if (
                thread is None
                or not thread.is_alive()
                or thread is threading.current_thread()
            ):
                break
            thread.join()
        if drain and not self._degraded:
            started = time.perf_counter()
            try:
                self._detect_pass()
            except BaseException as exc:
                self.last_error = exc
                self.detect_failures += 1
                _log.error("final drain pass failed on stop()",
                           exc_info=exc)
                raise
            finally:
                self._m_drain.set(time.perf_counter() - started)
        if self._checkpoint_path is not None:
            self.checkpoint(self._checkpoint_path)
        return self._latest

    def __enter__(self) -> "RushMonService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def stopped(self) -> bool:
        return self._stopped

    @property
    def degraded(self) -> bool:
        """True once the detection circuit breaker has tripped."""
        return self._degraded

    @property
    def health(self) -> str:
        """``"ok"`` or ``"degraded"`` — stamped onto every report."""
        return "degraded" if self._degraded else "ok"

    # -- supervision (detection thread) ----------------------------------------

    def _run(self, initial_delay: float = 0.0) -> None:
        try:
            if initial_delay and self._stop_event.wait(initial_delay):
                return
            while not self._stop_event.wait(self.detect_interval):
                self._detect_pass()
                # A pass that ran to completion ends the failure streak.
                self._consecutive_failures = 0
                self._maybe_checkpoint()
        except BaseException as exc:
            self._handle_thread_failure(exc)

    def _handle_thread_failure(self, exc: BaseException) -> None:
        """Runs on the dying detection thread: count, log, and either
        spawn a backed-off replacement or trip the circuit breaker."""
        self.last_error = exc
        self.detect_failures += 1
        self._consecutive_failures += 1
        streak = self._consecutive_failures
        if streak > self.max_restarts:
            _log.error(
                "detection pass failed %d times consecutively "
                "(max_restarts=%d); circuit breaker tripped — service "
                "is DEGRADED", streak, self.max_restarts, exc_info=exc,
            )
            self._trip_breaker()
            return
        backoff = min(
            self.restart_backoff * (2 ** (streak - 1)), self.max_backoff
        )
        _log.warning(
            "detection pass failed (streak %d/%d), restarting detection "
            "thread in %.3fs: %r", streak, self.max_restarts, backoff, exc,
            exc_info=exc,
        )
        with self._lifecycle_lock:
            if self._stop_event.is_set():
                return  # stop() won the race; no replacement
            self.detect_restarts += 1
            self._spawn_locked(initial_delay=backoff)

    def _trip_breaker(self) -> None:
        """Enter the explicit DEGRADED state: mark health, make the
        degradation visible through ``latest_report()`` immediately, and
        switch the collector to shed-on-overflow so producers can never
        block forever on a detector that is not coming back."""
        self._degraded = True
        self.collector.overflow = "shed"
        latest = self._latest
        if latest is not None:
            marker = replace(latest, health="degraded")
        else:
            marker = AnomalyReport(
                window_start=self._window.window_start,
                window_end=self._clock,
                estimated_2=0.0,
                estimated_3=0.0,
                health="degraded",
            )
        # Published as the atomic latest snapshot but NOT appended to
        # self.reports: it is a re-stamped marker, not a closed window,
        # and the reports list must stay a partition of processed events.
        self._latest = marker
        self._latest_published_at = time.monotonic()

    # -- producer-side listener protocol (any thread) --------------------------

    def _ensure_accepting(self) -> None:
        if self._stopped:
            raise RuntimeError(
                "RushMonService is stopped — it no longer accepts "
                "events; construct a new service (or restore() a "
                "checkpoint) to resume monitoring"
            )

    def on_operation(self, op: Operation) -> None:
        """Observe one read/write (thread-safe; collection is inline,
        detection is deferred to the background pass)."""
        self._ensure_accepting()
        self.collector.handle(op)

    def on_operations(self, ops: Iterable[Operation]) -> None:
        """Observe a sequence of operations; ingested through the
        collector's batched path in :attr:`batch_size` chunks (one
        shard-lock acquisition per shard per chunk)."""
        self._ensure_accepting()
        if not isinstance(ops, (list, tuple)):
            ops = list(ops)
        size = self.batch_size
        handle_batch = self.collector.handle_batch
        if len(ops) <= size:
            handle_batch(ops)
            return
        for start in range(0, len(ops), size):
            handle_batch(ops[start:start + size])

    def begin_buu(self, buu: BuuId, start_time: int = 0) -> None:
        self._ensure_accepting()
        self.collector.record_lifecycle(EV_BEGIN, buu, start_time)

    def commit_buu(self, buu: BuuId, commit_time: int = 0) -> None:
        self._ensure_accepting()
        self.collector.record_lifecycle(EV_COMMIT, buu, commit_time)

    # -- detection (background thread, or close_window() caller) ----------------

    def _fire_fault(self, point: str) -> None:
        fault = self._faults.fire(point)
        if fault is None:
            return
        if fault.kind == "delay":
            time.sleep(fault.delay)
        else:
            raise fault.exc_factory()

    def _apply_op_run(self, events: list, start: int, stop: int,
                      edges: list) -> None:
        """Apply a run of journal EV_OP events ``[start, stop)`` as one
        batch: the run's (already ticket-restamped) edges feed the
        detector in a single ``add_edge_batch`` call, then op/trace
        bookkeeping advances.  The detector feed runs first so a failure
        consumes nothing from the run — re-feeding the same edges after
        a requeue is idempotent (the live graph deduplicates)."""
        self._window.observe_edges(edges)
        self._window.observe_operations(stop - start)
        if self._trace is not None:
            ops_append = self._trace.ops.append
            for i in range(start, stop):
                event = events[i]
                ops_append(event[2]._replace(seq=event[0]))
        self._clock = events[stop - 1][0]

    def _detect_pass(self) -> AnomalyReport | None:
        """Drain the journal, feed the detector in ticket order, close a
        window.  Serialized by ``_pass_lock`` so an explicit
        ``close_window()`` cannot interleave with the background thread.

        Crash safety: if processing raises mid-batch, the unconsumed
        suffix is re-queued (ticket order preserved) before the
        exception propagates to the supervisor, so a failed pass loses
        no acknowledged events.  Re-processing the event that was in
        flight is idempotent for cycle counts (the live graph
        deduplicates edges).

        With no fault injector armed, runs of consecutive operation
        events feed the detector through :meth:`CycleDetector.add_edge_batch`
        in :attr:`batch_size` chunks (``consumed`` advances only after a
        chunk is fully applied); with faults armed, the exact per-event
        path runs so injection points fire per event.
        """
        with self._pass_lock:
            started = time.perf_counter()
            if self._faults is not None:
                self._fire_fault("detect.pass")
            events = self.collector.drain_journal()
            consumed = 0
            try:
                if self._faults is None:
                    size = self.batch_size
                    detector = self.detector
                    trace = self._trace
                    n = len(events)
                    run_start = 0
                    in_run = False
                    pend_edges: list = []
                    restamp = pend_edges.append
                    for i in range(n):
                        ticket, kind, payload, extra = events[i]
                        if kind == EV_OP:
                            if not in_run:
                                in_run = True
                                run_start = i
                            if extra:
                                # Re-stamp with the ticket: the
                                # detector's logical clock (window ends,
                                # prune 'now') must follow the
                                # serialized order, not producer seqs.
                                for edge in extra:
                                    restamp(edge._replace(seq=ticket))
                            if i + 1 - run_start >= size:
                                self._apply_op_run(events, run_start, i + 1,
                                                   pend_edges)
                                consumed = i + 1
                                in_run = False
                                pend_edges = []
                                restamp = pend_edges.append
                        else:
                            if in_run:
                                self._apply_op_run(events, run_start, i,
                                                   pend_edges)
                                in_run = False
                                pend_edges = []
                                restamp = pend_edges.append
                            if kind == EV_BEGIN:
                                detector.begin_buu(payload, ticket)
                                if trace is not None:
                                    trace.begins.append((payload, ticket))
                            else:
                                detector.commit_buu(payload, ticket)
                                if trace is not None:
                                    trace.commits.append((payload, ticket))
                            consumed = i + 1
                            self._clock = ticket
                    if in_run:
                        self._apply_op_run(events, run_start, n, pend_edges)
                        consumed = n
                else:
                    for ticket, kind, payload, extra in events:
                        self._fire_fault("detect.process")
                        if kind == EV_OP:
                            self._window.observe_operation()
                            if self._trace is not None:
                                self._trace.ops.append(
                                    payload._replace(seq=ticket)
                                )
                            for edge in extra:
                                # Re-stamp with the ticket (see above).
                                self._window.observe_edge(
                                    edge._replace(seq=ticket)
                                )
                        elif kind == EV_BEGIN:
                            self.detector.begin_buu(payload, ticket)
                            if self._trace is not None:
                                self._trace.begins.append((payload, ticket))
                        else:
                            self.detector.commit_buu(payload, ticket)
                            if self._trace is not None:
                                self._trace.commits.append((payload, ticket))
                        consumed += 1
                        self._clock = ticket
            except BaseException:
                if consumed < len(events):
                    self.collector.requeue(events[consumed:])
                self.processed_events += consumed
                self.passes += 1
                raise
            self.passes += 1
            if not events:
                self._m_pass_seconds.observe(time.perf_counter() - started)
                return None
            self.processed_events += len(events)
            report = self._window.close(
                self._clock, self.collector.sampling_probability,
                health=self.health,
            )
            self.reports.append(report)
            self._latest = report  # atomic reference swap
            self._latest_published_at = time.monotonic()
            elapsed = time.perf_counter() - started
            self._m_pass_seconds.observe(elapsed)
            self._m_close_lag.set(elapsed)
            return report

    def close_window(self, now: int | None = None) -> AnomalyReport | None:
        """Synchronously run one detection pass, closing the current
        monitoring window; returns its report (``None`` if no events
        were pending).  The canonical
        :class:`~repro.core.api.AnomalyMonitor` verb.

        ``now`` is accepted for protocol compatibility and ignored: the
        service's clock is the journal ticket order, not caller time.
        Raises ``RuntimeError`` after :meth:`stop` — the final drain has
        already run and there is nothing left to close.
        """
        if self._stopped:
            raise RuntimeError(
                "RushMonService is stopped — stop() already drained the "
                "final window; read latest_report()/reports instead of "
                "calling close_window()"
            )
        return self._detect_pass()

    def flush(self) -> AnomalyReport | None:
        """Deprecated alias of :meth:`close_window`.

        .. deprecated:: 1.0
           Call :meth:`close_window` — the verb every monitor shares
           (see :mod:`repro.core.api`).  This alias warns now and will
           be removed in the next release.
        """
        warnings.warn(
            "RushMonService.flush() is deprecated; call close_window() "
            "instead (the canonical AnomalyMonitor verb, see "
            "repro.core.api). flush() will be removed in the next release.",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.close_window()

    # -- checkpoint / restore ----------------------------------------------------

    def _maybe_checkpoint(self) -> None:
        if self._checkpoint_interval is None:
            return
        if self.passes - self._last_checkpoint_pass >= self._checkpoint_interval:
            self.checkpoint(self._checkpoint_path)

    def checkpoint(self, path: str | None = None) -> str:
        """Write a crash-consistent snapshot of the whole service —
        collector bookkeeping, pending journal events, detector graph
        and counts, open-window state, published reports (and the
        recorded trace, if any) — to ``path`` (default: the configured
        ``checkpoint_path``) via :func:`repro.storage.wal.save_checkpoint`.

        Taken under the pass lock *and* all shard locks, so the cut is a
        consistent prefix of the ticket order: every event is either in
        the snapshot's detector state, in its pending journal, or was
        ingested after the cut.
        """
        target = path if path is not None else self._checkpoint_path
        if target is None:
            raise ValueError(
                "no checkpoint path: pass one or construct the service "
                "with checkpoint_path="
            )
        with self._pass_lock:
            payload = {
                "config": asdict(self.config),
                "service": {
                    "num_shards": self.collector.num_shards,
                    "detect_interval": self.detect_interval,
                    "journal_capacity": self.collector.journal_capacity,
                    "overflow": self.collector.overflow,
                    "block_timeout": self.collector.block_timeout,
                    "max_restarts": self.max_restarts,
                    "restart_backoff": self.restart_backoff,
                    "max_backoff": self.max_backoff,
                    "record_trace": self._record_trace,
                    "batch_size": self.batch_size,
                },
                "collector": self.collector.snapshot_state(),
                "detector": wal.encode_detector_state(self.detector),
                "window": wal.encode_window_state(self._window),
                "reports": [wal.encode_report(r) for r in self.reports],
                "clock": self._clock,
                "processed_events": self.processed_events,
                "passes": self.passes,
                "trace": (
                    None if self._trace is None
                    else wal.encode_trace(self._trace)
                ),
                "extra": self.extra_state,
            }
            self._last_checkpoint_pass = self.passes
        wal.save_checkpoint(target, payload)
        self.checkpoints_written += 1
        return target

    @classmethod
    def restore(
        cls,
        path: str,
        *,
        metrics: MetricsRegistry | None = None,
        faults=None,
        checkpoint_path: str | None = None,
        checkpoint_interval: int | None = None,
    ) -> "RushMonService":
        """Rebuild a service from a :meth:`checkpoint` file and resume
        where the snapshot was cut: restored pending journal events are
        consumed by the next detection pass, window counts continue from
        the open window, and cumulative counts match an uninterrupted
        run over the same event stream.  The returned service is *not*
        started — call :meth:`start` (or drive it inline)."""
        payload = wal.load_checkpoint(path)
        saved = payload["service"]
        # Older checkpoints carried the service tunables in a separate
        # "service" dict; since they moved into RushMonConfig, fold them
        # back into the config (the separate dict always wins — it is
        # what the snapshotted service actually ran with).  .get():
        # pre-batching checkpoints lack batch_size.
        cfg_dict = dict(payload["config"])
        for knob in _CONFIG_KWARGS:
            if knob in saved:
                cfg_dict[knob] = saved[knob]
        cfg_dict.setdefault("batch_size", DEFAULT_BATCH_SIZE)
        # Checkpointing is re-armed by restore()'s own arguments, not by
        # whatever schedule the snapshotted service had.
        cfg_dict["checkpoint_path"] = checkpoint_path
        cfg_dict["checkpoint_interval"] = checkpoint_interval
        service = cls(
            RushMonConfig(**cfg_dict),
            record_trace=saved["record_trace"],
            faults=faults,
            metrics=metrics,
        )
        service.collector.restore_state(payload["collector"])
        wal.decode_detector_state(service.detector, payload["detector"])
        wal.decode_window_state(service._window, payload["window"])
        service.reports = [wal.decode_report(r) for r in payload["reports"]]
        service._latest = service.reports[-1] if service.reports else None
        service._clock = payload["clock"]
        service.processed_events = payload["processed_events"]
        service.passes = payload["passes"]
        service._last_checkpoint_pass = service.passes
        if service._trace is not None and payload["trace"] is not None:
            wal.decode_trace(service._trace, payload["trace"])
        # .get(): pre-net checkpoints lack the key.
        service.extra_state = payload.get("extra", {})
        return service

    # -- consumer-side views ---------------------------------------------------

    def latest_report(self) -> AnomalyReport | None:
        """The most recently published window report (atomic snapshot:
        reports are immutable once published, and this is a single
        reference read).  Once the circuit breaker has tripped, the
        returned report carries ``health == "degraded"``."""
        return self._latest

    def counts(self) -> CycleCounts:
        """Cumulative sampled cycle counts over the service's lifetime."""
        with self._pass_lock:
            return self.detector.counts.copy()

    def cumulative_estimates(self) -> tuple[float, float]:
        """Unbiased (E2, E3) over everything processed so far."""
        raw = self.counts()
        p = self.collector.sampling_probability
        return estimate_two_cycles(raw, p), estimate_three_cycles(raw, p)

    def serialized_trace(self):
        """The recorded ticket-ordered trace (``record_trace=True`` only).

        Call after :meth:`stop` or :meth:`close_window`; events still in
        shard journals are not yet part of the trace.  Replaying it
        through :class:`~repro.core.monitor.OfflineAnomalyMonitor`
        reproduces the service's counts exactly at ``sr=1`` (the
        differential tests' invariant).
        """
        if self._trace is None:
            raise RuntimeError(
                "trace recording is off; construct with record_trace=True"
            )
        return self._trace
