"""Versioned serialization of a shard's edge frontier and sampler state.

The collector/detector boundary inside one process is a list of
:class:`~repro.core.types.Edge` tuples: the collector derives them, the
detector ingests them.  The moment that boundary crosses a process (the
:mod:`repro.cluster` workers exchange the edges each shard derives so
every worker's live graph stays the full serial graph), the edges need a
wire form that is

- **cheap** — compact positional lists, no per-edge dicts, so a frontier
  of thousands of edges encodes in one ``json.dumps`` pass; and
- **versioned** — a frontier payload carries :data:`FRONTIER_VERSION`,
  so a worker from a newer build refuses an old peer's payload loudly
  instead of misinterpreting it.

An *edge group* is ``(ticket, [edges])``: every edge the collector
derived from the single operation that was assigned global ``ticket``.
Grouping per operation (instead of restamping per edge) keeps each
edge's original ``seq`` — the visibility time the estimator and the
pruners reason about — while the ticket orders the group in the
cluster-wide merge.

Keys and BUU ids must round-trip through the codec (JSON by default),
the same constraint :mod:`repro.net.protocol` imposes on wire events:
ints and strings are safe, tuples are not.

:func:`key_partition` also lives here: the one process-stable key →
partition digest shared by the in-process
:class:`~repro.core.concurrent.sharded.ShardedCollector` and the
cluster router, so "which shard owns this key" has exactly one answer
everywhere.
"""

from __future__ import annotations

import zlib

from repro.core.collector import ItemSampler, _splitmix64
from repro.core.types import Edge, EdgeType, Key

__all__ = [
    "FRONTIER_VERSION",
    "FrontierVersionError",
    "decode_edge",
    "decode_frontier",
    "decode_groups",
    "encode_edge",
    "encode_frontier",
    "encode_groups",
    "key_partition",
]

#: Bump when the frontier wire shape changes; decoders refuse mismatches.
FRONTIER_VERSION = 1

#: Salt folded into the placement digest so partition placement and the
#: sampler's chosen-item decision are *independent* hash streams.  Both
#: start from ``crc32(repr(key))``; without the salt, ``chosen(key)``
#: (digest mixed % sr) and ``key_partition`` (digest mixed % n) are the
#: same value mod gcd(sr, n) — at ``sr == num_workers`` one shard owns
#: exactly the chosen items and ends up doing *all* collection and
#: counting while its peers idle.  Placement never affects counts, only
#: balance, so decorrelating is free.
_PLACEMENT_SALT = 0xA0761D6478BD642F


class FrontierVersionError(RuntimeError):
    """A frontier payload was produced by an incompatible build."""


def key_partition(key: Key, num_partitions: int,
                  mask: int | None = None) -> int:
    """The partition owning ``key`` out of ``num_partitions``.

    Must be stable *across processes*, not just within one — checkpoints
    store item bookkeeping per shard, and the cluster router in one
    process must agree with the worker that owns the shard in another.
    Builtin ``hash()`` is randomized per process (PYTHONHASHSEED), so
    the digest is CRC-of-repr like :meth:`ItemSampler.chosen`.

    Int keys (e.g. interned via :class:`~repro.core.types.KeyInterner`)
    take a fast path: dense ids bucket perfectly with ``id & mask`` when
    ``num_partitions`` is a power of two (pass ``mask = n - 1``),
    skipping the repr+CRC entirely.  Both paths are process-stable;
    partition *placement* never affects counts, only contention.
    """
    if type(key) is int:
        if mask is not None:
            return key & mask
        return _splitmix64(key ^ _PLACEMENT_SALT) % num_partitions
    return _splitmix64(zlib.crc32(repr(key).encode())
                       ^ _PLACEMENT_SALT) % num_partitions


# -- edge records --------------------------------------------------------------


def encode_edge(edge: Edge) -> list:
    """One edge as a compact positional record."""
    return [edge.src, edge.dst, edge.kind.value, edge.label, edge.seq]


def decode_edge(record: list) -> Edge:
    """Inverse of :func:`encode_edge`."""
    return Edge(record[0], record[1], EdgeType(record[2]), record[3],
                record[4])


#: Wire value -> enum member (and back): dict lookups instead of the
#: enum value-call / ``.value`` descriptor in the per-edge loops.
_EDGE_TYPES = {member.value: member for member in EdgeType}
_EDGE_WIRE = {member: member.value for member in EdgeType}


def encode_groups(groups) -> list:
    """Encode ``(ticket, [edges])`` groups as positional records."""
    edge_wire = _EDGE_WIRE
    return [[ticket, [[e.src, e.dst, edge_wire[e.kind], e.label, e.seq]
                      for e in edges]]
            for ticket, edges in groups]


def decode_groups(records: list) -> list[tuple[int, list[Edge]]]:
    """Inverse of :func:`encode_groups`."""
    edge_types = _EDGE_TYPES
    return [(ticket, [Edge(r[0], r[1], edge_types[r[2]], r[3], r[4])
                      for r in recs])
            for ticket, recs in records]


# -- frontier payloads ---------------------------------------------------------


def encode_frontier(groups, sampler: ItemSampler | None = None) -> dict:
    """A shard's edge frontier (plus, optionally, its sampler state) as
    one versioned, codec-friendly payload."""
    payload = {"v": FRONTIER_VERSION, "groups": encode_groups(groups)}
    if sampler is not None:
        payload["sampler"] = sampler.to_state()
    return payload


def decode_frontier(payload: dict) -> tuple[list[tuple[int, list[Edge]]],
                                            dict | None]:
    """Decode a frontier payload into ``(groups, sampler_state)``.

    ``sampler_state`` is ``None`` when the sender did not attach one;
    otherwise it feeds :meth:`ItemSampler.load_state` directly.
    """
    version = payload.get("v")
    if version != FRONTIER_VERSION:
        raise FrontierVersionError(
            f"frontier payload version {version!r} != supported "
            f"{FRONTIER_VERSION}; peers must run the same build"
        )
    return decode_groups(payload["groups"]), payload.get("sampler")
