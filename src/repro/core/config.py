"""Configuration for the RushMon monitor."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RushMonConfig:
    """Tunables for :class:`~repro.core.monitor.RushMon`.

    Attributes
    ----------
    sampling_rate:
        The paper's ``sr``: each data item is sampled with ``p = 1/sr``.
        ``1`` disables sampling (the "US" configuration).
    mob:
        Memory-optimized bookkeeping (Algorithm 2).  On by default, as in
        the paper's deployed configuration.
    pruning:
        Detector vertex-pruning strategy: ``"none"``, ``"ect"``,
        ``"distance"`` or ``"both"`` (paper default).
    prune_interval:
        Edges between periodic pruning passes.
    resample_interval:
        Operations between chosen-item re-samples (§5.1 variance
        reduction); ``None`` disables.  The paper uses a 30-second wall
        interval; logical operations are this reproduction's clock.
    count_three_cycles:
        Disable to monitor only 2-cycles.
    seed:
        Seed for all of the monitor's internal randomness.
    """

    sampling_rate: int = 20
    mob: bool = True
    pruning: str = "both"
    prune_interval: int = 1000
    resample_interval: int | None = None
    count_three_cycles: bool = True
    seed: int = 0

    #: Valid ``pruning`` strategies (mirrors repro.core.pruning.make_pruner).
    PRUNING_CHOICES = ("none", "ect", "distance", "both")

    def __post_init__(self) -> None:
        if not isinstance(self.sampling_rate, int) or isinstance(
            self.sampling_rate, bool
        ):
            raise ValueError(
                f"sampling_rate must be an int, got "
                f"{type(self.sampling_rate).__name__}"
            )
        if self.sampling_rate < 1:
            raise ValueError(
                f"sampling_rate must be >= 1 (p = 1/sr), got "
                f"{self.sampling_rate}"
            )
        if not isinstance(self.prune_interval, int) or isinstance(
            self.prune_interval, bool
        ):
            raise ValueError(
                f"prune_interval must be an int, got "
                f"{type(self.prune_interval).__name__}"
            )
        if self.prune_interval < 1:
            raise ValueError(
                f"prune_interval must be > 0 edges between pruning passes, "
                f"got {self.prune_interval}"
            )
        if self.resample_interval is not None and (
            not isinstance(self.resample_interval, int)
            or isinstance(self.resample_interval, bool)
            or self.resample_interval < 1
        ):
            raise ValueError(
                f"resample_interval must be >= 1 operations or None, got "
                f"{self.resample_interval!r}"
            )
        if self.pruning not in self.PRUNING_CHOICES:
            raise ValueError(
                f"pruning must be one of {self.PRUNING_CHOICES}, got "
                f"{self.pruning!r}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(
                f"seed must be an int, got {type(self.seed).__name__}"
            )
