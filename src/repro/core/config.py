"""Configuration for the RushMon monitor."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RushMonConfig:
    """Tunables for :class:`~repro.core.monitor.RushMon`.

    Attributes
    ----------
    sampling_rate:
        The paper's ``sr``: each data item is sampled with ``p = 1/sr``.
        ``1`` disables sampling (the "US" configuration).
    mob:
        Memory-optimized bookkeeping (Algorithm 2).  On by default, as in
        the paper's deployed configuration.
    pruning:
        Detector vertex-pruning strategy: ``"none"``, ``"ect"``,
        ``"distance"`` or ``"both"`` (paper default).
    prune_interval:
        Edges between periodic pruning passes.
    resample_interval:
        Operations between chosen-item re-samples (§5.1 variance
        reduction); ``None`` disables.  The paper uses a 30-second wall
        interval; logical operations are this reproduction's clock.
    count_three_cycles:
        Disable to monitor only 2-cycles.
    seed:
        Seed for all of the monitor's internal randomness.
    """

    sampling_rate: int = 20
    mob: bool = True
    pruning: str = "both"
    prune_interval: int = 1000
    resample_interval: int | None = None
    count_three_cycles: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sampling_rate < 1:
            raise ValueError("sampling_rate must be >= 1")
        if self.prune_interval < 1:
            raise ValueError("prune_interval must be >= 1")
        if self.resample_interval is not None and self.resample_interval < 1:
            raise ValueError("resample_interval must be >= 1 or None")
