"""Configuration for the RushMon monitor family.

:class:`RushMonConfig` is the **single construction path** for every
monitor flavour: the serial :class:`~repro.core.monitor.RushMon` reads
the sampling/detector fields, the concurrent
:class:`~repro.core.concurrent.RushMonService` additionally reads the
service fields (``num_shards`` … ``checkpoint_interval``), and the
multi-process :class:`~repro.cluster.ClusterMonitor` reads the cluster
fields (``num_workers``, ``cluster_batch``).  Fields a flavour does not
use are simply ignored, so one config object can describe a whole
deployment.  Constructing the service with loose keyword arguments
(``RushMonService(cfg, num_shards=4)``) still works but is deprecated —
see :meth:`~repro.core.concurrent.RushMonService.__init__`.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

#: Default ops per ingest/detect batch (service) — mirrored as
#: ``repro.core.concurrent.service.DEFAULT_BATCH_SIZE``.
DEFAULT_BATCH_SIZE = 256

#: Default ops buffered per worker before the cluster router flushes.
DEFAULT_CLUSTER_BATCH = 512


@dataclass
class RushMonConfig:
    """Tunables for :class:`~repro.core.monitor.RushMon` and friends.

    Attributes
    ----------
    sampling_rate:
        The paper's ``sr``: each data item is sampled with ``p = 1/sr``.
        ``1`` disables sampling (the "US" configuration).
    mob:
        Memory-optimized bookkeeping (Algorithm 2).  On by default, as in
        the paper's deployed configuration.
    pruning:
        Detector vertex-pruning strategy: ``"none"``, ``"ect"``,
        ``"distance"`` or ``"both"`` (paper default).
    prune_interval:
        Edges between periodic pruning passes.
    resample_interval:
        Operations between chosen-item re-samples (§5.1 variance
        reduction); ``None`` disables.  The paper uses a 30-second wall
        interval; logical operations are this reproduction's clock.
    count_three_cycles:
        Disable to monitor only 2-cycles.
    columnar:
        Route batched ingest through the vectorized columnar kernel
        (:mod:`repro.core.columnar`) — operations are interned into
        numpy column batches and edges derived as array ops.
        Bit-identical results; silently ignored when numpy is not
        installed (``pip install repro[fast]``).
    seed:
        Seed for all of the monitor's internal randomness.
    num_shards:
        Service: key-hash partitions of the concurrent collector.
    detect_interval:
        Service: seconds between background detection passes.
    journal_capacity / overflow / block_timeout:
        Service: bounded-journal backpressure (see
        :class:`~repro.core.concurrent.sharded.ShardedCollector`).
    max_restarts / restart_backoff / max_backoff:
        Service: detection-thread supervision schedule.
    batch_size:
        Service: ops per ingest/detect batch.
    checkpoint_path / checkpoint_interval:
        Service: periodic crash-consistent checkpointing.
    num_workers:
        Cluster: worker *processes*, each owning a key partition of
        the collector+detector (see :mod:`repro.cluster`).
    cluster_batch:
        Cluster: ops buffered per worker before the router flushes a
        frame to every worker (batching amortizes framing; every
        flush also advances the cross-worker watermarks).
    max_worker_restarts:
        Cluster: respawns allowed *per worker* before the supervisor's
        circuit breaker trips and the cluster runs DEGRADED without
        that shard (mirrors the service's ``max_restarts``).
    snapshot_interval:
        Cluster: router flushes between shard-snapshot rounds.  ``None``
        (the default) ships snapshots adaptively, whenever any worker's
        replay journal reaches half of ``replay_journal_capacity``.
    replay_journal_capacity:
        Cluster: control frames the router retains per worker for
        respawn-and-replay (and broadcasts each worker retains for peer
        resume).  A respawn whose snapshot falls outside the retained
        window cannot be replayed bit-exactly and degrades instead.
    loop_threads:
        Serving: event-loop threads multiplexing connections in
        :class:`~repro.net.server.RushMonServer` (``0`` = legacy
        thread-per-connection transport).
    max_connections:
        Serving: admission-control cap on concurrent connections;
        ``None`` = unlimited.
    idle_timeout:
        Serving: seconds of connection silence before disconnect;
        ``None`` disables the idle deadline.
    drain_timeout:
        Serving: hard bound on total graceful-drain time, seconds.
    """

    sampling_rate: int = 20
    mob: bool = True
    pruning: str = "both"
    prune_interval: int = 1000
    resample_interval: int | None = None
    count_three_cycles: bool = True
    columnar: bool = False
    seed: int = 0
    # -- service (repro.core.concurrent.RushMonService) ----------------
    num_shards: int = 8
    detect_interval: float = 0.05
    journal_capacity: int | None = None
    overflow: str = "block"
    block_timeout: float = 5.0
    max_restarts: int = 5
    restart_backoff: float = 0.05
    max_backoff: float = 2.0
    batch_size: int = DEFAULT_BATCH_SIZE
    checkpoint_path: str | None = None
    checkpoint_interval: int | None = None
    # -- cluster (repro.cluster.ClusterMonitor) ------------------------
    num_workers: int = 4
    cluster_batch: int = DEFAULT_CLUSTER_BATCH
    max_worker_restarts: int = 3
    snapshot_interval: int | None = None
    replay_journal_capacity: int = 4096
    # -- serving (repro.net.server.RushMonServer) ----------------------
    loop_threads: int = 2
    max_connections: int | None = None
    idle_timeout: float | None = 30.0
    drain_timeout: float = 5.0

    #: Valid ``pruning`` strategies (mirrors repro.core.pruning.make_pruner).
    PRUNING_CHOICES = ("none", "ect", "distance", "both")

    @classmethod
    def from_cli_args(cls, args: argparse.Namespace) -> "RushMonConfig":
        """Build a config from an ``argparse`` namespace.

        Understands the flag names the CLI uses (``--sampling-rate``,
        ``--no-mob``, ``--shards``, ``--workers`` …); flags absent from
        the namespace fall back to the dataclass defaults, so every
        subcommand — whichever argument groups it registered — goes
        through this one path.
        """
        defaults = cls()

        def pick(attr: str, default):
            value = getattr(args, attr, None)
            return default if value is None else value

        # --idle-timeout 0 means "no idle deadline" on the CLI.
        idle = getattr(args, "idle_timeout", None)
        idle_timeout = defaults.idle_timeout if idle is None \
            else (idle or None)
        return cls(
            sampling_rate=pick("sampling_rate", defaults.sampling_rate),
            mob=not getattr(args, "no_mob", False),
            pruning=pick("pruning", defaults.pruning),
            columnar=bool(getattr(args, "columnar", False)),
            seed=pick("seed", defaults.seed),
            resample_interval=getattr(args, "resample_interval", None),
            num_shards=pick("shards", defaults.num_shards),
            detect_interval=pick("detect_interval", defaults.detect_interval),
            journal_capacity=getattr(args, "journal_capacity", None),
            overflow=pick("overflow", defaults.overflow),
            max_restarts=pick("max_restarts", defaults.max_restarts),
            batch_size=pick("batch_size", defaults.batch_size),
            checkpoint_path=getattr(args, "checkpoint", None),
            # --workers 0 means "no cluster" on the CLI; keep the config
            # default so the value always validates.
            num_workers=getattr(args, "workers", None)
            or defaults.num_workers,
            max_worker_restarts=pick(
                "max_worker_restarts", defaults.max_worker_restarts
            ),
            snapshot_interval=getattr(args, "snapshot_interval", None),
            replay_journal_capacity=pick(
                "replay_journal_capacity", defaults.replay_journal_capacity
            ),
            loop_threads=pick("loop_threads", defaults.loop_threads),
            max_connections=getattr(args, "max_connections", None),
            idle_timeout=idle_timeout,
            drain_timeout=pick("drain_timeout", defaults.drain_timeout),
        )

    def __post_init__(self) -> None:
        if not isinstance(self.sampling_rate, int) or isinstance(
            self.sampling_rate, bool
        ):
            raise ValueError(
                f"sampling_rate must be an int, got "
                f"{type(self.sampling_rate).__name__}"
            )
        if self.sampling_rate < 1:
            raise ValueError(
                f"sampling_rate must be >= 1 (p = 1/sr), got "
                f"{self.sampling_rate}"
            )
        if not isinstance(self.prune_interval, int) or isinstance(
            self.prune_interval, bool
        ):
            raise ValueError(
                f"prune_interval must be an int, got "
                f"{type(self.prune_interval).__name__}"
            )
        if self.prune_interval < 1:
            raise ValueError(
                f"prune_interval must be > 0 edges between pruning passes, "
                f"got {self.prune_interval}"
            )
        if self.resample_interval is not None and (
            not isinstance(self.resample_interval, int)
            or isinstance(self.resample_interval, bool)
            or self.resample_interval < 1
        ):
            raise ValueError(
                f"resample_interval must be >= 1 operations or None, got "
                f"{self.resample_interval!r}"
            )
        if self.pruning not in self.PRUNING_CHOICES:
            raise ValueError(
                f"pruning must be one of {self.PRUNING_CHOICES}, got "
                f"{self.pruning!r}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(
                f"seed must be an int, got {type(self.seed).__name__}"
            )
        if not isinstance(self.columnar, bool):
            raise ValueError(
                f"columnar must be a bool, got "
                f"{type(self.columnar).__name__}"
            )
        # -- service fields (validated here so RushMonService can trust
        # -- any config object it is handed) -----------------------------
        if self.detect_interval <= 0:
            raise ValueError("detect_interval must be > 0")
        if not isinstance(self.batch_size, int) or isinstance(
            self.batch_size, bool
        ) or self.batch_size < 1:
            raise ValueError(
                f"batch_size must be an integer >= 1 (ops per shard-lock "
                f"acquisition on ingest and per detector feed on the "
                f"detection pass), got {self.batch_size!r}; the default "
                f"{DEFAULT_BATCH_SIZE} suits most workloads"
            )
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.restart_backoff <= 0 or self.max_backoff <= 0:
            raise ValueError("restart_backoff and max_backoff must be > 0")
        if self.checkpoint_interval is not None:
            if self.checkpoint_interval < 1:
                raise ValueError("checkpoint_interval must be >= 1 passes")
            if self.checkpoint_path is None:
                raise ValueError(
                    "checkpoint_interval needs a checkpoint_path to write to"
                )
        # -- cluster fields ----------------------------------------------
        if not isinstance(self.num_workers, int) or isinstance(
            self.num_workers, bool
        ) or self.num_workers < 1:
            raise ValueError(
                f"num_workers must be an integer >= 1 worker process, got "
                f"{self.num_workers!r}"
            )
        if not isinstance(self.cluster_batch, int) or isinstance(
            self.cluster_batch, bool
        ) or self.cluster_batch < 1:
            raise ValueError(
                f"cluster_batch must be an integer >= 1 ops buffered per "
                f"worker between router flushes, got {self.cluster_batch!r}"
            )
        if not isinstance(self.max_worker_restarts, int) or isinstance(
            self.max_worker_restarts, bool
        ) or self.max_worker_restarts < 0:
            raise ValueError(
                f"max_worker_restarts must be an integer >= 0 respawns per "
                f"worker before the circuit breaker trips, got "
                f"{self.max_worker_restarts!r}"
            )
        if self.snapshot_interval is not None and (
            not isinstance(self.snapshot_interval, int)
            or isinstance(self.snapshot_interval, bool)
            or self.snapshot_interval < 1
        ):
            raise ValueError(
                f"snapshot_interval must be >= 1 router flushes between "
                f"snapshot rounds, or None for journal-pressure-driven "
                f"snapshots, got {self.snapshot_interval!r}"
            )
        if not isinstance(self.replay_journal_capacity, int) or isinstance(
            self.replay_journal_capacity, bool
        ) or self.replay_journal_capacity < 1:
            raise ValueError(
                f"replay_journal_capacity must be an integer >= 1 retained "
                f"control frames per worker, got "
                f"{self.replay_journal_capacity!r}"
            )
        # -- serving fields ----------------------------------------------
        if not isinstance(self.loop_threads, int) or isinstance(
            self.loop_threads, bool
        ) or self.loop_threads < 0:
            raise ValueError(
                f"loop_threads must be an integer >= 0 event-loop threads "
                f"(0 = thread-per-connection transport), got "
                f"{self.loop_threads!r}"
            )
        if self.max_connections is not None and (
            not isinstance(self.max_connections, int)
            or isinstance(self.max_connections, bool)
            or self.max_connections < 1
        ):
            raise ValueError(
                f"max_connections must be an integer >= 1 concurrent "
                f"connections, or None for unlimited, got "
                f"{self.max_connections!r}"
            )
        if self.idle_timeout is not None and self.idle_timeout <= 0:
            raise ValueError(
                f"idle_timeout must be > 0 seconds, or None to disable "
                f"the idle deadline, got {self.idle_timeout!r}"
            )
        if self.drain_timeout <= 0:
            raise ValueError(
                f"drain_timeout must be > 0 seconds of total graceful-"
                f"drain budget, got {self.drain_timeout!r}"
            )
