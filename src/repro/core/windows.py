"""Rate tracking over monitoring windows: sliding means and EWMA.

The monitor emits one :class:`~repro.core.types.AnomalyReport` per
window; consumers (dashboards, the controller) usually want a smoothed
rate rather than raw per-window counts.  Two standard smoothers:

- :class:`SlidingWindowRate` — mean anomaly rate over the last N
  windows (uniform weight, bounded memory);
- :class:`EwmaRate` — exponentially weighted moving average, reacting
  faster to regime changes (like the Fig 8 staleness switch).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.types import AnomalyReport


def report_rate(report: AnomalyReport) -> float:
    """Anomalies per unit of simulated time for one window."""
    window = max(1, report.window_end - report.window_start)
    return report.anomalies / window


class SlidingWindowRate:
    """Mean rate over the most recent ``size`` windows."""

    def __init__(self, size: int = 10) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        self._window: deque[float] = deque(maxlen=size)

    def observe(self, report: AnomalyReport) -> float:
        self._window.append(report_rate(report))
        return self.value

    def observe_rate(self, rate: float) -> float:
        self._window.append(rate)
        return self.value

    @property
    def value(self) -> float:
        if not self._window:
            return 0.0
        return sum(self._window) / len(self._window)

    @property
    def samples(self) -> int:
        return len(self._window)


@dataclass
class EwmaRate:
    """Exponentially weighted moving average of the anomaly rate.

    ``alpha`` is the weight of the newest observation; 1.0 degenerates
    to "latest value", small alphas smooth aggressively.
    """

    alpha: float = 0.3
    value: float = 0.0
    samples: int = field(default=0)

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")

    def observe(self, report: AnomalyReport) -> float:
        return self.observe_rate(report_rate(report))

    def observe_rate(self, rate: float) -> float:
        if self.samples == 0:
            self.value = rate
        else:
            self.value = self.alpha * rate + (1.0 - self.alpha) * self.value
        self.samples += 1
        return self.value
