"""Classifying 2-cycles into the classic ANSI isolation anomalies.

Section 3 motivates cycle counting by noting that the traditional
anomaly taxonomy (Berenson et al., "A Critique of ANSI SQL Isolation
Levels") — lost update, unrepeatable read, read skew, write skew — is a
set of *specific cycle patterns* and is not exhaustive.  This module
implements the mapping for 2-cycles, so the monitor can report not only
how much chaos there is but what *kind*:

===================  ==========================  ==========================
pattern              edge types (unordered)      items
===================  ==========================  ==========================
lost update          rw + ww                     same item
unrepeatable read    rw + wr                     same item
read skew            rw + wr                     different items
write skew           rw + rw                     different items
dirty write cycle    ww + ww / ww + wr           any
read cycle           wr + wr                     any
other                anything else               —
===================  ==========================  ==========================

Worked derivations (using Algorithm 1's edge rules):

- *Lost update*: ``r1(x) r2(x) w1(x) w2(x)`` gives ``rw T2→T1 (x)`` and
  ``ww T1→T2 (x)``.
- *Unrepeatable read*: ``r1(x) w2(x) r1(x)`` gives ``rw T1→T2 (x)`` and
  ``wr T2→T1 (x)``.
- *Read skew*: ``r1(x) w2(x) w2(y) r1(y)`` gives ``rw T1→T2 (x)`` and
  ``wr T2→T1 (y)`` — same shape as unrepeatable read but across items.
- *Write skew*: ``r1(x) r2(y) w1(y) w2(x)`` gives ``rw T2→T1 (y)`` and
  ``rw T1→T2 (x)``.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field

from repro.core.types import EdgeType, Key


class AnomalyPattern(enum.Enum):
    """The classic anomaly taxonomy, as 2-cycle shapes."""

    LOST_UPDATE = "lost_update"
    UNREPEATABLE_READ = "unrepeatable_read"
    READ_SKEW = "read_skew"
    WRITE_SKEW = "write_skew"
    DIRTY_WRITE_CYCLE = "dirty_write_cycle"
    READ_CYCLE = "read_cycle"
    OTHER = "other"


def classify_two_cycle(
    kind_a: EdgeType, label_a: Key, kind_b: EdgeType, label_b: Key
) -> AnomalyPattern:
    """Classify a 2-cycle from its two edges' types and item labels."""
    kinds = frozenset((kind_a, kind_b)) if kind_a != kind_b else frozenset((kind_a,))
    same_item = label_a == label_b
    if kinds == frozenset((EdgeType.RW, EdgeType.WW)):
        return (AnomalyPattern.LOST_UPDATE if same_item
                else AnomalyPattern.OTHER)
    if kinds == frozenset((EdgeType.RW, EdgeType.WR)):
        return (AnomalyPattern.UNREPEATABLE_READ if same_item
                else AnomalyPattern.READ_SKEW)
    if kinds == frozenset((EdgeType.RW,)):
        return (AnomalyPattern.WRITE_SKEW if not same_item
                else AnomalyPattern.OTHER)
    if EdgeType.WW in kinds and EdgeType.RW not in kinds:
        return AnomalyPattern.DIRTY_WRITE_CYCLE
    if kinds == frozenset((EdgeType.WR,)):
        return AnomalyPattern.READ_CYCLE
    return AnomalyPattern.OTHER


@dataclass
class PatternCounts:
    """Running tally of classified 2-cycles."""

    counts: Counter = field(default_factory=Counter)

    def record(self, pattern: AnomalyPattern) -> None:
        self.counts[pattern] += 1

    def get(self, pattern: AnomalyPattern) -> int:
        return self.counts.get(pattern, 0)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def as_dict(self) -> dict[str, int]:
        return {pattern.value: count for pattern, count in self.counts.items()}

    def copy(self) -> "PatternCounts":
        return PatternCounts(Counter(self.counts))
