"""The RushMon monitor facade and the offline baseline monitor.

:class:`RushMon` wires a :class:`~repro.core.collector.DataCentricCollector`
to a :class:`~repro.core.detector.CycleDetector` (with pruning) and exposes
windowed, estimator-corrected anomaly reports — the real-time monitor of
Section 5.

:class:`OfflineAnomalyMonitor` is the Section 4 baseline: full Algorithm 1
collection into an explicit dependency graph, counted exactly after the
fact.  It is the ground truth the benches compare against.

Both (plus the concurrent :class:`~repro.core.concurrent.RushMonService`)
implement the unified :class:`~repro.core.api.AnomalyMonitor` surface —
``begin_buu``/``commit_buu``/``on_operation(s)`` for ingestion and
``close_window()``/``latest_report()``/``reports``/
``cumulative_estimates()`` for reporting — so drivers and callers never
branch on monitor flavour.
"""

from __future__ import annotations

import warnings
from typing import Iterable

from repro.core.collector import BaselineCollector, DataCentricCollector
from repro.core.columnar import HAVE_NUMPY, EdgeBatch, OpBatch
from repro.core.config import RushMonConfig
from repro.core.detector import CycleDetector
from repro.core.estimator import estimate_three_cycles, estimate_two_cycles
from repro.core.pruning import make_pruner
from repro.core.types import (
    AnomalyReport,
    BuuId,
    CycleCounts,
    EdgeStats,
    Key,
    KeyInterner,
    Operation,
)
from repro.obs.instrument import instrument_serial_monitor
from repro.obs.metrics import MetricsRegistry


class WindowTracker:
    """Accumulates one monitoring window's raw counts and closes it into
    an :class:`~repro.core.types.AnomalyReport`.

    Shared by the serial :class:`RushMon` facade and the concurrent
    :class:`~repro.core.concurrent.RushMonService`, so windowing and
    report construction have exactly one implementation.  The tracker
    owns no locking; callers serialize access (RushMon is
    single-threaded, the service feeds it only from its detection
    thread).
    """

    def __init__(self, detector: CycleDetector, start: int = 0) -> None:
        self.detector = detector
        self.raw = CycleCounts()
        self.edges = EdgeStats()
        self.ops = 0
        self.window_start = start
        self._pattern_snapshot = detector.patterns.copy()

    def observe_operation(self) -> None:
        self.ops += 1

    def observe_operations(self, count: int) -> None:
        self.ops += count

    def observe_edge(self, edge) -> None:
        """Feed one collected edge to the detector, window-attributed."""
        self.edges.record(edge.kind)
        self.raw.add(self.detector.add_edge(edge))

    def observe_edges(self, edges) -> None:
        """Batched :meth:`observe_edge` (same counts, one detector call).
        Accepts a list of edges or a columnar
        :class:`~repro.core.columnar.EdgeBatch` (per-kind tallies ride
        on the batch, so no per-edge stats loop is needed)."""
        if not edges:
            return
        stats = self.edges
        if isinstance(edges, EdgeBatch):
            stats.wr += edges.wr
            stats.ww += edges.ww
            stats.rw += edges.rw
        else:
            for edge in edges:
                stats.record(edge.kind)
        self.raw.add(self.detector.add_edge_batch(edges))

    def close(self, end: int, probability: float,
              health: str = "ok") -> AnomalyReport:
        """Close the current window and return its report; the tracker
        resets and the next window starts at ``end``.  ``health`` is
        stamped onto the report so a degraded concurrent service cannot
        publish a window that looks healthy."""
        est2 = estimate_two_cycles(self.raw, probability)
        est3 = estimate_three_cycles(self.raw, probability)
        current_patterns = self.detector.patterns
        window_patterns = {
            pattern.value: count - self._pattern_snapshot.counts.get(pattern, 0)
            for pattern, count in current_patterns.counts.items()
            if count > self._pattern_snapshot.counts.get(pattern, 0)
        }
        rep = AnomalyReport(
            window_start=self.window_start,
            window_end=end,
            estimated_2=est2,
            estimated_3=est3,
            raw=self.raw.copy(),
            edges=self.edges.copy(),
            operations=self.ops,
            patterns=window_patterns,
            health=health,
        )
        self.raw = CycleCounts()
        self.edges = EdgeStats()
        self.ops = 0
        self.window_start = end
        self._pattern_snapshot = current_patterns.copy()
        return rep


class RushMon:
    """Real-time isolation anomalies monitor.

    Feed it the lifecycle and operation stream of your BUUs:

    >>> mon = RushMon(RushMonConfig(sampling_rate=1, mob=False))
    >>> mon.begin_buu(1, 0); mon.begin_buu(2, 0)
    >>> from repro.core.types import Operation, OpType
    >>> for op in [Operation(OpType.READ, 1, "x", 1),
    ...            Operation(OpType.READ, 2, "x", 2),
    ...            Operation(OpType.WRITE, 1, "x", 3),
    ...            Operation(OpType.WRITE, 2, "x", 4)]:
    ...     mon.on_operation(op)
    >>> mon.commit_buu(1, 5); mon.commit_buu(2, 5)
    >>> report = mon.close_window()
    >>> report.estimated_2  # the classic lost update: one 2-cycle
    1.0
    """

    def __init__(
        self,
        config: RushMonConfig | None = None,
        items: Iterable[Key] | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or RushMonConfig()
        self.collector = DataCentricCollector(
            sampling_rate=self.config.sampling_rate,
            mob=self.config.mob,
            items=items,
            seed=self.config.seed,
            resample_interval=self.config.resample_interval,
        )
        self.detector = CycleDetector(
            pruner=make_pruner(self.config.pruning),
            prune_interval=self.config.prune_interval,
            count_three=self.config.count_three_cycles,
        )
        self._window = WindowTracker(self.detector)
        self._now = 0
        # --columnar: batches are interned into OpBatch columns and take
        # the vectorized kernel; a no-numpy install silently keeps the
        # (bit-identical) per-op path.
        self._columnar = bool(self.config.columnar) and HAVE_NUMPY
        self._interner = None
        self.reports: list[AnomalyReport] = []
        # Observability is callback-only on the serial path (zero
        # hot-path cost): every reading is pulled from existing counters
        # at snapshot time.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        instrument_serial_monitor(self.metrics, self)

    # -- BUU lifecycle -------------------------------------------------------

    def begin_buu(self, buu: BuuId, start_time: int | None = None) -> None:
        self.detector.begin_buu(buu, self._time(start_time))

    def commit_buu(self, buu: BuuId, commit_time: int | None = None) -> None:
        self.detector.commit_buu(buu, self._time(commit_time))

    def _time(self, explicit: int | None) -> int:
        if explicit is not None:
            self._now = max(self._now, explicit)
            return explicit
        return self._now

    # -- operation ingestion ---------------------------------------------------

    def on_operation(self, op: Operation) -> None:
        """Observe one read/write in its storage visibility order."""
        self._now = max(self._now, op.seq)
        self._window.observe_operation()
        for edge in self.collector.handle(op):
            self._window.observe_edge(edge)

    def on_operations(self, ops: Iterable[Operation]) -> None:
        """Batched :meth:`on_operation`: one fused collector pass, one
        detector batch.  Identical counts to per-op ingestion (collector
        state never depends on detector state, per-key edge order is
        preserved, and windows only close on explicit
        :meth:`close_window` calls).

        Accepts a columnar :class:`~repro.core.columnar.OpBatch`
        directly; with ``config.columnar`` set, plain operation
        sequences are interned into one first."""
        if not isinstance(ops, OpBatch):
            if not isinstance(ops, (list, tuple)):
                ops = list(ops)
            if not ops:
                return
            if self._columnar:
                if self._interner is None:
                    self._interner = KeyInterner()
                ops = OpBatch.from_ops(ops, self._interner)
        if isinstance(ops, OpBatch):
            if not len(ops):
                return
            edges = self.collector.handle_batch(ops)
            now = max(self._now, ops.max_seq())
        else:
            edges = self.collector.handle_batch(ops)
            now = self._now
            for op in ops:
                if op.seq > now:
                    now = op.seq
        self._now = now
        self._window.observe_operations(len(ops))
        self._window.observe_edges(edges)

    # -- reporting ---------------------------------------------------------------

    @property
    def sampling_probability(self) -> float:
        return self.collector.sampling_probability

    def estimates(self, raw: CycleCounts | None = None) -> tuple[float, float]:
        """Unbiased (E2, E3) for ``raw`` (default: the current window)."""
        raw = raw if raw is not None else self._window.raw
        p = self.sampling_probability
        return estimate_two_cycles(raw, p), estimate_three_cycles(raw, p)

    def close_window(self, now: int | None = None) -> AnomalyReport:
        """Close the current monitoring window and return its anomaly
        report.  The canonical :class:`~repro.core.api.AnomalyMonitor`
        verb; the next window starts where this one ended."""
        end = self._time(now)
        rep = self._window.close(end, self.sampling_probability)
        self.reports.append(rep)
        return rep

    def report(self, now: int | None = None) -> AnomalyReport:
        """Deprecated alias of :meth:`close_window`.

        .. deprecated:: 1.0
           Call :meth:`close_window` — the verb every monitor shares
           (see :mod:`repro.core.api`).  This alias warns now and will
           be removed in the next release.
        """
        warnings.warn(
            "RushMon.report() is deprecated; call close_window() instead "
            "(the canonical AnomalyMonitor verb, see repro.core.api). "
            "report() will be removed in the next release.",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.close_window(now)

    def latest_report(self) -> AnomalyReport | None:
        """The most recently closed window's report (``None`` if no
        window has been closed yet)."""
        return self.reports[-1] if self.reports else None

    def cumulative_estimates(self) -> tuple[float, float]:
        """Unbiased (E2, E3) over everything observed since construction."""
        return self.estimates(self.detector.counts)


class OfflineAnomalyMonitor:
    """Section 4's baseline: exact, offline anomaly counting.

    Collects every edge with Algorithm 1 into an explicit dependency
    graph; :meth:`exact_counts` runs the exact labelled cycle counter.
    Too slow for real-time use — which is the paper's premise — but the
    ground truth for every accuracy comparison.

    Implements the full :class:`~repro.core.api.AnomalyMonitor` surface:
    lifecycle events are recorded (the exact counter does not need them,
    but drivers deliver one stream to every monitor flavour), and
    :meth:`close_window` materializes an exact
    :class:`~repro.core.types.AnomalyReport` for the cycles and
    operations that arrived since the previous close (``estimated_`` ==
    raw, since ``p = 1``).
    """

    def __init__(self) -> None:
        # Imported lazily: repro.graph depends on repro.core.types, so a
        # module-level import from the core package would be circular.
        from repro.graph.dependency import DependencyGraph

        self.collector = BaselineCollector()
        self.graph = DependencyGraph()
        self.reports: list[AnomalyReport] = []
        self.begins: dict[BuuId, int] = {}
        self.commits: dict[BuuId, int] = {}
        self._now = 0
        self._window_start = 0
        self._window_ops = 0
        self._counted = CycleCounts()
        self._edges_snapshot = EdgeStats()

    # -- ingestion (MonitorListener) -----------------------------------------

    def begin_buu(self, buu: BuuId, start_time: int | None = None) -> None:
        when = self._now if start_time is None else start_time
        self.begins.setdefault(buu, when)
        self._now = max(self._now, when)

    def commit_buu(self, buu: BuuId, commit_time: int | None = None) -> None:
        when = self._now if commit_time is None else commit_time
        self.commits[buu] = when
        self._now = max(self._now, when)

    def on_operation(self, op: Operation) -> None:
        self._now = max(self._now, op.seq)
        self._window_ops += 1
        for edge in self.collector.handle(op):
            self.graph.add_edge(edge)

    def on_operations(self, ops: Iterable[Operation]) -> None:
        for op in ops:
            self.on_operation(op)

    # -- exact counting --------------------------------------------------------

    def exact_counts(self) -> CycleCounts:
        from repro.graph.cycles import count_labelled_short_cycles

        return count_labelled_short_cycles(self.graph)

    # -- reporting (AnomalyMonitor) --------------------------------------------

    def close_window(self, now: int | None = None) -> AnomalyReport:
        """Close the current window: exact cycle/edge/operation deltas
        since the previous close, as an :class:`AnomalyReport`.

        Runs the exact counter over the full graph (O(graph) — this is
        the offline baseline; windowing exists for API parity, not
        speed).
        """
        end = self._time(now)
        cumulative = self.exact_counts()
        raw = CycleCounts(
            ss=cumulative.ss - self._counted.ss,
            dd=cumulative.dd - self._counted.dd,
            sss=cumulative.sss - self._counted.sss,
            ssd=cumulative.ssd - self._counted.ssd,
            ddd=cumulative.ddd - self._counted.ddd,
        )
        stats = self.collector.stats
        edges = EdgeStats(
            wr=stats.wr - self._edges_snapshot.wr,
            ww=stats.ww - self._edges_snapshot.ww,
            rw=stats.rw - self._edges_snapshot.rw,
        )
        rep = AnomalyReport(
            window_start=self._window_start,
            window_end=end,
            estimated_2=float(raw.two_cycles),
            estimated_3=float(raw.three_cycles),
            raw=raw,
            edges=edges,
            operations=self._window_ops,
        )
        self.reports.append(rep)
        self._counted = cumulative
        self._edges_snapshot = stats.copy()
        self._window_start = end
        self._window_ops = 0
        return rep

    def latest_report(self) -> AnomalyReport | None:
        """The most recently closed window's report (``None`` if none)."""
        return self.reports[-1] if self.reports else None

    def cumulative_estimates(self) -> tuple[float, float]:
        """Exact lifetime (2-cycles, 3-cycles) as floats — the offline
        baseline's "estimate" is the ground truth (``p = 1``)."""
        counts = self.exact_counts()
        return float(counts.two_cycles), float(counts.three_cycles)

    def _time(self, explicit: int | None) -> int:
        if explicit is not None:
            self._now = max(self._now, explicit)
            return explicit
        return self._now
