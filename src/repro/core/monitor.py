"""The RushMon monitor facade and the offline baseline monitor.

:class:`RushMon` wires a :class:`~repro.core.collector.DataCentricCollector`
to a :class:`~repro.core.detector.CycleDetector` (with pruning) and exposes
windowed, estimator-corrected anomaly reports — the real-time monitor of
Section 5.

:class:`OfflineAnomalyMonitor` is the Section 4 baseline: full Algorithm 1
collection into an explicit dependency graph, counted exactly after the
fact.  It is the ground truth the benches compare against.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.collector import BaselineCollector, DataCentricCollector
from repro.core.config import RushMonConfig
from repro.core.detector import CycleDetector
from repro.core.estimator import estimate_three_cycles, estimate_two_cycles
from repro.core.pruning import make_pruner
from repro.core.types import (
    AnomalyReport,
    BuuId,
    CycleCounts,
    EdgeStats,
    Key,
    Operation,
)


class WindowTracker:
    """Accumulates one monitoring window's raw counts and closes it into
    an :class:`~repro.core.types.AnomalyReport`.

    Shared by the serial :class:`RushMon` facade and the concurrent
    :class:`~repro.core.concurrent.RushMonService`, so windowing and
    report construction have exactly one implementation.  The tracker
    owns no locking; callers serialize access (RushMon is
    single-threaded, the service feeds it only from its detection
    thread).
    """

    def __init__(self, detector: CycleDetector, start: int = 0) -> None:
        self.detector = detector
        self.raw = CycleCounts()
        self.edges = EdgeStats()
        self.ops = 0
        self.window_start = start
        self._pattern_snapshot = detector.patterns.copy()

    def observe_operation(self) -> None:
        self.ops += 1

    def observe_edge(self, edge) -> None:
        """Feed one collected edge to the detector, window-attributed."""
        self.edges.record(edge.kind)
        self.raw.add(self.detector.add_edge(edge))

    def close(self, end: int, probability: float) -> AnomalyReport:
        """Close the current window and return its report; the tracker
        resets and the next window starts at ``end``."""
        est2 = estimate_two_cycles(self.raw, probability)
        est3 = estimate_three_cycles(self.raw, probability)
        current_patterns = self.detector.patterns
        window_patterns = {
            pattern.value: count - self._pattern_snapshot.counts.get(pattern, 0)
            for pattern, count in current_patterns.counts.items()
            if count > self._pattern_snapshot.counts.get(pattern, 0)
        }
        rep = AnomalyReport(
            window_start=self.window_start,
            window_end=end,
            estimated_2=est2,
            estimated_3=est3,
            raw=self.raw.copy(),
            edges=self.edges.copy(),
            operations=self.ops,
            patterns=window_patterns,
        )
        self.raw = CycleCounts()
        self.edges = EdgeStats()
        self.ops = 0
        self.window_start = end
        self._pattern_snapshot = current_patterns.copy()
        return rep


class RushMon:
    """Real-time isolation anomalies monitor.

    Feed it the lifecycle and operation stream of your BUUs:

    >>> mon = RushMon(RushMonConfig(sampling_rate=1, mob=False))
    >>> mon.begin_buu(1, 0); mon.begin_buu(2, 0)
    >>> from repro.core.types import Operation, OpType
    >>> for op in [Operation(OpType.READ, 1, "x", 1),
    ...            Operation(OpType.READ, 2, "x", 2),
    ...            Operation(OpType.WRITE, 1, "x", 3),
    ...            Operation(OpType.WRITE, 2, "x", 4)]:
    ...     mon.on_operation(op)
    >>> mon.commit_buu(1, 5); mon.commit_buu(2, 5)
    >>> report = mon.report()
    >>> report.estimated_2  # the classic lost update: one 2-cycle
    1.0
    """

    def __init__(
        self,
        config: RushMonConfig | None = None,
        items: Iterable[Key] | None = None,
    ) -> None:
        self.config = config or RushMonConfig()
        self.collector = DataCentricCollector(
            sampling_rate=self.config.sampling_rate,
            mob=self.config.mob,
            items=items,
            seed=self.config.seed,
            resample_interval=self.config.resample_interval,
        )
        self.detector = CycleDetector(
            pruner=make_pruner(self.config.pruning),
            prune_interval=self.config.prune_interval,
            count_three=self.config.count_three_cycles,
        )
        self._window = WindowTracker(self.detector)
        self._now = 0
        self.reports: list[AnomalyReport] = []

    # -- BUU lifecycle -------------------------------------------------------

    def begin_buu(self, buu: BuuId, start_time: int | None = None) -> None:
        self.detector.begin_buu(buu, self._time(start_time))

    def commit_buu(self, buu: BuuId, commit_time: int | None = None) -> None:
        self.detector.commit_buu(buu, self._time(commit_time))

    def _time(self, explicit: int | None) -> int:
        if explicit is not None:
            self._now = max(self._now, explicit)
            return explicit
        return self._now

    # -- operation ingestion ---------------------------------------------------

    def on_operation(self, op: Operation) -> None:
        """Observe one read/write in its storage visibility order."""
        self._now = max(self._now, op.seq)
        self._window.observe_operation()
        for edge in self.collector.handle(op):
            self._window.observe_edge(edge)

    def on_operations(self, ops: Iterable[Operation]) -> None:
        for op in ops:
            self.on_operation(op)

    # -- reporting ---------------------------------------------------------------

    @property
    def sampling_probability(self) -> float:
        return self.collector.sampling_probability

    def estimates(self, raw: CycleCounts | None = None) -> tuple[float, float]:
        """Unbiased (E2, E3) for ``raw`` (default: the current window)."""
        raw = raw if raw is not None else self._window.raw
        p = self.sampling_probability
        return estimate_two_cycles(raw, p), estimate_three_cycles(raw, p)

    def report(self, now: int | None = None) -> AnomalyReport:
        """Close the current window and return its anomaly report."""
        end = self._time(now)
        rep = self._window.close(end, self.sampling_probability)
        self.reports.append(rep)
        return rep

    def cumulative_estimates(self) -> tuple[float, float]:
        """Unbiased (E2, E3) over everything observed since construction."""
        return self.estimates(self.detector.counts)


class OfflineAnomalyMonitor:
    """Section 4's baseline: exact, offline anomaly counting.

    Collects every edge with Algorithm 1 into an explicit dependency
    graph; :meth:`exact_counts` runs the exact labelled cycle counter.
    Too slow for real-time use — which is the paper's premise — but the
    ground truth for every accuracy comparison.
    """

    def __init__(self) -> None:
        # Imported lazily: repro.graph depends on repro.core.types, so a
        # module-level import from the core package would be circular.
        from repro.graph.dependency import DependencyGraph

        self.collector = BaselineCollector()
        self.graph = DependencyGraph()

    def on_operation(self, op: Operation) -> None:
        for edge in self.collector.handle(op):
            self.graph.add_edge(edge)

    def on_operations(self, ops: Iterable[Operation]) -> None:
        for op in ops:
            self.on_operation(op)

    def exact_counts(self) -> CycleCounts:
        from repro.graph.cycles import count_labelled_short_cycles

        return count_labelled_short_cycles(self.graph)
