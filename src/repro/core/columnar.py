"""Columnar batch ingest: parallel-array operation batches + kernels.

The per-op hot path (``DataCentricCollector.handle_batch``) spends most
of its time on python-object plumbing: one ``Operation`` NamedTuple per
event, one dict probe per op, one attribute walk per bookkeeping field.
This module provides the representation change ROADMAP item 2 calls for:

- :class:`OpBatch` — one batch of operations as parallel arrays
  (op-type code, interned key id, txn id, seq, read-value id) sharing a
  :class:`~repro.core.types.KeyInterner`, built from ``Operation``
  sequences (:meth:`OpBatch.from_ops`), raw columns
  (:meth:`OpBatch.from_columns`) or wire event records
  (:meth:`OpBatch.from_events`).
- :class:`EdgeBatch` — derived dependency edges as parallel arrays
  (src, dst, kind code, label id, seq) plus the original op row each
  edge was attributed to, so the flattened edge stream is *exactly* the
  per-op emission order.
- Vectorized kernels: DCS sampling as one boolean gather per batch
  (bit-identical to the per-op :class:`~repro.core.collector.ItemSampler`
  decision stream — the sampler is a pure function of ``(key, salt,
  sr)``, so a per-key-id decision cache reproduces it exactly),
  per-key grouping via one stable argsort on the key-id column, and
  wr/ww/rw edge derivation (Section 2.1) as array ops.

Bit-exactness (the differential contract)
-----------------------------------------

The MOB kernel must consume the shard RNG in *exactly* the per-op draw
order: one reservoir coin per full-reservoir read and one ww-discard
coin per empty-count write, in original operation order.  Everything
*around* those draws is RNG-free and precomputable — read counts,
discard ratios (cumulative sums in op order), last-writer assignments
(segment gathers) — so the kernel runs one tight python loop over only
the coin-flipping rows, then derives edges and reservoir states from
the recorded outcomes.  ``tests/test_columnar.py`` enforces equality of
edges, counters and RNG end-state against the per-op path.

numpy is optional (``pip install repro[fast]``).  Without it,
:class:`OpBatch` stores plain lists and every consumer transparently
falls back to the per-op path via :meth:`OpBatch.to_ops` — same
results, no fast path.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.types import Edge, EdgeType, KeyInterner, Operation, OpType

try:  # pragma: no cover - exercised by the no-numpy CI leg
    import numpy as _np

    HAVE_NUMPY = True
except Exception:  # pragma: no cover
    _np = None
    HAVE_NUMPY = False

__all__ = [
    "HAVE_NUMPY",
    "OP_READ",
    "OP_WRITE",
    "EdgeBatch",
    "OpBatch",
    "collect_columnar",
    "sample_mask",
]

#: Op-type codes of the ``op`` column (also the codec-2 wire codes).
OP_READ = 0
OP_WRITE = 1

_OP_BY_CODE = (OpType.READ, OpType.WRITE)
_KIND_BY_CODE = (EdgeType.WR, EdgeType.WW, EdgeType.RW)
_CODE_BY_KIND = {EdgeType.WR: 0, EdgeType.WW: 1, EdgeType.RW: 2}


def _as_i64(values):
    return _np.asarray(values, dtype=_np.int64)


class OpBatch:
    """A batch of read/write operations in struct-of-arrays layout.

    Columns (parallel, one row per operation):

    ``op``    op-type code (:data:`OP_READ` / :data:`OP_WRITE`), uint8
    ``kid``   interned key id (dense, first-seen order), int64
    ``buu``   transaction (BUU) id, int64
    ``seq``   storage visibility sequence number, int64
    ``val``   read-value id, int64 (reserved: the repro's operation
              model carries no values yet, so builders fill zeros; the
              column exists so version-order recovery can ride the same
              layout and wire frame later)

    ``interner`` maps ``kid`` back to the raw key.  With numpy the
    columns are ``ndarray``; without it they are plain lists and only
    :meth:`to_ops` interop is available (consumers fall back to the
    per-op path).
    """

    __slots__ = ("op", "kid", "buu", "seq", "val", "interner")

    def __init__(self, op, kid, buu, seq, val, interner: KeyInterner) -> None:
        self.op = op
        self.kid = kid
        self.buu = buu
        self.seq = seq
        self.val = val
        self.interner = interner

    def __len__(self) -> int:
        return len(self.op)

    # -- builders --------------------------------------------------------------

    @classmethod
    def from_columns(cls, op, kid, buu, seq, interner: KeyInterner,
                     val=None) -> "OpBatch":
        """Wrap raw columns (the codec-2 decode path and workload
        generators land here — no per-op object is ever built)."""
        if HAVE_NUMPY:
            op = _np.asarray(op, dtype=_np.uint8)
            kid = _as_i64(kid)
            buu = _as_i64(buu)
            seq = _as_i64(seq)
            val = _np.zeros(len(op), _np.int64) if val is None else _as_i64(val)
        else:
            op = list(op)
            kid = list(kid)
            buu = list(buu)
            seq = list(seq)
            val = [0] * len(op) if val is None else list(val)
        return cls(op, kid, buu, seq, val, interner)

    @classmethod
    def from_ops(cls, ops: Sequence[Operation],
                 interner: KeyInterner | None = None) -> "OpBatch":
        """Build from ``Operation`` objects, interning keys as they are
        first seen (so key ids are dense in first-appearance order)."""
        if interner is None:
            interner = KeyInterner()
        read = OpType.READ
        intern = interner.intern
        op = [OP_READ if o.op is read else OP_WRITE for o in ops]
        kid = [intern(o.key) for o in ops]
        buu = [o.buu for o in ops]
        seq = [o.seq for o in ops]
        return cls.from_columns(op, kid, buu, seq, interner)

    @classmethod
    def from_events(cls, events: Iterable[Sequence],
                    interner: KeyInterner | None = None) -> "OpBatch":
        """Build from wire op records ``["r"|"w", buu, key, seq]`` (the
        :func:`repro.net.protocol.wire_op` shape).  Lifecycle records are
        not operations and must be split out by the caller."""
        if interner is None:
            interner = KeyInterner()
        intern = interner.intern
        op = []
        kid = []
        buu = []
        seq = []
        for rec in events:
            op.append(OP_READ if rec[0] == "r" else OP_WRITE)
            buu.append(rec[1])
            kid.append(intern(rec[2]))
            seq.append(rec[3])
        return cls.from_columns(op, kid, buu, seq, interner)

    @classmethod
    def from_wire(cls, events, interner: KeyInterner
                  ) -> "tuple[OpBatch, list[tuple]]":
        """Split a decoded codec-2 frame into an op batch plus its
        lifecycle rows.

        ``events`` is any column struct with the
        :class:`repro.net.protocol.ColumnarEvents` shape (``op`` codes
        0=r/1=w/2=begin/3=commit, ``buu``, ``kidx`` frame-key-table
        indices, ``seq``, ``keys`` table).  The frame's key table is
        interned once (one :meth:`KeyInterner.intern` per *distinct*
        frame key) and op rows gather their global kid through it — no
        per-op object or per-op hash is computed.  Returns the batch
        and the lifecycle rows as ``("b"|"c", buu, time)`` tuples in
        frame order.
        """
        frame_kids = interner.intern_many(events.keys)
        if HAVE_NUMPY and not isinstance(events.op, list):
            op = _np.asarray(events.op, dtype=_np.uint8)
            buu = _as_i64(events.buu)
            kidx = _np.asarray(events.kidx)
            seq = _as_i64(events.seq)
            kid_table = _np.asarray(frame_kids, dtype=_np.int64)
            is_op = op < 2
            if is_op.all():
                batch = cls.from_columns(op, kid_table[kidx], buu, seq,
                                         interner)
                return batch, []
            batch = cls.from_columns(op[is_op], kid_table[kidx[is_op]],
                                     buu[is_op], seq[is_op], interner)
            life_mask = ~is_op
            lifecycle = [
                ("b" if code == 2 else "c", b, t)
                for code, b, t in zip(op[life_mask].tolist(),
                                      buu[life_mask].tolist(),
                                      seq[life_mask].tolist())
            ]
            return batch, lifecycle
        op_col: list[int] = []
        kid_col: list[int] = []
        buu_col: list[int] = []
        seq_col: list[int] = []
        lifecycle = []
        for code, b, ki, s in zip(events.op, events.buu, events.kidx,
                                  events.seq):
            if code < 2:
                op_col.append(code)
                kid_col.append(frame_kids[ki])
                buu_col.append(b)
                seq_col.append(s)
            else:
                lifecycle.append(("b" if code == 2 else "c", b, s))
        return (cls.from_columns(op_col, kid_col, buu_col, seq_col, interner),
                lifecycle)

    # -- interop ---------------------------------------------------------------

    def to_ops(self) -> list[Operation]:
        """Materialize per-op ``Operation`` objects (the differential
        oracle path and the no-numpy fallback)."""
        keys = self.interner
        ops = self.op if isinstance(self.op, list) else self.op.tolist()
        kids = self.kid if isinstance(self.kid, list) else self.kid.tolist()
        buus = self.buu if isinstance(self.buu, list) else self.buu.tolist()
        seqs = self.seq if isinstance(self.seq, list) else self.seq.tolist()
        by_code = _OP_BY_CODE
        key_of = keys.key_of
        new = tuple.__new__
        return [
            new(Operation, (by_code[o], b, key_of(k), s))
            for o, k, b, s in zip(ops, kids, buus, seqs)
        ]

    def max_seq(self) -> int:
        if not len(self.op):
            return 0
        if HAVE_NUMPY and not isinstance(self.seq, list):
            return int(self.seq.max())
        return max(self.seq)


class EdgeBatch:
    """Derived dependency edges in struct-of-arrays layout.

    Rows are ordered exactly as the per-op collector would have emitted
    them (the kernels restore original-op order with one stable argsort
    on the attributing op row).  ``label`` holds interned key ids;
    consumers translate back through ``interner`` so downstream graph
    state is identical to the per-op path's raw-key labels.
    """

    __slots__ = ("src", "dst", "kind", "label", "seq", "interner",
                 "wr", "ww", "rw")

    def __init__(self, src, dst, kind, label, seq, interner: KeyInterner,
                 wr: int, ww: int, rw: int) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.label = label
        self.seq = seq
        self.interner = interner
        self.wr = wr
        self.ww = ww
        self.rw = rw

    def __len__(self) -> int:
        return len(self.src)

    @classmethod
    def empty(cls, interner: KeyInterner) -> "EdgeBatch":
        z = _np.empty(0, _np.int64) if HAVE_NUMPY else []
        k = _np.empty(0, _np.uint8) if HAVE_NUMPY else []
        return cls(z, z, k, z, z, interner, 0, 0, 0)

    def iter_rows(self):
        """Lazy ``(src, dst, kind, raw_key, seq)`` rows — the exact
        5-tuple shape :meth:`CycleDetector.add_edge_batch` unpacks, with
        labels translated back to raw keys.  Translation runs through
        C-level ``map`` over the interner's id table so the hot detector
        loop pays no python-level call per edge."""
        if isinstance(self.src, list):
            srcs, dsts, kinds = self.src, self.dst, self.kind
            labels, seqs = self.label, self.seq
        else:
            srcs = self.src.tolist()
            dsts = self.dst.tolist()
            kinds = self.kind.tolist()
            labels = self.label.tolist()
            seqs = self.seq.tolist()
        return zip(srcs, dsts,
                   map(_KIND_BY_CODE.__getitem__, kinds),
                   map(self.interner._keys.__getitem__, labels), seqs)

    def tuple_rows(self) -> list[tuple]:
        """Materialized :meth:`iter_rows`."""
        return list(self.iter_rows())

    def to_edges(self) -> list[Edge]:
        """Materialize :class:`~repro.core.types.Edge` objects with raw
        keys (test/debug interop)."""
        new = tuple.__new__
        return [new(Edge, row) for row in self.tuple_rows()]


# -- sampling ------------------------------------------------------------------


def sample_mask(batch: OpBatch, sampler, cache: dict) -> "object | None":
    """The DCS chosen-item mask for ``batch``: one bool per row.

    Bit-identical to calling ``sampler.chosen(key)`` per op — the
    sampler is a pure function of ``(key, salt, sampling_rate)``, so
    decisions are computed once per *new* key id and gathered from a
    dense per-kid cache after that.  ``cache`` persists across batches
    (keyed state lives with the caller); it is invalidated whenever the
    interner identity or the sampler's salt changes (re-sampling).
    Returns ``None`` when every row is chosen (sr=1).
    """
    if sampler.sampling_rate == 1:
        return None
    interner = batch.interner
    salt = sampler._salt
    if (cache.get("interner") is not interner or cache.get("salt") != salt
            or cache.get("rate") != sampler.sampling_rate):
        cache.clear()
        cache["interner"] = interner
        cache["salt"] = salt
        cache["rate"] = sampler.sampling_rate
        cache["decisions"] = _np.empty(0, bool)
    decisions = cache["decisions"]
    total = len(interner)
    if total > len(decisions):
        grown = _np.empty(total, bool)
        grown[: len(decisions)] = decisions
        chosen = sampler.chosen
        key_of = interner.key_of
        for kid in range(len(decisions), total):
            grown[kid] = chosen(key_of(kid))
        decisions = grown
        cache["decisions"] = decisions
    return decisions[batch.kid]


# -- the collection kernels ----------------------------------------------------


def collect_columnar(shard, batch: OpBatch, mask=None) -> EdgeBatch:
    """Run Algorithm 1/2 bookkeeping over ``batch`` on ``shard``'s
    state, returning the derived edges.  ``mask`` restricts to the
    chosen rows (``None`` = all).  Bit-identical to feeding the same
    (chosen) operations through ``shard.handle_batch`` per-op: same
    edges in the same order, same counters, same RNG end state.
    """
    op = batch.op
    kid = batch.kid
    buu = batch.buu
    seq = batch.seq
    if mask is not None:
        op = op[mask]
        kid = kid[mask]
        buu = buu[mask]
        seq = seq[mask]
    n = len(op)
    shard.touches += n
    if n == 0:
        return EdgeBatch.empty(batch.interner)
    if shard.mob:
        return _collect_mob(shard, batch.interner, op, kid, buu, seq, n)
    return _collect_full(shard, batch.interner, op, kid, buu, seq, n)


def _group_layout(kid, op, n):
    """Stable per-key grouping + per-segment layout shared by both
    kernels.  A *segment* is a maximal run of reads on one key closed by
    (at most) one write — exactly the unit Algorithm 1/2 bookkeeping
    resets on."""
    order = _np.argsort(kid, kind="stable")
    kid_s = kid[order]
    isw_s = op[order] != OP_READ
    new_grp = _np.empty(n, bool)
    new_grp[0] = True
    if n > 1:
        _np.not_equal(kid_s[1:], kid_s[:-1], out=new_grp[1:])
    gidx = _np.cumsum(new_grp) - 1
    seg_start = new_grp.copy()
    if n > 1:
        seg_start[1:] |= isw_s[:-1]
    sidx = _np.cumsum(seg_start) - 1
    sstart = _np.flatnonzero(seg_start)
    return order, kid_s, isw_s, new_grp, gidx, sidx, sstart


def _gather_mob_state(items, ukeys):
    """Fetch (creating on first touch, like the per-op path) the MOB
    state of every key in the batch; returns parallel carry arrays."""
    from repro.core.collector import _MobItemState

    states = []
    for key in ukeys:
        st = items.get(key)
        if st is None:
            st = _MobItemState()
            items[key] = st
        states.append(st)
    g_cnt = _as_i64([st.count for st in states])
    g_lw_has = _np.array([st.last_write is not None for st in states], bool)
    g_lw = _as_i64([st.last_write if st.last_write is not None else 0
                    for st in states])
    return states, g_cnt, g_lw_has, g_lw


def _collect_mob(shard, interner, op, kid, buu, seq, n) -> EdgeBatch:
    slots = shard.mob_slots
    order, kid_s, isw_s, new_grp, gidx, sidx, sstart = _group_layout(kid, op, n)
    buu_s = buu[order]
    seq_s = seq[order]
    isr_s = ~isw_s

    ukeys = [interner.key_of(k) for k in kid_s[new_grp].tolist()]
    states, g_cnt, g_lw_has, g_lw = _gather_mob_state(shard._mob_items, ukeys)

    # Per-row read count (carry included): for reads the count *after*
    # the increment, for writes the count the write observes.
    seg_gidx = gidx[sstart]
    first_seg = new_grp[sstart]
    rcum_e = _np.cumsum(isr_s) - isr_s
    rbase = rcum_e[sstart]
    carry_add = _np.where(first_seg, g_cnt[seg_gidx], 0)
    count = rcum_e - rbase[sidx] + carry_add[sidx] + isr_s

    # Last writer per segment: the write that closed the previous
    # segment of the same group, or the carried last_write for a
    # group's first segment.
    prev = sstart - 1
    lw_seg = _np.where(first_seg, g_lw[seg_gidx], buu_s[prev])
    lw_has_seg = _np.where(first_seg, g_lw_has[seg_gidx], True)
    lw_row = lw_seg[sidx]
    lw_has_row = lw_has_seg[sidx]

    # Live discard ratio at each row, in *original* op order (the ww
    # coin reads running totals exactly as the per-op loop does).
    row_s = order
    isr_o = op == OP_READ
    cnt_o = _np.empty(n, _np.int64)
    cnt_o[row_s] = count
    isw_o = ~isr_o
    inc_o = _np.where(isw_o & (cnt_o > 0),
                      _np.maximum(cnt_o - slots, 0), 0)
    tcum = shard.total_reads + _np.cumsum(isr_o) - isr_o
    dcum = shard.discarded_reads + _np.cumsum(inc_o) - inc_o
    ratio_o = _np.divide(dcum, tcum, out=_np.zeros(n, float),
                         where=tcum > 0)

    # -- the RNG pass: original op order, coin rows only -----------------------
    read_draw_s = isr_s & (count > slots)
    write_coin_s = isw_s & (count == 0)
    coin_o = _np.zeros(n, bool)
    coin_o[row_s] = read_draw_s | write_coin_s
    keep_o = _np.zeros(n, bool)
    hit_o = _np.zeros(n, bool)
    hit_pos: dict[int, int] = {}
    coin_rows = _np.flatnonzero(coin_o)
    if len(coin_rows):
        rng_random = shard._rng.random
        rng_randrange = shard._rng.randrange
        for r, w, c, q in zip(coin_rows.tolist(),
                              isw_o[coin_rows].tolist(),
                              cnt_o[coin_rows].tolist(),
                              ratio_o[coin_rows].tolist()):
            if w:
                keep_o[r] = rng_random() >= q
            else:
                if rng_random() < slots / c:
                    hit_o[r] = True
                    hit_pos[r] = rng_randrange(slots)

    # -- reservoir evolution + rw emission (interesting rows only) -------------
    hit_s = hit_o[row_s]
    rw_write_s = isw_s & (count > 0)
    append_s = isr_s & (count <= slots)
    interesting = append_s | hit_s | rw_write_s
    rw_src: list[int] = []
    rw_dst: list[int] = []
    rw_lab: list[int] = []
    rw_seq: list[int] = []
    rw_row: list[int] = []
    tail_res: dict[int, list] = {}
    rows = _np.flatnonzero(interesting)
    if len(rows):
        first_seg_row = first_seg[sidx]
        cur_g = -1
        cur_s = -1
        res: list = []
        for g, s, b, w, fs, lab, sq, orig in zip(
                gidx[rows].tolist(),
                sidx[rows].tolist(),
                buu_s[rows].tolist(),
                isw_s[rows].tolist(),
                first_seg_row[rows].tolist(),
                kid_s[rows].tolist(),
                seq_s[rows].tolist(),
                row_s[rows].tolist()):
            if g != cur_g:
                if cur_g >= 0:
                    tail_res[cur_g] = res
                cur_g = g
                cur_s = s
                res = list(states[g].reads) if fs else []
            elif s != cur_s:
                cur_s = s
                res = []
            if w:
                for reader in dict.fromkeys(res):
                    if reader != b:
                        rw_src.append(reader)
                        rw_dst.append(b)
                        rw_lab.append(lab)
                        rw_seq.append(sq)
                        rw_row.append(orig)
                res = []
            elif hit_o[orig]:
                res[hit_pos[orig]] = b
            else:
                res.append(b)
        tail_res[cur_g] = res
    shard.stats.rw += len(rw_src)

    # -- vectorized wr / ww emission -------------------------------------------
    wr_mask = isr_s & lw_has_row & (lw_row != buu_s)
    keep_s = keep_o[row_s]
    ww_mask = write_coin_s & keep_s & lw_has_row & (lw_row != buu_s)
    shard.stats.wr += int(wr_mask.sum())
    shard.stats.ww += int(ww_mask.sum())

    # -- counter + per-item state writeback ------------------------------------
    shard.total_reads += int(isr_o.sum())
    shard.discarded_reads += int(inc_o.sum())
    ar = _np.arange(n)
    gend = _np.empty(len(states), _np.intp)
    gend[gidx] = ar  # last sorted row of each group wins
    base = gidx * (n + 1)
    lastw = _np.maximum.accumulate(_np.where(isw_s, base + ar + 1, base))
    lastw_at_end = (lastw - base)[gend] - 1  # -1 = group saw no write
    final_cnt = _np.where(isw_s[gend], 0, count[gend]).tolist()
    has_w = lastw_at_end >= 0
    last_w_buu = buu_s[_np.maximum(lastw_at_end, 0)].tolist()
    has_w_l = has_w.tolist()
    for g, st in enumerate(states):
        st.count = final_cnt[g]
        if has_w_l[g]:
            st.last_write = last_w_buu[g]
        res = tail_res.get(g)
        if res is not None:
            st.reads = res
        # untouched groups keep their carried reservoir; the count
        # update above is the only state their reads observed.

    return _assemble_edges(interner, shard, wr_mask, ww_mask,
                           lw_row, buu_s, kid_s, seq_s, row_s,
                           rw_src, rw_dst, rw_lab, rw_seq, rw_row)


def _collect_full(shard, interner, op, kid, buu, seq, n) -> EdgeBatch:
    """Full ``readIDs`` bookkeeping (DCS without MOB).  wr edges and all
    counts are vectorized; rw emission walks python sets per segment
    because the per-op path iterates a real ``set`` (hash order) and
    bit-exactness requires reproducing that iteration exactly."""
    from repro.core.collector import _FullItemState

    order, kid_s, isw_s, new_grp, gidx, sidx, sstart = _group_layout(kid, op, n)
    buu_s = buu[order]
    seq_s = seq[order]
    isr_s = ~isw_s
    row_s = order

    items = shard._full_items
    ukeys = [interner.key_of(k) for k in kid_s[new_grp].tolist()]
    states = []
    for key in ukeys:
        st = items.get(key)
        if st is None:
            st = _FullItemState()
            items[key] = st
        states.append(st)
    g_lw_has = _np.array([st.last_write is not None for st in states], bool)
    g_lw = _as_i64([st.last_write if st.last_write is not None else 0
                    for st in states])

    seg_gidx = gidx[sstart]
    first_seg = new_grp[sstart]
    prev = sstart - 1
    lw_seg = _np.where(first_seg, g_lw[seg_gidx], buu_s[prev])
    lw_has_seg = _np.where(first_seg, g_lw_has[seg_gidx], True)
    lw_row = lw_seg[sidx]
    lw_has_row = lw_has_seg[sidx]

    wr_mask = isr_s & lw_has_row & (lw_row != buu_s)
    shard.stats.wr += int(wr_mask.sum())
    shard.total_reads += int(isr_s.sum())

    # Per-segment reader sets: built in op order (insertion order equals
    # the per-op path's set mutation order, so iteration order matches).
    rw_src: list[int] = []
    rw_dst: list[int] = []
    rw_lab: list[int] = []
    rw_seq: list[int] = []
    rw_row: list[int] = []
    ww_rows: list[int] = []  # sorted-row indexes of emitted ww edges
    first_seg_row = first_seg[sidx]
    cur_g = -1
    cur_s = -1
    readers: set = set()
    stats = shard.stats
    for i, g, s, b, w, fs, lab, sq, orig in zip(
            range(n),
            gidx.tolist(),
            sidx.tolist(),
            buu_s.tolist(),
            isw_s.tolist(),
            first_seg_row.tolist(),
            kid_s.tolist(),
            seq_s.tolist(),
            row_s.tolist()):
        if g != cur_g:
            if cur_g >= 0:
                states[cur_g].read_ids = readers
            cur_g = g
            cur_s = s
            readers = states[g].read_ids if fs else set()
        elif s != cur_s:
            cur_s = s
            readers = set()
        if w:
            if readers:
                for reader in readers:
                    if reader != b:
                        rw_src.append(reader)
                        rw_dst.append(b)
                        rw_lab.append(lab)
                        rw_seq.append(sq)
                        rw_row.append(orig)
                readers = set()
            else:
                ww_rows.append(i)
        else:
            readers.add(b)
    if cur_g >= 0:
        states[cur_g].read_ids = readers
    stats.rw += len(rw_src)

    ww_mask = _np.zeros(n, bool)
    if ww_rows:
        ww_mask[ww_rows] = True
        ww_mask &= lw_has_row & (lw_row != buu_s)
    stats.ww += int(ww_mask.sum())

    # last_write writeback (groups that saw a write).
    ar = _np.arange(n)
    gend = _np.empty(len(states), _np.intp)
    gend[gidx] = ar
    base = gidx * (n + 1)
    lastw = _np.maximum.accumulate(_np.where(isw_s, base + ar + 1, base))
    lastw_at_end = (lastw - base)[gend] - 1
    has_w = (lastw_at_end >= 0).tolist()
    last_w_buu = buu_s[_np.maximum(lastw_at_end, 0)].tolist()
    for g, st in enumerate(states):
        if has_w[g]:
            st.last_write = last_w_buu[g]

    return _assemble_edges(interner, shard, wr_mask, ww_mask,
                           lw_row, buu_s, kid_s, seq_s, row_s,
                           rw_src, rw_dst, rw_lab, rw_seq, rw_row)


def _assemble_edges(interner, shard, wr_mask, ww_mask, lw_row, buu_s,
                    kid_s, seq_s, row_s, rw_src, rw_dst, rw_lab,
                    rw_seq, rw_row) -> EdgeBatch:
    """Merge the three per-kind edge sets back into original-op order
    with one stable argsort on the attributing op row (rw edges of one
    write stay in their ``dict.fromkeys`` order — ties are stable)."""
    n_wr = int(wr_mask.sum())
    n_ww = int(ww_mask.sum())
    n_rw = len(rw_src)
    src = _np.concatenate([lw_row[wr_mask], lw_row[ww_mask],
                           _as_i64(rw_src)])
    dst = _np.concatenate([buu_s[wr_mask], buu_s[ww_mask],
                           _as_i64(rw_dst)])
    kind = _np.concatenate([
        _np.zeros(n_wr, _np.uint8),
        _np.ones(n_ww, _np.uint8),
        _np.full(n_rw, 2, _np.uint8),
    ])
    label = _np.concatenate([kid_s[wr_mask], kid_s[ww_mask],
                             _as_i64(rw_lab)])
    seq = _np.concatenate([seq_s[wr_mask], seq_s[ww_mask],
                           _as_i64(rw_seq)])
    roworder = _np.concatenate([row_s[wr_mask], row_s[ww_mask],
                                _np.asarray(rw_row, _np.intp)])
    o = _np.argsort(roworder, kind="stable")
    return EdgeBatch(src[o], dst[o], kind[o], label[o], seq[o],
                     interner, n_wr, n_ww, n_rw)
