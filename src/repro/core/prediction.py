"""Performance prediction from anomaly rates (Fig 1's right-hand box).

The paper's workflow diagram feeds the monitor's runtime reports into a
performance predictor.  This module provides the simplest credible one:
a log-log linear model mapping anomaly rates (2- and 3-cycle rates, plus
an intercept) to a performance metric such as BUUs-to-convergence,
fitted by least squares.  Fig 3 shows the relationship is strong enough
for this to be useful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


@dataclass
class ConvergencePredictor:
    """Log-log least-squares predictor: performance ~ anomaly rates.

    Fit on (rate_2, rate_3, outcome) triples; predict on new rates.
    Outcomes must be positive (they are counts or rates); a small
    epsilon guards the logarithms of zero rates.
    """

    epsilon: float = 1e-9
    coefficients: np.ndarray | None = field(default=None, repr=False)

    def _design(self, rates2, rates3) -> np.ndarray:
        rates2 = np.asarray(rates2, dtype=float)
        rates3 = np.asarray(rates3, dtype=float)
        return np.column_stack([
            np.ones_like(rates2),
            np.log(rates2 + self.epsilon),
            np.log(rates3 + self.epsilon),
        ])

    def fit(self, rates2, rates3, outcomes) -> "ConvergencePredictor":
        outcomes = np.asarray(outcomes, dtype=float)
        if np.any(outcomes <= 0):
            raise ValueError("outcomes must be positive")
        design = self._design(rates2, rates3)
        target = np.log(outcomes)
        self.coefficients, *_ = np.linalg.lstsq(design, target, rcond=None)
        return self

    def predict(self, rates2, rates3) -> np.ndarray:
        if self.coefficients is None:
            raise RuntimeError("predictor is not fitted")
        design = self._design(rates2, rates3)
        return np.exp(design @ self.coefficients)

    def r_squared(self, rates2, rates3, outcomes) -> float:
        """Coefficient of determination in log space."""
        if self.coefficients is None:
            raise RuntimeError("predictor is not fitted")
        target = np.log(np.asarray(outcomes, dtype=float))
        predicted = np.log(self.predict(rates2, rates3))
        ss_res = float(np.sum((target - predicted) ** 2))
        mean = float(np.mean(target))
        ss_tot = float(np.sum((target - mean) ** 2))
        if ss_tot == 0:
            return 1.0 if ss_res == 0 else 0.0
        return 1.0 - ss_res / ss_tot


def rank_correlation(xs, ys) -> float:
    """Spearman rank correlation with average ranks for ties."""

    def ranks(values):
        order = sorted(range(len(values)), key=lambda i: values[i])
        rank = [0.0] * len(values)
        i = 0
        while i < len(order):
            j = i
            while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
                j += 1
            avg = (i + j) / 2 + 1
            for k in range(i, j + 1):
                rank[order[k]] = avg
            i = j + 1
        return rank

    if len(xs) != len(ys):
        raise ValueError("length mismatch")
    if len(xs) < 2:
        return 0.0
    rx, ry = ranks(list(xs)), ranks(list(ys))
    n = len(xs)
    mean_x = sum(rx) / n
    mean_y = sum(ry) / n
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(rx, ry))
    var_x = sum((a - mean_x) ** 2 for a in rx)
    var_y = sum((b - mean_y) ** 2 for b in ry)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)
