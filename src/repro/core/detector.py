"""The real-time cycle detector (det): streaming 2-/3-cycle counting.

The detector maintains a *live* dependency graph — the part that can still
participate in new cycles — and, for every arriving edge, counts the new
2- and 3-cycles that edge closes, classified by label multiset for the
estimator.  Each cycle is attributed to the arrival of its last edge, so
cumulative and windowed counts never double count.

Vertex pruning (:mod:`repro.core.pruning`) operates on the detector's
:class:`LiveGraph`; pruned vertices lose their adjacency but their commit
times are retained (cheap ints) so pruning decisions stay well defined.
"""

from __future__ import annotations

import heapq
from collections import defaultdict

from repro.core.columnar import EdgeBatch
from repro.core.patterns import PatternCounts, classify_two_cycle
from repro.core.types import BuuId, CycleCounts, Edge, EdgeType, Key

# Shared sentinel for "no parallel edges" lookups in the fused batch loop.
# Never mutated; .keys() of an empty dict is a valid empty set-like view.
_EMPTY_LABELS: dict = {}


class LiveGraph:
    """Adjacency + vertex lifetimes for the streaming detector.

    ``labels[(u, v)]`` maps each item label of a parallel edge
    ``u -> v`` to that edge's type (wr/ww/rw, used for anomaly-pattern
    classification).  ``starts`` / ``commits`` record BUU lifetimes for
    pruning; ``alive`` is the set of started-but-uncommitted BUUs.
    """

    def __init__(self) -> None:
        self.labels: dict[tuple[BuuId, BuuId], dict[Key, EdgeType]] = {}
        self.out: dict[BuuId, set[BuuId]] = defaultdict(set)
        self.inc: dict[BuuId, set[BuuId]] = defaultdict(set)
        self.present: set[BuuId] = set()
        self.starts: dict[BuuId, int] = {}
        self.commits: dict[BuuId, int] = {}
        self.alive: set[BuuId] = set()
        self.edge_count = 0
        # Lazily-compacted min-heap over (start, buu) for alive vertices.
        # Entries go stale when a BUU commits; active_time() pops them on
        # demand instead of rescanning every alive vertex per call.
        self._active_heap: list[tuple[int, BuuId]] = []

    # -- lifecycle -----------------------------------------------------------

    def begin(self, buu: BuuId, start_time: int) -> None:
        start = self.starts.setdefault(buu, start_time)
        self.alive.add(buu)
        heapq.heappush(self._active_heap, (start, buu))

    def commit(self, buu: BuuId, commit_time: int) -> None:
        self.commits[buu] = commit_time
        self.alive.discard(buu)

    def active_time(self, default: int = 0) -> float:
        """The paper's ``t_active``: earliest start among alive vertices.

        Amortized O(log |alive|): stale heap entries (committed BUUs) are
        popped lazily; each begin() pushes exactly one entry, so total pop
        work is bounded by total begins.
        """
        alive = self.alive
        if not alive:
            return float(default)
        heap = self._active_heap
        starts = self.starts
        while heap:
            start, buu = heap[0]
            if buu in alive and starts.get(buu) == start:
                return float(start)
            heapq.heappop(heap)
        # Heap exhausted while vertices are alive: state was installed
        # directly (checkpoint restore assigns `alive`/`starts` wholesale).
        # Rebuild the index from the alive set.
        if any(v not in starts for v in alive):
            # Degenerate case (alive vertex with no recorded start):
            # fall back to the exact scan without caching.
            return float(min(starts.get(v, default) for v in alive))
        for v in alive:
            heap.append((starts[v], v))
        heapq.heapify(heap)
        return float(heap[0][0])

    def commit_time(self, buu: BuuId) -> float:
        return float(self.commits.get(buu, float("inf")))

    # -- structure -----------------------------------------------------------

    def add_edge(self, src: BuuId, dst: BuuId, label: Key,
                 kind: EdgeType = EdgeType.WR) -> bool:
        """Insert an edge; returns False for self-loops and duplicates."""
        if src == dst:
            return False
        key = (src, dst)
        labels = self.labels.get(key)
        if labels is None:
            labels = {}
            self.labels[key] = labels
        if label in labels:
            return False
        labels[label] = kind
        self.out[src].add(dst)
        self.inc[dst].add(src)
        self.present.add(src)
        self.present.add(dst)
        self.edge_count += 1
        return True

    def edge_labels(self, src: BuuId, dst: BuuId):
        """The labels of parallel edges src -> dst (a set-like view)."""
        return self.labels.get((src, dst), {}).keys()

    def edge_kind(self, src: BuuId, dst: BuuId, label: Key) -> EdgeType | None:
        return self.labels.get((src, dst), {}).get(label)

    def remove_vertex(self, v: BuuId) -> None:
        labels = self.labels
        out = self.out
        inc = self.inc
        removed = 0
        succs = out.pop(v, None)
        if succs:
            for succ in succs:
                removed += len(labels.pop((v, succ), ()))
                neigh = inc.get(succ)
                if neigh is not None:
                    neigh.discard(v)
        preds = inc.pop(v, None)
        if preds:
            for pred in preds:
                removed += len(labels.pop((pred, v), ()))
                neigh = out.get(pred)
                if neigh is not None:
                    neigh.discard(v)
        self.edge_count -= removed
        self.present.discard(v)

    def num_vertices(self) -> int:
        return len(self.present)

    def num_edges(self) -> int:
        return self.edge_count


class CycleDetector:
    """Streaming detector counting new 2-/3-cycles per incoming edge.

    Parameters
    ----------
    pruner:
        A pruning strategy from :mod:`repro.core.pruning` (or None).
        Pruning is invoked every ``prune_interval`` edges and on demand
        via :meth:`prune`.
    count_three:
        Disable to count only 2-cycles (cheaper; used by ablations).
    """

    def __init__(self, pruner=None, prune_interval: int = 1000,
                 count_three: bool = True) -> None:
        self.graph = LiveGraph()
        self.counts = CycleCounts()
        self.patterns = PatternCounts()
        self.pruner = pruner
        self.prune_interval = prune_interval
        self.count_three = count_three
        self._edges_since_prune = 0
        self.prune_passes = 0

    # -- BUU lifecycle forwarded to the live graph ---------------------------

    def begin_buu(self, buu: BuuId, start_time: int) -> None:
        self.graph.begin(buu, start_time)

    def commit_buu(self, buu: BuuId, commit_time: int) -> None:
        self.graph.commit(buu, commit_time)
        if self.pruner is not None:
            self.pruner.on_commit(self.graph, buu)

    # -- edge ingestion ------------------------------------------------------

    def add_edge(self, edge: Edge) -> CycleCounts:
        """Ingest one edge; returns the new cycles it closed (also
        accumulated into :attr:`counts`)."""
        new = CycleCounts()
        if not self.graph.add_edge(edge.src, edge.dst, edge.label, edge.kind):
            return new
        self._count_new_cycles(edge.src, edge.dst, edge.label, edge.kind, new,
                               self.patterns.record)
        self.counts.add(new)
        self._edges_since_prune += 1
        if self.pruner is not None and self._edges_since_prune >= self.prune_interval:
            self.prune(now=edge.seq)
        return new

    def add_edges(self, edges) -> CycleCounts:
        total = CycleCounts()
        for edge in edges:
            total.add(self.add_edge(edge))
        return total

    def add_edge_uncounted(self, edge: Edge) -> bool:
        """Insert one edge into the live graph **without counting** the
        cycles it closes (no :attr:`counts` or pattern mutation).

        This is the cluster's foreign-edge path (:mod:`repro.cluster`):
        every worker mirrors its peers' edges so the graph each worker
        sees is the full serial graph — and therefore its *own* edges
        close exactly the cycles the serial monitor would attribute to
        them — while cycle ownership stays with the worker whose shard
        derived the closing edge, so the per-worker counts partition
        the serial counts exactly.  The prune clock advances just like
        :meth:`add_edge`, keeping graph evolution identical to a serial
        monitor ingesting the same edge order.

        Returns whether the edge was new (mirrors
        :meth:`LiveGraph.add_edge`).
        """
        if not self.graph.add_edge(edge.src, edge.dst, edge.label, edge.kind):
            return False
        self._edges_since_prune += 1
        if self.pruner is not None and self._edges_since_prune >= self.prune_interval:
            self.prune(now=edge.seq)
        return True

    def add_edge_batch(self, edges) -> CycleCounts:
        """Batched :meth:`add_edge`: ingest a sequence of edges, returning
        the new cycles they closed as one aggregate.

        Identical cycle/pattern/stat results to per-edge ingestion, but
        the per-edge ``CycleCounts`` allocation is replaced by a single
        accumulator, pattern recording is deferred to one
        ``Counter.update`` at the batch boundary, and the prune-interval
        check runs once per batch instead of once per edge.  Deferring
        pruning is count-preserving: safe pruning (§5.3) only removes
        vertices that cannot join future short cycles, so running it at
        the batch boundary instead of mid-batch never changes counts.

        The graph insertion (:meth:`LiveGraph.add_edge`) and the cycle
        counting (:meth:`_count_new_cycles`) are fused into one loop
        over hoisted dict locals — the logic is a line-for-line copy of
        those two methods, kept in sync by the batch-equivalence tests.

        A columnar :class:`~repro.core.columnar.EdgeBatch` is accepted
        natively: its rows are already in per-op emission order, and
        labels are translated back to raw keys through the batch's
        interner so graph state stays identical to the per-edge path.
        """
        if isinstance(edges, EdgeBatch):
            edges = edges.iter_rows()
        total = CycleCounts()
        graph = self.graph
        labels_map = graph.labels
        out_map = graph.out
        inc_map = graph.inc
        present_add = graph.present.add
        count_three = self.count_three
        classify2 = classify_two_cycle
        pending: list = []
        record = pending.append
        added = 0
        last_seq = 0
        ss = dd = sss_t = ssd_t = ddd_t = 0
        empty = _EMPTY_LABELS
        for edge in edges:
            src, dst, kind, label, seq = edge
            if src == dst:
                continue
            key = (src, dst)
            labels = labels_map.get(key)
            if labels is None:
                labels = {}
                labels_map[key] = labels
            elif label in labels:
                continue
            labels[label] = kind
            out_map[src].add(dst)
            inc_map[dst].add(src)
            present_add(src)
            present_add(dst)
            added += 1
            last_seq = seq
            # 2-cycles: the new edge pairs with every existing dst->src label.
            back = labels_map.get((dst, src))
            if back:
                for back_label, back_kind in back.items():
                    if back_label == label:
                        ss += 1
                    else:
                        dd += 1
                    record(classify2(kind, label, back_kind, back_label))
            if not count_three:
                continue
            # 3-cycles: src->dst closes triangles with dst->w, w->src.
            out_v = out_map.get(dst)
            in_u = inc_map.get(src)
            if not out_v or not in_u:
                continue
            # Scan the smaller neighbour set and test membership in the
            # larger one — no intersection set is allocated per edge.
            if len(out_v) > len(in_u):
                small, large = in_u, out_v
            else:
                small, large = out_v, in_u
            for w in small:
                if w not in large or w == src or w == dst:
                    continue
                a_labels = labels_map.get((dst, w), empty).keys()
                b_labels = labels_map.get((w, src), empty).keys()
                na, nb = len(a_labels), len(b_labels)
                l_in_a = 1 if label in a_labels else 0
                l_in_b = 1 if label in b_labels else 0
                sss = l_in_a * l_in_b
                same_ab = len(a_labels & b_labels)
                ssd = (
                    l_in_a * (nb - l_in_b)
                    + l_in_b * (na - l_in_a)
                    + (same_ab - sss)
                )
                sss_t += sss
                ssd_t += ssd
                ddd_t += na * nb - sss - ssd
        if pending:
            self.patterns.counts.update(pending)
        if added:
            graph.edge_count += added
            total.ss = ss
            total.dd = dd
            total.sss = sss_t
            total.ssd = ssd_t
            total.ddd = ddd_t
            self.counts.add(total)
            self._edges_since_prune += added
            if (self.pruner is not None
                    and self._edges_since_prune >= self.prune_interval):
                self.prune(now=last_seq)
        return total

    def _count_new_cycles(self, u: BuuId, v: BuuId, label: Key,
                          kind: EdgeType, new: CycleCounts, record) -> None:
        graph = self.graph
        # 2-cycles: new edge u->v pairs with every existing v->u label.
        for back_label, back_kind in graph.labels.get((v, u), {}).items():
            if back_label == label:
                new.ss += 1
            else:
                new.dd += 1
            record(
                classify_two_cycle(kind, label, back_kind, back_label)
            )
        if not self.count_three:
            return
        # 3-cycles: u->v (new) closes triangles with existing v->w, w->u.
        out_v = graph.out.get(v)
        in_u = graph.inc.get(u)
        if not out_v or not in_u:
            return
        if len(out_v) > len(in_u):
            candidates = in_u & out_v
        else:
            candidates = out_v & in_u
        for w in candidates:
            if w == u or w == v:
                continue
            a_labels = graph.edge_labels(v, w)
            b_labels = graph.edge_labels(w, u)
            na, nb = len(a_labels), len(b_labels)
            l_in_a = 1 if label in a_labels else 0
            l_in_b = 1 if label in b_labels else 0
            sss = l_in_a * l_in_b
            same_ab = len(a_labels & b_labels)
            ssd = (
                l_in_a * (nb - l_in_b)
                + l_in_b * (na - l_in_a)
                + (same_ab - sss)
            )
            new.sss += sss
            new.ssd += ssd
            new.ddd += na * nb - sss - ssd

    # -- maintenance -----------------------------------------------------------

    def prune(self, now: int) -> int:
        """Run the configured pruner; returns vertices removed."""
        self._edges_since_prune = 0
        if self.pruner is None:
            return 0
        self.prune_passes += 1
        return self.pruner.prune(self.graph, now)

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices()

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges()
