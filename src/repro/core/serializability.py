"""Offline serializability checking with witnesses (§2.1 made executable).

Conflict serializability is the paper's correctness gold standard: an
execution is serializable iff its dependency graph is acyclic.  This
module turns that definition into a checker:

- :func:`check_history` runs Algorithm 1 over a history, builds the full
  dependency graph and returns a :class:`SerializabilityVerdict` — either
  *serializable* with a witness equivalent serial order (a topological
  sort of the dependency graph), or *not serializable* with concrete
  violating cycles as evidence.

This is the "offline, after-the-fact" counterpart to RushMon: exact and
explanatory, but nowhere near real-time — precisely the trade-off the
paper's Section 4 discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.collector import BaselineCollector
from repro.core.types import BuuId, Operation
from repro.graph.cycles import johnson_simple_cycles
from repro.graph.dependency import DependencyGraph


@dataclass
class SerializabilityVerdict:
    """Outcome of a serializability check.

    ``serializable`` — whether the dependency graph is acyclic.
    ``serial_order`` — a witness equivalent serial order of BUUs when
    serializable (topological order of the dependency graph, including
    conflict-free BUUs).
    ``violations`` — up to ``max_witnesses`` violating vertex cycles when
    not serializable.
    """

    serializable: bool
    serial_order: list[BuuId] = field(default_factory=list)
    violations: list[list[BuuId]] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.serializable


def check_history(ops: Iterable[Operation],
                  max_witnesses: int = 5) -> SerializabilityVerdict:
    """Check a history for conflict serializability."""
    ops = list(ops)
    collector = BaselineCollector()
    graph = DependencyGraph()
    for op in ops:
        graph.add_vertex(op.buu)
        for edge in collector.handle(op):
            graph.add_edge(edge)
    return check_graph(graph, max_witnesses=max_witnesses)


def check_graph(graph: DependencyGraph,
                max_witnesses: int = 5) -> SerializabilityVerdict:
    """Check an already-built dependency graph."""
    order = _topological_order(graph)
    if order is not None:
        return SerializabilityVerdict(serializable=True, serial_order=order)
    violations: list[list[BuuId]] = []
    for cycle in johnson_simple_cycles(graph):
        violations.append(cycle)
        if len(violations) >= max_witnesses:
            break
    return SerializabilityVerdict(serializable=False, violations=violations)


def _topological_order(graph: DependencyGraph) -> list[BuuId] | None:
    """Kahn's algorithm; None if the graph has a cycle."""
    in_degree: dict[BuuId, int] = {v: 0 for v in graph.vertices}
    for v in graph.vertices:
        for succ in graph.successors(v):
            in_degree[succ] += 1
    ready = sorted(v for v, deg in in_degree.items() if deg == 0)
    order: list[BuuId] = []
    import heapq

    heapq.heapify(ready)
    while ready:
        v = heapq.heappop(ready)
        order.append(v)
        for succ in graph.successors(v):
            in_degree[succ] -= 1
            if in_degree[succ] == 0:
                heapq.heappush(ready, succ)
    if len(order) != len(in_degree):
        return None
    return order


def witness_is_valid(ops: Sequence[Operation], order: Sequence[BuuId]) -> bool:
    """Verify a witness: replaying BUUs serially in ``order`` must put
    every pair of conflicting operations in the same relative order as
    the dependency graph demands (i.e. the order respects every edge)."""
    position = {buu: i for i, buu in enumerate(order)}
    collector = BaselineCollector()
    for op in ops:
        for edge in collector.handle(op):
            if edge.src not in position or edge.dst not in position:
                return False
            if position[edge.src] >= position[edge.dst]:
                return False
    return True
