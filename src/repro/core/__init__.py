"""RushMon core: collectors, estimator, detector, pruning, monitor."""

from repro.core.api import AnomalyMonitor, MonitorListener
from repro.core.collector import (
    BaselineCollector,
    Collector,
    CollectorShard,
    DataCentricCollector,
    EdgeSamplingCollector,
    ItemSampler,
)
from repro.core.concurrent import RushMonService, ShardedCollector
from repro.core.config import RushMonConfig
from repro.core.controller import (
    AnomalyController,
    ControllerDecision,
    DEFAULT_LADDER,
)
from repro.core.detector import CycleDetector, LiveGraph
from repro.core.estimator import (
    estimate_edge_sampled_three_cycles,
    estimate_edge_sampled_two_cycles,
    estimate_three_cycles,
    estimate_two_cycles,
)
from repro.core.monitor import OfflineAnomalyMonitor, RushMon, WindowTracker
from repro.core.patterns import (
    AnomalyPattern,
    PatternCounts,
    classify_two_cycle,
)
from repro.core.serializability import (
    SerializabilityVerdict,
    check_graph,
    check_history,
    witness_is_valid,
)
from repro.core.windows import EwmaRate, SlidingWindowRate, report_rate
from repro.core.pruning import (
    CombinedPruning,
    DistancePruning,
    EctPruning,
    NoPruning,
    Pruner,
    make_pruner,
)
from repro.core.types import (
    AnomalyReport,
    BuuId,
    BuuInfo,
    CycleCounts,
    Edge,
    EdgeStats,
    EdgeType,
    Key,
    Operation,
    OpType,
)

__all__ = [
    "AnomalyMonitor",
    "MonitorListener",
    "BaselineCollector",
    "Collector",
    "CollectorShard",
    "DataCentricCollector",
    "EdgeSamplingCollector",
    "ItemSampler",
    "RushMonService",
    "ShardedCollector",
    "WindowTracker",
    "RushMonConfig",
    "AnomalyController",
    "ControllerDecision",
    "DEFAULT_LADDER",
    "AnomalyPattern",
    "PatternCounts",
    "classify_two_cycle",
    "ConvergencePredictor",
    "SerializabilityVerdict",
    "check_graph",
    "check_history",
    "witness_is_valid",
    "rank_correlation",
    "EwmaRate",
    "SlidingWindowRate",
    "report_rate",
    "CycleDetector",
    "LiveGraph",
    "estimate_edge_sampled_three_cycles",
    "estimate_edge_sampled_two_cycles",
    "estimate_three_cycles",
    "estimate_two_cycles",
    "OfflineAnomalyMonitor",
    "RushMon",
    "CombinedPruning",
    "DistancePruning",
    "EctPruning",
    "NoPruning",
    "Pruner",
    "make_pruner",
    "AnomalyReport",
    "BuuId",
    "BuuInfo",
    "CycleCounts",
    "Edge",
    "EdgeStats",
    "EdgeType",
    "Key",
    "Operation",
    "OpType",
]


def __getattr__(name):
    # repro.core.prediction is the one core module that hard-requires
    # numpy (lstsq); loading it lazily keeps a base install (no
    # ``repro[fast]`` extra) importable end to end.
    if name in ("ConvergencePredictor", "rank_correlation"):
        from repro.core import prediction

        return getattr(prediction, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
